//! Cloud pricing, autoscaling, cost modeling and resource estimation.
//!
//! This crate implements the cloud-side substrate of Atlas:
//!
//! * [`pricing`] — the generalised public-cloud pricing model of paper
//!   Appendix A (per-node compute price, per-GB storage price, per-GB egress
//!   price) with AWS/Azure/GCP-like presets;
//! * [`demand`] — the expected resource usage `Ũ^r_c[t]` per component per
//!   time step, plus expected per-edge traffic, that the cost and constraint
//!   models consume;
//! * [`estimator`] — a resource estimator that derives the expected demand
//!   from observed telemetry (the paper plugs in DeepRest \[34\]; here a
//!   seasonal/scaling estimator exercises the same interface);
//! * [`cost`] — the cost model itself (Eq. 6–11): compute nodes via the
//!   cluster autoscaler, storage with fine-grained scaling, and egress
//!   traffic;
//! * [`autoscaler`] — the minute-granularity cluster-autoscaler simulation
//!   used to derive node counts over time.

#![deny(missing_docs)]

pub mod autoscaler;
pub mod cost;
pub mod demand;
pub mod estimator;
pub mod pricing;
pub mod site;

pub use autoscaler::Autoscaler;
pub use cost::{CompiledCost, CostBreakdown, CostModel, CostScratch, OnPremPeaks, SiteCostModel};
pub use demand::ResourceDemand;
pub use estimator::{ResourceEstimator, ScalingEstimator};
pub use pricing::{PricingModel, Provider};
pub use site::SiteId;
