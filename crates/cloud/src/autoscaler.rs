//! Cluster-autoscaler simulation (paper Appendix A, Eq. 6 and Eq. 8).
//!
//! The cloud side of the hybrid deployment is elastic: a cluster autoscaler
//! adjusts the number of nodes at minute granularity based on the resource
//! demand of the components placed there, and cloud storage grows in steps
//! whenever the free fraction falls below the headroom threshold.

use serde::{Deserialize, Serialize};

use crate::pricing::PricingModel;

/// Computes node counts and storage capacities over time for a given demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Autoscaler {
    /// Pricing model providing node granularity (`Ω`) and headroom (`δ`).
    pub pricing: PricingModel,
}

impl Autoscaler {
    /// Create an autoscaler for a pricing model.
    pub fn new(pricing: PricingModel) -> Self {
        Self { pricing }
    }

    /// Number of nodes required at one time step (Eq. 6): the maximum over
    /// CPU and memory of `ceil((1 + δ) * demand / Ω_r)`.
    pub fn nodes_required(&self, cpu_cores: f64, memory_gb: f64) -> usize {
        let headroom = 1.0 + self.pricing.headroom;
        let by_cpu = (headroom * cpu_cores / self.pricing.node_cpu_cores).ceil();
        let by_mem = (headroom * memory_gb / self.pricing.node_memory_gb).ceil();
        by_cpu.max(by_mem).max(0.0) as usize
    }

    /// Node counts for a whole horizon of per-step (cpu, memory) demands.
    pub fn node_trace(&self, demand: &[(f64, f64)]) -> Vec<usize> {
        demand
            .iter()
            .map(|&(cpu, mem)| self.nodes_required(cpu, mem))
            .collect()
    }

    /// Storage capacity trace (Eq. 8): start from `initial_gb` and scale up
    /// by the headroom factor whenever the free fraction drops to `δ` or
    /// below.
    pub fn storage_trace(&self, initial_gb: f64, used_gb_per_step: &[f64]) -> Vec<f64> {
        let delta = self.pricing.headroom;
        let mut capacity = initial_gb.max(1.0);
        let mut out = Vec::with_capacity(used_gb_per_step.len());
        for &used in used_gb_per_step {
            let free_fraction = 1.0 - used / capacity;
            if free_fraction <= delta {
                capacity = ((1.0 + delta) * capacity).ceil();
            }
            out.push(capacity);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Provider;

    fn scaler() -> Autoscaler {
        Autoscaler::new(PricingModel::preset(Provider::AwsLike))
    }

    #[test]
    fn nodes_follow_eq6() {
        let a = scaler();
        // 4-core nodes, 20 % headroom: 3.4 cores → ceil(1.2*3.4/4)=ceil(1.02)=2.
        assert_eq!(a.nodes_required(3.4, 1.0), 2);
        assert_eq!(a.nodes_required(3.0, 1.0), 1);
        assert_eq!(a.nodes_required(0.0, 0.0), 0);
        // Memory-bound: 40 GB with 16 GB nodes → ceil(1.2*40/16)=3.
        assert_eq!(a.nodes_required(0.5, 40.0), 3);
    }

    #[test]
    fn node_trace_maps_each_step() {
        let a = scaler();
        let trace = a.node_trace(&[(0.0, 0.0), (3.0, 1.0), (10.0, 4.0)]);
        assert_eq!(trace, vec![0, 1, 3]);
    }

    #[test]
    fn storage_scales_up_when_headroom_exhausted() {
        let a = scaler();
        let trace = a.storage_trace(10.0, &[5.0, 8.0, 8.5, 9.0, 9.0]);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace[0], 10.0);
        // 8.0/10 leaves 20 % free → trigger (free fraction <= δ).
        assert!(trace[1] > 10.0);
        // Capacity never shrinks and always covers usage with headroom.
        for (i, &cap) in trace.iter().enumerate() {
            if i > 0 {
                assert!(cap >= trace[i - 1]);
            }
        }
    }

    #[test]
    fn storage_never_drops_below_initial() {
        let a = scaler();
        let trace = a.storage_trace(50.0, &[1.0, 1.0, 1.0]);
        assert_eq!(trace, vec![50.0, 50.0, 50.0]);
    }
}
