//! Cluster-autoscaler simulation (paper Appendix A, Eq. 6 and Eq. 8).
//!
//! The cloud side of the hybrid deployment is elastic: a cluster autoscaler
//! adjusts the number of nodes at minute granularity based on the resource
//! demand of the components placed there, and cloud storage grows in steps
//! whenever the free fraction falls below the headroom threshold.

use serde::{Deserialize, Serialize};

use crate::pricing::PricingModel;

/// Computes node counts and storage capacities over time for a given demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Autoscaler {
    /// Pricing model providing node granularity (`Ω`) and headroom (`δ`).
    pub pricing: PricingModel,
}

impl Autoscaler {
    /// Create an autoscaler for a pricing model.
    pub fn new(pricing: PricingModel) -> Self {
        Self { pricing }
    }

    /// Number of nodes required at one time step (Eq. 6): the maximum over
    /// CPU and memory of `ceil((1 + δ) * demand / Ω_r)`.
    pub fn nodes_required(&self, cpu_cores: f64, memory_gb: f64) -> usize {
        let headroom = 1.0 + self.pricing.headroom;
        let by_cpu = (headroom * cpu_cores / self.pricing.node_cpu_cores).ceil();
        let by_mem = (headroom * memory_gb / self.pricing.node_memory_gb).ceil();
        by_cpu.max(by_mem).max(0.0) as usize
    }

    /// Node counts for a whole horizon of per-step (cpu, memory) demands.
    pub fn node_trace(&self, demand: &[(f64, f64)]) -> Vec<usize> {
        demand
            .iter()
            .map(|&(cpu, mem)| self.nodes_required(cpu, mem))
            .collect()
    }

    /// Storage capacity trace (Eq. 8): start from `initial_gb` and scale up
    /// by the headroom factor whenever the free fraction drops to `δ` or
    /// below, repeating the growth step until the headroom is restored.
    ///
    /// A usage spike larger than one `(1 + δ)` step (say 10 GB → 50 GB)
    /// therefore provisions enough capacity within the step it appears in,
    /// instead of reporting a capacity below the actual usage for many steps.
    pub fn storage_trace(&self, initial_gb: f64, used_gb_per_step: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(used_gb_per_step.len());
        self.storage_trace_into(initial_gb, used_gb_per_step, &mut out);
        out
    }

    /// [`Self::storage_trace`] into a caller-provided buffer (cleared
    /// first), the allocation-free variant used by hot evaluation loops.
    pub fn storage_trace_into(
        &self,
        initial_gb: f64,
        used_gb_per_step: &[f64],
        out: &mut Vec<f64>,
    ) {
        // A free fraction can never exceed 1, so a (nonsensical) headroom of
        // 1 or more would loop forever; clamp to keep the loop terminating
        // for any `pricing.headroom`.
        let delta = self.pricing.headroom.clamp(0.0, 0.99);
        let mut capacity = initial_gb.max(1.0);
        out.clear();
        out.reserve(used_gb_per_step.len());
        for &used in used_gb_per_step {
            while 1.0 - used / capacity <= delta {
                // `max` guards against a zero-headroom pricing model, where
                // `ceil` alone could leave an integer capacity unchanged.
                capacity = ((1.0 + delta) * capacity).ceil().max(capacity + 1.0);
            }
            out.push(capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Provider;

    fn scaler() -> Autoscaler {
        Autoscaler::new(PricingModel::preset(Provider::AwsLike))
    }

    #[test]
    fn nodes_follow_eq6() {
        let a = scaler();
        // 4-core nodes, 20 % headroom: 3.4 cores → ceil(1.2*3.4/4)=ceil(1.02)=2.
        assert_eq!(a.nodes_required(3.4, 1.0), 2);
        assert_eq!(a.nodes_required(3.0, 1.0), 1);
        assert_eq!(a.nodes_required(0.0, 0.0), 0);
        // Memory-bound: 40 GB with 16 GB nodes → ceil(1.2*40/16)=3.
        assert_eq!(a.nodes_required(0.5, 40.0), 3);
    }

    #[test]
    fn node_trace_maps_each_step() {
        let a = scaler();
        let trace = a.node_trace(&[(0.0, 0.0), (3.0, 1.0), (10.0, 4.0)]);
        assert_eq!(trace, vec![0, 1, 3]);
    }

    #[test]
    fn storage_scales_up_when_headroom_exhausted() {
        let a = scaler();
        let trace = a.storage_trace(10.0, &[5.0, 8.0, 8.5, 9.0, 9.0]);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace[0], 10.0);
        // 8.0/10 leaves 20 % free → trigger (free fraction <= δ).
        assert!(trace[1] > 10.0);
        // Capacity never shrinks and always covers usage with headroom.
        for (i, &cap) in trace.iter().enumerate() {
            if i > 0 {
                assert!(cap >= trace[i - 1]);
            }
        }
    }

    /// Regression test: a spike bigger than one `(1 + δ)` growth step used to
    /// grow capacity only once per step, reporting capacity *below* actual
    /// usage (a negative free fraction) for many steps and under-billing
    /// storage in the cost model.
    #[test]
    fn storage_spike_is_covered_within_the_step() {
        let a = scaler();
        let delta = a.pricing.headroom;
        let used = [5.0, 50.0, 50.0, 55.0, 120.0];
        let trace = a.storage_trace(10.0, &used);
        for (&cap, &used) in trace.iter().zip(used.iter()) {
            assert!(cap > used, "capacity {cap} must always cover usage {used}");
            assert!(
                1.0 - used / cap > delta,
                "free fraction must exceed the headroom δ after scaling \
                 (capacity {cap}, used {used})"
            );
        }
        // Capacity never shrinks.
        for w in trace.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    /// A misconfigured headroom ≥ 1 must not hang the growth loop (a free
    /// fraction can never exceed 1); the clamp keeps the trace finite and
    /// covering usage.
    #[test]
    fn degenerate_headroom_still_terminates() {
        let mut a = scaler();
        a.pricing.headroom = 1.0;
        let trace = a.storage_trace(10.0, &[5.0, 80.0]);
        assert_eq!(trace.len(), 2);
        assert!(trace.iter().all(|c| c.is_finite()));
        assert!(trace[1] > 80.0);
    }

    #[test]
    fn storage_never_drops_below_initial() {
        let a = scaler();
        let trace = a.storage_trace(50.0, &[1.0, 1.0, 1.0]);
        assert_eq!(trace, vec![50.0, 50.0, 50.0]);
    }
}
