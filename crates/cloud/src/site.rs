//! Site identifiers: the index type of the N-site placement model.
//!
//! Atlas originally modeled placement as the paper's binary plan variable
//! `p_c ∈ {0, 1}` (on-prem vs *the* cloud). The N-site generalisation keeps
//! the same structure but indexes an arbitrary catalog of sites: site `0` is
//! always the on-premises cluster, and sites `1..N` are elastic pools, each
//! billed under its own [`PricingModel`](crate::PricingModel). The id lives
//! in `atlas-cloud` (the lowest crate that prices sites) and is re-exported
//! by `atlas-sim` next to the `SiteCatalog` describing the sites themselves.

use serde::{Deserialize, Serialize};

/// Index of a site in a site catalog. Site `0` is the on-premises cluster by
/// convention; every other index is an elastic (cloud-like) pool.
///
/// The paper's binary `p_c` is the two-site special case: `SiteId(0)` is
/// `p_c = 0` (on-prem) and `SiteId(1)` is `p_c = 1` (the cloud).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SiteId(pub u16);

impl SiteId {
    /// The on-premises site (index 0, the paper's `p_c = 0`).
    pub const ON_PREM: SiteId = SiteId(0);

    /// The single cloud site of the paper's two-site model (`p_c = 1`).
    pub const CLOUD: SiteId = SiteId(1);

    /// The site index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the on-premises site.
    #[inline]
    pub fn is_on_prem(self) -> bool {
        self.0 == 0
    }
}

impl From<u16> for SiteId {
    fn from(index: u16) -> Self {
        SiteId(index)
    }
}

impl From<SiteId> for u16 {
    fn from(site: SiteId) -> Self {
        site.0
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_on_prem() {
            f.write_str("site0(on-prem)")
        } else {
            write!(f, "site{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_conversions() {
        assert_eq!(SiteId::ON_PREM, SiteId(0));
        assert_eq!(SiteId::CLOUD, SiteId(1));
        assert!(SiteId::ON_PREM.is_on_prem());
        assert!(!SiteId(3).is_on_prem());
        assert_eq!(SiteId(7).index(), 7);
        assert_eq!(SiteId::from(4u16), SiteId(4));
        assert_eq!(u16::from(SiteId(4)), 4);
        assert_eq!(SiteId(0).to_string(), "site0(on-prem)");
        assert_eq!(SiteId(2).to_string(), "site2");
        assert!(SiteId(1) < SiteId(2));
    }
}
