//! The cloud hosting cost model `Q_Cost` (paper §4.1.3 and Appendix A).
//!
//! Given the expected resource demand and a placement, the model computes
//! the three cost terms of Eq. 11:
//!
//! * **compute** (Eq. 6–7): nodes provisioned by the cluster autoscaler for
//!   the cloud-placed components, priced per node and time step;
//! * **storage** (Eq. 8–9): cloud storage capacity scaling with the
//!   stateful data placed in the cloud;
//! * **traffic** (Eq. 10): egress traffic leaving the cloud on edges whose
//!   endpoints sit in different locations (ingress is free).

use serde::{Deserialize, Serialize};

use crate::autoscaler::Autoscaler;
use crate::demand::ResourceDemand;
use crate::pricing::PricingModel;
use crate::site::SiteId;

/// Breakdown of the cloud hosting cost of one plan, in dollars over the
/// demand's horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Compute-induced cost (Eq. 7).
    pub compute: f64,
    /// Storage-induced cost (Eq. 9).
    pub storage: f64,
    /// Egress-traffic-induced cost (Eq. 10).
    pub traffic: f64,
}

impl CostBreakdown {
    /// Total cost (Eq. 11).
    pub fn total(&self) -> f64 {
        self.compute + self.storage + self.traffic
    }

    /// Scale the breakdown to a per-day figure given the horizon it covers.
    pub fn per_day(&self, horizon_s: u64) -> CostBreakdown {
        if horizon_s == 0 {
            return *self;
        }
        let f = 86_400.0 / horizon_s as f64;
        CostBreakdown {
            compute: self.compute * f,
            storage: self.storage * f,
            traffic: self.traffic * f,
        }
    }
}

/// Reusable buffers for [`CostModel::evaluate_with_scratch`], so hot
/// evaluation loops (the plan-evaluation kernel, the baselines' scorer) do
/// not allocate the cloud-component index list and the per-step storage
/// series on every call.
#[derive(Debug, Clone, Default)]
pub struct CostScratch {
    cloud: Vec<usize>,
    used_per_step: Vec<f64>,
    /// Per-site egress-byte accumulators of [`SiteCostModel`].
    egress: Vec<f64>,
}

/// The cost model: pricing plus the autoscaler it implies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    pricing: PricingModel,
    autoscaler: Autoscaler,
}

impl CostModel {
    /// Create a cost model from a pricing model.
    pub fn new(pricing: PricingModel) -> Self {
        let autoscaler = Autoscaler::new(pricing.clone());
        Self {
            pricing,
            autoscaler,
        }
    }

    /// The pricing model in use.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// Evaluate the cost of placing the components flagged `true` in
    /// `in_cloud` (indexed like `demand.component_names`) in the cloud.
    ///
    /// # Panics
    ///
    /// Panics if `in_cloud.len()` differs from the demand's component count.
    pub fn evaluate(&self, demand: &ResourceDemand, in_cloud: &[bool]) -> CostBreakdown {
        self.evaluate_with_scratch(demand, in_cloud, &mut CostScratch::default())
    }

    /// [`CostModel::evaluate`] with caller-provided scratch buffers, the
    /// allocation-free variant used by hot evaluation loops. Bit-identical
    /// to `evaluate`: the arithmetic and its order are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `in_cloud.len()` differs from the demand's component count.
    pub fn evaluate_with_scratch(
        &self,
        demand: &ResourceDemand,
        in_cloud: &[bool],
        scratch: &mut CostScratch,
    ) -> CostBreakdown {
        assert_eq!(
            in_cloud.len(),
            demand.component_count(),
            "placement must cover every component"
        );
        scratch.cloud.clear();
        scratch
            .cloud
            .extend((0..in_cloud.len()).filter(|&i| in_cloud[i]));
        let (compute, storage) =
            self.pool_compute_storage(demand, &scratch.cloud, &mut scratch.used_per_step);

        // --- Traffic (Eq. 10): egress from the cloud on cross-location edges.
        let mut egress_bytes = 0.0;
        for (&(from, to), series) in &demand.edge_bytes {
            if in_cloud[from] != in_cloud[to] {
                // The request leg leaves the cloud when the caller is in the
                // cloud; the response leg leaves when the callee is. The
                // demand series aggregates both directions of the exchange,
                // so half of it is attributed to each leg.
                let total: f64 = series.iter().sum();
                egress_bytes += total / 2.0;
            }
        }
        let traffic = self.pricing.egress_cost_for(egress_bytes);

        CostBreakdown {
            compute,
            storage,
            traffic,
        }
    }

    /// Compute (Eq. 6–7) and storage (Eq. 8–9) cost of hosting the
    /// components listed in `pool` (ascending indices) in this model's
    /// cloud. Shared by the two-site [`CostModel::evaluate_with_scratch`]
    /// and the N-site [`SiteCostModel`] so both price a pool with the exact
    /// same floating-point operations in the same order.
    fn pool_compute_storage(
        &self,
        demand: &ResourceDemand,
        pool: &[usize],
        used_per_step: &mut Vec<f64>,
    ) -> (f64, f64) {
        let step_seconds = demand.step_s as f64;

        // --- Compute (Eq. 6-7): nodes per step from CPU and memory. ---
        let mut compute = 0.0;
        for t in 0..demand.steps {
            let cpu: f64 = pool.iter().map(|&c| demand.cpu_cores[c][t]).sum();
            let mem: f64 = pool.iter().map(|&c| demand.memory_gb[c][t]).sum();
            let nodes = self.autoscaler.nodes_required(cpu, mem);
            compute += self.pricing.compute_cost_for(nodes, step_seconds);
        }

        // --- Storage (Eq. 8-9): capacity trace from the stateful data. ---
        used_per_step.clear();
        used_per_step.extend(
            (0..demand.steps).map(|t| pool.iter().map(|&c| demand.storage_gb[c][t]).sum::<f64>()),
        );
        let initial_gb = 2.0 * used_per_step.first().copied().unwrap_or(0.0);
        let mut storage = 0.0;
        if used_per_step.iter().any(|&u| u > 0.0) {
            let capacity = self.autoscaler.storage_trace(initial_gb, used_per_step);
            for cap in capacity {
                storage += self.pricing.storage_cost_for(cap, step_seconds);
            }
        }
        (compute, storage)
    }
}

/// The N-site hosting cost model: one [`CostModel`] per elastic site, each
/// billing its own pool under its own [`PricingModel`] (per-site node
/// granularity, storage price, egress price and autoscaler headroom).
///
/// Site `0` (on-prem) carries no model — owned hardware has no marginal
/// hosting cost, exactly like the original two-site `Q_Cost`. A two-entry
/// instance ([`SiteCostModel::two_site`]) is bit-identical to
/// [`CostModel::evaluate`] over the equivalent cloud-flag vector: the pool
/// pricing shares the same arithmetic and the egress accumulation visits the
/// same edges in the same order.
///
/// Egress (Eq. 10 generalised): every cross-site edge splits its traffic in
/// half — the request leg leaves the caller's site, the response leg leaves
/// the callee's site — and each half is billed at the *sending* site's
/// egress price (free when the sender is on-prem). With one cloud site this
/// reduces to the paper's rule: half the bytes of every on-prem↔cloud edge
/// leave the cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCostModel {
    /// Per-site models, indexed by [`SiteId`]; `None` = no marginal cost
    /// (the on-prem pool, or any other owned site).
    sites: Vec<Option<CostModel>>,
}

impl SiteCostModel {
    /// Build from per-site models (`None` entries are free pools).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sites are given.
    pub fn from_models(sites: Vec<Option<CostModel>>) -> Self {
        assert!(sites.len() >= 2, "a site cost model needs at least 2 sites");
        Self { sites }
    }

    /// Build from per-site pricing (`None` entries are free pools).
    pub fn from_pricings(pricings: Vec<Option<PricingModel>>) -> Self {
        Self::from_models(
            pricings
                .into_iter()
                .map(|p| p.map(CostModel::new))
                .collect(),
        )
    }

    /// The paper's two-site model: free on-prem plus one cloud priced by
    /// `pricing`.
    pub fn two_site(pricing: PricingModel) -> Self {
        Self::from_models(vec![None, Some(CostModel::new(pricing))])
    }

    /// Number of sites this model prices.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The per-site model of one site (`None` for free pools).
    pub fn site_model(&self, site: SiteId) -> Option<&CostModel> {
        self.sites.get(site.index()).and_then(|m| m.as_ref())
    }

    /// Evaluate the hosting cost of a site assignment (indexed like
    /// `demand.component_names`). Allocating convenience around
    /// [`SiteCostModel::evaluate_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `sites.len()` differs from the demand's component count,
    /// or if an assignment names a site this model does not price.
    pub fn evaluate(&self, demand: &ResourceDemand, sites: &[SiteId]) -> CostBreakdown {
        self.evaluate_with_scratch(demand, sites, &mut CostScratch::default())
    }

    /// [`SiteCostModel::evaluate`] with caller-provided scratch buffers, the
    /// allocation-free variant used by the evaluation kernel and the
    /// baselines' scorer.
    ///
    /// # Panics
    ///
    /// Panics if `sites.len()` differs from the demand's component count,
    /// or if an assignment names a site this model does not price.
    pub fn evaluate_with_scratch(
        &self,
        demand: &ResourceDemand,
        sites: &[SiteId],
        scratch: &mut CostScratch,
    ) -> CostBreakdown {
        assert_eq!(
            sites.len(),
            demand.component_count(),
            "placement must cover every component"
        );
        debug_assert!(
            sites.iter().all(|s| s.index() < self.sites.len()),
            "site assignment outside the catalog"
        );
        // Egress leaving each site, accumulated in one pass over the edge
        // map: every cross-site edge splits its traffic in half between its
        // endpoints' sites (request leg leaves the caller's site, response
        // leg the callee's). Per-site bucket sums see the same additions in
        // the same (map) order as a per-site edge scan would, so the totals
        // are bit-identical at a single traversal.
        scratch.egress.clear();
        scratch.egress.resize(self.sites.len(), 0.0);
        for (&(from, to), series) in &demand.edge_bytes {
            if sites[from] != sites[to] {
                let half = series.iter().sum::<f64>() / 2.0;
                scratch.egress[sites[from].index()] += half;
                scratch.egress[sites[to].index()] += half;
            }
        }
        let mut total = CostBreakdown::default();
        for (index, model) in self.sites.iter().enumerate() {
            let Some(model) = model else { continue };
            let site = SiteId(index as u16);
            scratch.cloud.clear();
            scratch
                .cloud
                .extend((0..sites.len()).filter(|&i| sites[i] == site));
            let (compute, storage) =
                model.pool_compute_storage(demand, &scratch.cloud, &mut scratch.used_per_step);
            total.compute += compute;
            total.storage += storage;
            total.traffic += model.pricing.egress_cost_for(scratch.egress[index]);
        }
        total
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(PricingModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Provider;

    fn demand() -> ResourceDemand {
        let names = vec![
            "Frontend".to_string(),
            "Service".to_string(),
            "MongoDB".to_string(),
        ];
        let mut d = ResourceDemand::zeros(names, 6, 600); // one hour in 10-minute steps
        d.fill_cpu(0, 2.0);
        d.fill_cpu(1, 6.0);
        d.fill_cpu(2, 1.0);
        d.fill_memory(0, 1.0);
        d.fill_memory(1, 4.0);
        d.fill_memory(2, 8.0);
        d.fill_storage(2, 40.0);
        d.fill_edge(0, 1, 5.0e8); // 500 MB per step between Frontend and Service
        d.fill_edge(1, 2, 2.0e8);
        d
    }

    #[test]
    fn all_onprem_costs_nothing() {
        let model = CostModel::default();
        let cost = model.evaluate(&demand(), &[false, false, false]);
        assert_eq!(cost.total(), 0.0);
    }

    #[test]
    fn compute_cost_counts_only_cloud_components() {
        let model = CostModel::default();
        let only_service = model.evaluate(&demand(), &[false, true, false]);
        assert!(only_service.compute > 0.0);
        assert_eq!(only_service.storage, 0.0, "no stateful component offloaded");
        let service_and_db = model.evaluate(&demand(), &[false, true, true]);
        assert!(service_and_db.compute >= only_service.compute);
        assert!(service_and_db.storage > 0.0);
    }

    #[test]
    fn traffic_cost_only_on_cross_location_edges() {
        let model = CostModel::default();
        // Frontend on-prem, Service+DB in cloud → only the 0→1 edge crosses.
        let split = model.evaluate(&demand(), &[false, true, true]);
        // Everything in cloud → no cross edge, no egress.
        let all_cloud = model.evaluate(&demand(), &[true, true, true]);
        assert!(split.traffic > 0.0);
        assert_eq!(all_cloud.traffic, 0.0);
    }

    #[test]
    fn colocating_chatty_components_is_cheaper() {
        let model = CostModel::default();
        // Offloading only the Service splits both of its heavy edges.
        let split_both = model.evaluate(&demand(), &[false, true, false]);
        // Offloading Service + DB keeps the 1→2 edge local.
        let keep_pair = model.evaluate(&demand(), &[false, true, true]);
        assert!(split_both.traffic > keep_pair.traffic);
    }

    #[test]
    fn per_day_scaling() {
        let model = CostModel::default();
        let cost = model.evaluate(&demand(), &[false, true, true]);
        let per_day = cost.per_day(3_600);
        assert!((per_day.total() - cost.total() * 24.0).abs() < 1e-9);
        // Degenerate horizon returns the original.
        assert_eq!(cost.per_day(0).total(), cost.total());
    }

    #[test]
    fn providers_change_the_price_not_the_structure() {
        let d = demand();
        let aws = CostModel::new(PricingModel::preset(Provider::AwsLike))
            .evaluate(&d, &[false, true, true]);
        let gcp = CostModel::new(PricingModel::preset(Provider::GcpLike))
            .evaluate(&d, &[false, true, true]);
        assert_ne!(aws.total(), gcp.total());
        assert!(aws.compute > 0.0 && gcp.compute > 0.0);
    }

    #[test]
    #[should_panic(expected = "placement must cover every component")]
    fn mismatched_placement_panics() {
        let model = CostModel::default();
        let _ = model.evaluate(&demand(), &[true]);
    }

    /// The two-entry site model reproduces the binary cost model to the last
    /// bit: pool pricing shares the arithmetic and the egress pass visits
    /// the edges in the same order.
    #[test]
    fn two_site_model_is_bit_identical_to_the_binary_cost_model() {
        let d = demand();
        let binary = CostModel::default();
        let sited = SiteCostModel::two_site(PricingModel::default());
        assert_eq!(sited.site_count(), 2);
        assert!(sited.site_model(SiteId::ON_PREM).is_none());
        assert!(sited.site_model(SiteId::CLOUD).is_some());
        for flags in [
            [false, false, false],
            [false, true, false],
            [false, true, true],
            [true, true, true],
            [true, false, true],
        ] {
            let sites: Vec<SiteId> = flags
                .iter()
                .map(|&f| if f { SiteId::CLOUD } else { SiteId::ON_PREM })
                .collect();
            let a = binary.evaluate(&d, &flags);
            let b = sited.evaluate(&d, &sites);
            assert_eq!(a.compute.to_bits(), b.compute.to_bits(), "{flags:?}");
            assert_eq!(a.storage.to_bits(), b.storage.to_bits(), "{flags:?}");
            assert_eq!(a.traffic.to_bits(), b.traffic.to_bits(), "{flags:?}");
        }
    }

    /// Each elastic site bills its own pool under its own pricing, and a
    /// cross-cloud edge pays egress at *both* sites.
    #[test]
    fn per_site_pricing_and_cross_cloud_egress() {
        let d = demand();
        let aws = PricingModel::preset(Provider::AwsLike);
        let gcp = PricingModel::preset(Provider::GcpLike);
        let model = SiteCostModel::from_pricings(vec![None, Some(aws.clone()), Some(gcp.clone())]);
        assert_eq!(model.site_count(), 3);

        // Frontend on-prem, Service at site 1, MongoDB at site 2: the 0→1
        // edge pays egress at site 1 only; the 1→2 edge pays at both.
        let split = model.evaluate(&d, &[SiteId(0), SiteId(1), SiteId(2)]);
        // Same shape but the pair collocated at site 1: the 1→2 edge
        // becomes intra-site and free.
        let collocated = model.evaluate(&d, &[SiteId(0), SiteId(1), SiteId(1)]);
        assert!(split.traffic > collocated.traffic);

        // Moving a component between sites with different compute prices
        // changes the compute bill.
        let on_aws = model.evaluate(&d, &[SiteId(0), SiteId(1), SiteId(0)]);
        let on_gcp = model.evaluate(&d, &[SiteId(0), SiteId(2), SiteId(0)]);
        assert!(on_aws.compute > 0.0 && on_gcp.compute > 0.0);
        assert_ne!(on_aws.compute, on_gcp.compute);

        // All components on-prem: nothing to bill.
        assert_eq!(model.evaluate(&d, &[SiteId(0); 3]).total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 sites")]
    fn degenerate_site_models_are_rejected() {
        let _ = SiteCostModel::from_pricings(vec![None]);
    }
}
