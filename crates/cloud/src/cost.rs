//! The cloud hosting cost model `Q_Cost` (paper §4.1.3 and Appendix A).
//!
//! Given the expected resource demand and a placement, the model computes
//! the three cost terms of Eq. 11:
//!
//! * **compute** (Eq. 6–7): nodes provisioned by the cluster autoscaler for
//!   the cloud-placed components, priced per node and time step;
//! * **storage** (Eq. 8–9): cloud storage capacity scaling with the
//!   stateful data placed in the cloud;
//! * **traffic** (Eq. 10): egress traffic leaving the cloud on edges whose
//!   endpoints sit in different locations (ingress is free).

use serde::{Deserialize, Serialize};

use crate::autoscaler::Autoscaler;
use crate::demand::ResourceDemand;
use crate::pricing::PricingModel;

/// Breakdown of the cloud hosting cost of one plan, in dollars over the
/// demand's horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Compute-induced cost (Eq. 7).
    pub compute: f64,
    /// Storage-induced cost (Eq. 9).
    pub storage: f64,
    /// Egress-traffic-induced cost (Eq. 10).
    pub traffic: f64,
}

impl CostBreakdown {
    /// Total cost (Eq. 11).
    pub fn total(&self) -> f64 {
        self.compute + self.storage + self.traffic
    }

    /// Scale the breakdown to a per-day figure given the horizon it covers.
    pub fn per_day(&self, horizon_s: u64) -> CostBreakdown {
        if horizon_s == 0 {
            return *self;
        }
        let f = 86_400.0 / horizon_s as f64;
        CostBreakdown {
            compute: self.compute * f,
            storage: self.storage * f,
            traffic: self.traffic * f,
        }
    }
}

/// Reusable buffers for [`CostModel::evaluate_with_scratch`], so hot
/// evaluation loops (the plan-evaluation kernel, the baselines' scorer) do
/// not allocate the cloud-component index list and the per-step storage
/// series on every call.
#[derive(Debug, Clone, Default)]
pub struct CostScratch {
    cloud: Vec<usize>,
    used_per_step: Vec<f64>,
}

/// The cost model: pricing plus the autoscaler it implies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    pricing: PricingModel,
    autoscaler: Autoscaler,
}

impl CostModel {
    /// Create a cost model from a pricing model.
    pub fn new(pricing: PricingModel) -> Self {
        let autoscaler = Autoscaler::new(pricing.clone());
        Self {
            pricing,
            autoscaler,
        }
    }

    /// The pricing model in use.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// Evaluate the cost of placing the components flagged `true` in
    /// `in_cloud` (indexed like `demand.component_names`) in the cloud.
    ///
    /// # Panics
    ///
    /// Panics if `in_cloud.len()` differs from the demand's component count.
    pub fn evaluate(&self, demand: &ResourceDemand, in_cloud: &[bool]) -> CostBreakdown {
        self.evaluate_with_scratch(demand, in_cloud, &mut CostScratch::default())
    }

    /// [`CostModel::evaluate`] with caller-provided scratch buffers, the
    /// allocation-free variant used by hot evaluation loops. Bit-identical
    /// to `evaluate`: the arithmetic and its order are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `in_cloud.len()` differs from the demand's component count.
    pub fn evaluate_with_scratch(
        &self,
        demand: &ResourceDemand,
        in_cloud: &[bool],
        scratch: &mut CostScratch,
    ) -> CostBreakdown {
        assert_eq!(
            in_cloud.len(),
            demand.component_count(),
            "placement must cover every component"
        );
        scratch.cloud.clear();
        scratch
            .cloud
            .extend((0..in_cloud.len()).filter(|&i| in_cloud[i]));
        let cloud = &scratch.cloud;
        let step_seconds = demand.step_s as f64;

        // --- Compute (Eq. 6-7): nodes per step from CPU and memory. ---
        let mut compute = 0.0;
        for t in 0..demand.steps {
            let cpu: f64 = cloud.iter().map(|&c| demand.cpu_cores[c][t]).sum();
            let mem: f64 = cloud.iter().map(|&c| demand.memory_gb[c][t]).sum();
            let nodes = self.autoscaler.nodes_required(cpu, mem);
            compute += self.pricing.compute_cost_for(nodes, step_seconds);
        }

        // --- Storage (Eq. 8-9): capacity trace from the stateful data. ---
        scratch.used_per_step.clear();
        scratch.used_per_step.extend(
            (0..demand.steps).map(|t| cloud.iter().map(|&c| demand.storage_gb[c][t]).sum::<f64>()),
        );
        let used_per_step = &scratch.used_per_step;
        let initial_gb = 2.0 * used_per_step.first().copied().unwrap_or(0.0);
        let mut storage = 0.0;
        if used_per_step.iter().any(|&u| u > 0.0) {
            let capacity = self.autoscaler.storage_trace(initial_gb, used_per_step);
            for cap in capacity {
                storage += self.pricing.storage_cost_for(cap, step_seconds);
            }
        }

        // --- Traffic (Eq. 10): egress from the cloud on cross-location edges.
        let mut egress_bytes = 0.0;
        for (&(from, to), series) in &demand.edge_bytes {
            if in_cloud[from] != in_cloud[to] {
                // The request leg leaves the cloud when the caller is in the
                // cloud; the response leg leaves when the callee is. The
                // demand series aggregates both directions of the exchange,
                // so half of it is attributed to each leg.
                let total: f64 = series.iter().sum();
                egress_bytes += total / 2.0;
            }
        }
        let traffic = self.pricing.egress_cost_for(egress_bytes);

        CostBreakdown {
            compute,
            storage,
            traffic,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(PricingModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Provider;

    fn demand() -> ResourceDemand {
        let names = vec![
            "Frontend".to_string(),
            "Service".to_string(),
            "MongoDB".to_string(),
        ];
        let mut d = ResourceDemand::zeros(names, 6, 600); // one hour in 10-minute steps
        d.fill_cpu(0, 2.0);
        d.fill_cpu(1, 6.0);
        d.fill_cpu(2, 1.0);
        d.fill_memory(0, 1.0);
        d.fill_memory(1, 4.0);
        d.fill_memory(2, 8.0);
        d.fill_storage(2, 40.0);
        d.fill_edge(0, 1, 5.0e8); // 500 MB per step between Frontend and Service
        d.fill_edge(1, 2, 2.0e8);
        d
    }

    #[test]
    fn all_onprem_costs_nothing() {
        let model = CostModel::default();
        let cost = model.evaluate(&demand(), &[false, false, false]);
        assert_eq!(cost.total(), 0.0);
    }

    #[test]
    fn compute_cost_counts_only_cloud_components() {
        let model = CostModel::default();
        let only_service = model.evaluate(&demand(), &[false, true, false]);
        assert!(only_service.compute > 0.0);
        assert_eq!(only_service.storage, 0.0, "no stateful component offloaded");
        let service_and_db = model.evaluate(&demand(), &[false, true, true]);
        assert!(service_and_db.compute >= only_service.compute);
        assert!(service_and_db.storage > 0.0);
    }

    #[test]
    fn traffic_cost_only_on_cross_location_edges() {
        let model = CostModel::default();
        // Frontend on-prem, Service+DB in cloud → only the 0→1 edge crosses.
        let split = model.evaluate(&demand(), &[false, true, true]);
        // Everything in cloud → no cross edge, no egress.
        let all_cloud = model.evaluate(&demand(), &[true, true, true]);
        assert!(split.traffic > 0.0);
        assert_eq!(all_cloud.traffic, 0.0);
    }

    #[test]
    fn colocating_chatty_components_is_cheaper() {
        let model = CostModel::default();
        // Offloading only the Service splits both of its heavy edges.
        let split_both = model.evaluate(&demand(), &[false, true, false]);
        // Offloading Service + DB keeps the 1→2 edge local.
        let keep_pair = model.evaluate(&demand(), &[false, true, true]);
        assert!(split_both.traffic > keep_pair.traffic);
    }

    #[test]
    fn per_day_scaling() {
        let model = CostModel::default();
        let cost = model.evaluate(&demand(), &[false, true, true]);
        let per_day = cost.per_day(3_600);
        assert!((per_day.total() - cost.total() * 24.0).abs() < 1e-9);
        // Degenerate horizon returns the original.
        assert_eq!(cost.per_day(0).total(), cost.total());
    }

    #[test]
    fn providers_change_the_price_not_the_structure() {
        let d = demand();
        let aws = CostModel::new(PricingModel::preset(Provider::AwsLike))
            .evaluate(&d, &[false, true, true]);
        let gcp = CostModel::new(PricingModel::preset(Provider::GcpLike))
            .evaluate(&d, &[false, true, true]);
        assert_ne!(aws.total(), gcp.total());
        assert!(aws.compute > 0.0 && gcp.compute > 0.0);
    }

    #[test]
    #[should_panic(expected = "placement must cover every component")]
    fn mismatched_placement_panics() {
        let model = CostModel::default();
        let _ = model.evaluate(&demand(), &[true]);
    }
}
