//! The cloud hosting cost model `Q_Cost` (paper §4.1.3 and Appendix A).
//!
//! Given the expected resource demand and a placement, the model computes
//! the three cost terms of Eq. 11:
//!
//! * **compute** (Eq. 6–7): nodes provisioned by the cluster autoscaler for
//!   the cloud-placed components, priced per node and time step;
//! * **storage** (Eq. 8–9): cloud storage capacity scaling with the
//!   stateful data placed in the cloud;
//! * **traffic** (Eq. 10): egress traffic leaving the cloud on edges whose
//!   endpoints sit in different locations (ingress is free).

use serde::{Deserialize, Serialize};

use crate::autoscaler::Autoscaler;
use crate::demand::ResourceDemand;
use crate::pricing::PricingModel;
use crate::site::SiteId;

/// Breakdown of the cloud hosting cost of one plan, in dollars over the
/// demand's horizon.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Compute-induced cost (Eq. 7).
    pub compute: f64,
    /// Storage-induced cost (Eq. 9).
    pub storage: f64,
    /// Egress-traffic-induced cost (Eq. 10).
    pub traffic: f64,
}

impl CostBreakdown {
    /// Total cost (Eq. 11).
    pub fn total(&self) -> f64 {
        self.compute + self.storage + self.traffic
    }

    /// Scale the breakdown to a per-day figure given the horizon it covers.
    pub fn per_day(&self, horizon_s: u64) -> CostBreakdown {
        if horizon_s == 0 {
            return *self;
        }
        let f = 86_400.0 / horizon_s as f64;
        CostBreakdown {
            compute: self.compute * f,
            storage: self.storage * f,
            traffic: self.traffic * f,
        }
    }
}

/// Reusable buffers for [`CostModel::evaluate_with_scratch`], so hot
/// evaluation loops (the plan-evaluation kernel, the baselines' scorer) do
/// not allocate the cloud-component index list and the per-step storage
/// series on every call.
#[derive(Debug, Clone, Default)]
pub struct CostScratch {
    cloud: Vec<usize>,
    used_per_step: Vec<f64>,
    /// Per-site egress-byte accumulators of [`SiteCostModel`].
    egress: Vec<f64>,
    /// Per-site per-step resource accumulators of [`CompiledCost`]: one
    /// `2 * steps` block per site (cpu row, then memory row).
    site_res: Vec<f64>,
    /// Per-site per-step storage accumulators of [`CompiledCost`].
    site_storage: Vec<f64>,
}

/// The cost model: pricing plus the autoscaler it implies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    pricing: PricingModel,
    autoscaler: Autoscaler,
}

impl CostModel {
    /// Create a cost model from a pricing model.
    pub fn new(pricing: PricingModel) -> Self {
        let autoscaler = Autoscaler::new(pricing.clone());
        Self {
            pricing,
            autoscaler,
        }
    }

    /// The pricing model in use.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// Evaluate the cost of placing the components flagged `true` in
    /// `in_cloud` (indexed like `demand.component_names`) in the cloud.
    ///
    /// # Panics
    ///
    /// Panics if `in_cloud.len()` differs from the demand's component count.
    pub fn evaluate(&self, demand: &ResourceDemand, in_cloud: &[bool]) -> CostBreakdown {
        self.evaluate_with_scratch(demand, in_cloud, &mut CostScratch::default())
    }

    /// [`CostModel::evaluate`] with caller-provided scratch buffers, the
    /// allocation-free variant used by hot evaluation loops. Bit-identical
    /// to `evaluate`: the arithmetic and its order are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `in_cloud.len()` differs from the demand's component count.
    pub fn evaluate_with_scratch(
        &self,
        demand: &ResourceDemand,
        in_cloud: &[bool],
        scratch: &mut CostScratch,
    ) -> CostBreakdown {
        assert_eq!(
            in_cloud.len(),
            demand.component_count(),
            "placement must cover every component"
        );
        scratch.cloud.clear();
        scratch
            .cloud
            .extend((0..in_cloud.len()).filter(|&i| in_cloud[i]));
        let (compute, storage) =
            self.pool_compute_storage(demand, &scratch.cloud, &mut scratch.used_per_step);

        // --- Traffic (Eq. 10): egress from the cloud on cross-location edges.
        let mut egress_bytes = 0.0;
        for (&(from, to), series) in &demand.edge_bytes {
            if in_cloud[from] != in_cloud[to] {
                // The request leg leaves the cloud when the caller is in the
                // cloud; the response leg leaves when the callee is. The
                // demand series aggregates both directions of the exchange,
                // so half of it is attributed to each leg.
                let total: f64 = series.iter().sum();
                egress_bytes += total / 2.0;
            }
        }
        let traffic = self.pricing.egress_cost_for(egress_bytes);

        CostBreakdown {
            compute,
            storage,
            traffic,
        }
    }

    /// Compute (Eq. 6–7) and storage (Eq. 8–9) cost of hosting the
    /// components listed in `pool` (ascending indices) in this model's
    /// cloud. Shared by the two-site [`CostModel::evaluate_with_scratch`]
    /// and the N-site [`SiteCostModel`] so both price a pool with the exact
    /// same floating-point operations in the same order.
    fn pool_compute_storage(
        &self,
        demand: &ResourceDemand,
        pool: &[usize],
        used_per_step: &mut Vec<f64>,
    ) -> (f64, f64) {
        let step_seconds = demand.step_s as f64;

        // --- Compute (Eq. 6-7): nodes per step from CPU and memory. ---
        let mut compute = 0.0;
        for t in 0..demand.steps {
            let cpu: f64 = pool.iter().map(|&c| demand.cpu_cores[c][t]).sum();
            let mem: f64 = pool.iter().map(|&c| demand.memory_gb[c][t]).sum();
            let nodes = self.autoscaler.nodes_required(cpu, mem);
            compute += self.pricing.compute_cost_for(nodes, step_seconds);
        }

        // --- Storage (Eq. 8-9): capacity trace from the stateful data. ---
        used_per_step.clear();
        used_per_step.extend(
            (0..demand.steps).map(|t| pool.iter().map(|&c| demand.storage_gb[c][t]).sum::<f64>()),
        );
        let initial_gb = 2.0 * used_per_step.first().copied().unwrap_or(0.0);
        let mut storage = 0.0;
        if used_per_step.iter().any(|&u| u > 0.0) {
            let capacity = self.autoscaler.storage_trace(initial_gb, used_per_step);
            for cap in capacity {
                storage += self.pricing.storage_cost_for(cap, step_seconds);
            }
        }
        (compute, storage)
    }
}

/// The N-site hosting cost model: one [`CostModel`] per elastic site, each
/// billing its own pool under its own [`PricingModel`] (per-site node
/// granularity, storage price, egress price and autoscaler headroom).
///
/// Site `0` (on-prem) carries no model — owned hardware has no marginal
/// hosting cost, exactly like the original two-site `Q_Cost`. A two-entry
/// instance ([`SiteCostModel::two_site`]) is bit-identical to
/// [`CostModel::evaluate`] over the equivalent cloud-flag vector: the pool
/// pricing shares the same arithmetic and the egress accumulation visits the
/// same edges in the same order.
///
/// Egress (Eq. 10 generalised): every cross-site edge splits its traffic in
/// half — the request leg leaves the caller's site, the response leg leaves
/// the callee's site — and each half is billed at the *sending* site's
/// egress price (free when the sender is on-prem). With one cloud site this
/// reduces to the paper's rule: half the bytes of every on-prem↔cloud edge
/// leave the cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCostModel {
    /// Per-site models, indexed by [`SiteId`]; `None` = no marginal cost
    /// (the on-prem pool, or any other owned site).
    sites: Vec<Option<CostModel>>,
}

impl SiteCostModel {
    /// Build from per-site models (`None` entries are free pools).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sites are given.
    pub fn from_models(sites: Vec<Option<CostModel>>) -> Self {
        assert!(sites.len() >= 2, "a site cost model needs at least 2 sites");
        Self { sites }
    }

    /// Build from per-site pricing (`None` entries are free pools).
    pub fn from_pricings(pricings: Vec<Option<PricingModel>>) -> Self {
        Self::from_models(
            pricings
                .into_iter()
                .map(|p| p.map(CostModel::new))
                .collect(),
        )
    }

    /// The paper's two-site model: free on-prem plus one cloud priced by
    /// `pricing`.
    pub fn two_site(pricing: PricingModel) -> Self {
        Self::from_models(vec![None, Some(CostModel::new(pricing))])
    }

    /// Number of sites this model prices.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The per-site model of one site (`None` for free pools).
    pub fn site_model(&self, site: SiteId) -> Option<&CostModel> {
        self.sites.get(site.index()).and_then(|m| m.as_ref())
    }

    /// Evaluate the hosting cost of a site assignment (indexed like
    /// `demand.component_names`). Allocating convenience around
    /// [`SiteCostModel::evaluate_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if `sites.len()` differs from the demand's component count,
    /// or if an assignment names a site this model does not price.
    pub fn evaluate(&self, demand: &ResourceDemand, sites: &[SiteId]) -> CostBreakdown {
        self.evaluate_with_scratch(demand, sites, &mut CostScratch::default())
    }

    /// [`SiteCostModel::evaluate`] with caller-provided scratch buffers, the
    /// allocation-free variant used by the evaluation kernel and the
    /// baselines' scorer.
    ///
    /// # Panics
    ///
    /// Panics if `sites.len()` differs from the demand's component count,
    /// or if an assignment names a site this model does not price.
    pub fn evaluate_with_scratch(
        &self,
        demand: &ResourceDemand,
        sites: &[SiteId],
        scratch: &mut CostScratch,
    ) -> CostBreakdown {
        assert_eq!(
            sites.len(),
            demand.component_count(),
            "placement must cover every component"
        );
        debug_assert!(
            sites.iter().all(|s| s.index() < self.sites.len()),
            "site assignment outside the catalog"
        );
        // Egress leaving each site, accumulated in one pass over the edge
        // map: every cross-site edge splits its traffic in half between its
        // endpoints' sites (request leg leaves the caller's site, response
        // leg the callee's). Per-site bucket sums see the same additions in
        // the same (map) order as a per-site edge scan would, so the totals
        // are bit-identical at a single traversal.
        scratch.egress.clear();
        scratch.egress.resize(self.sites.len(), 0.0);
        for (&(from, to), series) in &demand.edge_bytes {
            if sites[from] != sites[to] {
                let half = series.iter().sum::<f64>() / 2.0;
                scratch.egress[sites[from].index()] += half;
                scratch.egress[sites[to].index()] += half;
            }
        }
        let mut total = CostBreakdown::default();
        for (index, model) in self.sites.iter().enumerate() {
            let Some(model) = model else { continue };
            let site = SiteId(index as u16);
            scratch.cloud.clear();
            scratch
                .cloud
                .extend((0..sites.len()).filter(|&i| sites[i] == site));
            let (compute, storage) =
                model.pool_compute_storage(demand, &scratch.cloud, &mut scratch.used_per_step);
            total.compute += compute;
            total.storage += storage;
            total.traffic += model.pricing.egress_cost_for(scratch.egress[index]);
        }
        total
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(PricingModel::default())
    }
}

/// A [`SiteCostModel`] bound to one demand matrix at compile time, the
/// allocation-free fast path of hot evaluation loops.
///
/// Two placement-independent computations dominate
/// [`SiteCostModel::evaluate_with_scratch`] and are hoisted here once per
/// model instead of being repeated per plan:
///
/// * the per-edge traffic totals (each edge's series is summed and halved
///   up front, in the demand map's iteration order, so the per-site egress
///   buckets see the identical additions), and
/// * the resource matrices flattened to contiguous component rows, scanned
///   once per evaluation to accumulate per-site per-step usage (instead of
///   one indexed-gather pass per site); components with no storage at any
///   step skip the storage accumulation outright (their contribution is an
///   exact `+0.0`).
///
/// Each site's per-step sums still receive the identical additions in
/// ascending component order, and its storage trace still grows through
/// [`Autoscaler::storage_trace_into`], so scoring is bit-identical to the
/// uncompiled model over the same demand — pinned by unit and property
/// tests.
#[derive(Debug, Clone)]
pub struct CompiledCost {
    sites: Vec<Option<CostModel>>,
    components: usize,
    steps: usize,
    step_s: u64,
    /// Flattened cpu+memory rows: one `2 * steps` block per component (its
    /// cpu row, then its memory row), so each component accumulates with a
    /// single contiguous add.
    res: Vec<f64>,
    /// Flattened storage rows: step `t` of component `c` at `c * steps + t`.
    storage: Vec<f64>,
    /// Whether a component stores anything at any step (all-zero rows are
    /// skipped by the storage accumulation).
    has_storage: Vec<bool>,
    /// Cross-component edges with nonzero traffic, in the demand map's
    /// iteration order, each carrying its precomputed half-total.
    edges: Vec<CompiledEdge>,
}

/// Element-wise `acc[t] += row[t]` over two equal-length step rows (slice
/// form so the compiler drops the bounds checks and vectorises).
#[inline]
fn add_rows(acc: &mut [f64], row: &[f64]) {
    for (a, &v) in acc.iter_mut().zip(row) {
        *a += v;
    }
}

/// One compiled demand edge: endpoints plus the placement-independent half
/// of its total bytes (the share each endpoint's site egresses when the
/// edge crosses sites).
#[derive(Debug, Clone, Copy)]
struct CompiledEdge {
    from: u32,
    to: u32,
    half_bytes: f64,
}

impl SiteCostModel {
    /// Compile this model against one demand matrix (see [`CompiledCost`]).
    ///
    /// # Panics
    ///
    /// Panics if the demand's edge map names a component outside its own
    /// index space.
    pub fn compile(&self, demand: &ResourceDemand) -> CompiledCost {
        let n = demand.component_count();
        let steps = demand.steps;
        let mut res = vec![0.0; n * 2 * steps];
        let mut storage = vec![0.0; n * steps];
        for c in 0..n {
            let block = c * 2 * steps;
            res[block..block + steps].copy_from_slice(&demand.cpu_cores[c]);
            res[block + steps..block + 2 * steps].copy_from_slice(&demand.memory_gb[c]);
            storage[c * steps..(c + 1) * steps].copy_from_slice(&demand.storage_gb[c]);
        }
        let has_storage = (0..n)
            .map(|c| demand.storage_gb[c].iter().any(|&v| v != 0.0))
            .collect();
        let edges = demand
            .edge_bytes
            .iter()
            .map(|(&(from, to), series)| {
                assert!(from < n && to < n, "edge outside the component index");
                CompiledEdge {
                    from: from as u32,
                    to: to as u32,
                    half_bytes: series.iter().sum::<f64>() / 2.0,
                }
            })
            .filter(|e| e.half_bytes != 0.0)
            .collect();
        CompiledCost {
            sites: self.sites.clone(),
            components: n,
            steps,
            step_s: demand.step_s,
            res,
            storage,
            has_storage,
            edges,
        }
    }
}

impl CompiledCost {
    /// Number of sites the compiled model prices.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Evaluate the hosting cost of a site assignment — bit-identical to
    /// [`SiteCostModel::evaluate_with_scratch`] over the demand this kernel
    /// was compiled against.
    ///
    /// # Panics
    ///
    /// Panics if `sites.len()` differs from the compiled component count.
    pub fn evaluate_with_scratch(
        &self,
        sites: &[SiteId],
        scratch: &mut CostScratch,
    ) -> CostBreakdown {
        self.evaluate_with_peaks(sites, scratch).0
    }

    /// [`Self::evaluate_with_scratch`] plus the on-prem peak demands, both
    /// read off the same accumulation pass. The peaks are bit-identical to
    /// [`ResourceDemand::peak_cpu`] (and the memory/storage twins) over the
    /// ascending on-prem component subset — the feasibility inputs of
    /// Eq. 4 — so a fused cost-plus-constraints evaluation scores each
    /// component row exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `sites.len()` differs from the compiled component count.
    pub fn evaluate_with_peaks(
        &self,
        sites: &[SiteId],
        scratch: &mut CostScratch,
    ) -> (CostBreakdown, OnPremPeaks) {
        assert_eq!(
            sites.len(),
            self.components,
            "placement must cover every component"
        );
        debug_assert!(
            sites.iter().all(|s| s.index() < self.sites.len()),
            "site assignment outside the catalog"
        );
        scratch.egress.clear();
        scratch.egress.resize(self.sites.len(), 0.0);
        for e in &self.edges {
            let (from, to) = (e.from as usize, e.to as usize);
            if sites[from] != sites[to] {
                scratch.egress[sites[from].index()] += e.half_bytes;
                scratch.egress[sites[to].index()] += e.half_bytes;
            }
        }
        // One contiguous pass over the demand rows accumulates every
        // site's per-step usage; each accumulator sees its components in
        // ascending order, exactly like the uncompiled per-site pool sums
        // and the interpretive on-prem peak scans.
        let steps = self.steps;
        scratch.site_res.clear();
        scratch.site_res.resize(self.sites.len() * 2 * steps, 0.0);
        scratch.site_storage.clear();
        scratch.site_storage.resize(self.sites.len() * steps, 0.0);
        for (c, &site) in sites.iter().enumerate() {
            let acc = site.index() * 2 * steps;
            let block = c * 2 * steps;
            add_rows(
                &mut scratch.site_res[acc..acc + 2 * steps],
                &self.res[block..block + 2 * steps],
            );
            if self.has_storage[c] {
                let acc = site.index() * steps;
                let row = c * steps;
                add_rows(
                    &mut scratch.site_storage[acc..acc + steps],
                    &self.storage[row..row + steps],
                );
            }
        }
        let peaks = OnPremPeaks {
            cpu: peak_of(&scratch.site_res[..steps]),
            memory_gb: peak_of(&scratch.site_res[steps..2 * steps]),
            storage_gb: peak_of(&scratch.site_storage[..steps]),
        };
        let step_seconds = self.step_s as f64;
        let mut total = CostBreakdown::default();
        for (index, model) in self.sites.iter().enumerate() {
            let Some(model) = model else { continue };
            let res = &scratch.site_res[index * 2 * steps..(index + 1) * 2 * steps];
            let (cpu, mem) = res.split_at(steps);
            let acc = index * steps;
            // Per-site subtotals first, added to the breakdown once — the
            // same summation tree as the uncompiled per-site pool pricing.
            let mut compute = 0.0;
            for t in 0..steps {
                let nodes = model.autoscaler.nodes_required(cpu[t], mem[t]);
                compute += model.pricing.compute_cost_for(nodes, step_seconds);
            }
            let used = &scratch.site_storage[acc..acc + steps];
            let mut storage = 0.0;
            if used.iter().any(|&u| u > 0.0) {
                let initial_gb = 2.0 * used.first().copied().unwrap_or(0.0);
                model
                    .autoscaler
                    .storage_trace_into(initial_gb, used, &mut scratch.used_per_step);
                for &cap in &scratch.used_per_step {
                    storage += model.pricing.storage_cost_for(cap, step_seconds);
                }
            }
            total.compute += compute;
            total.storage += storage;
            total.traffic += model.pricing.egress_cost_for(scratch.egress[index]);
        }
        (total, peaks)
    }

    /// Peak per-step demands accumulated at `site` by the latest
    /// [`Self::evaluate_with_peaks`] call on `scratch`, read off the
    /// retained accumulation rows without re-scanning the demand matrix.
    /// Site 0 reproduces the returned [`OnPremPeaks`] bit-for-bit; owned
    /// sites at higher indices feed their Eq. 4 capacity checks from the
    /// same pass.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was not filled by this kernel (row bounds
    /// mismatch) or `site` is outside the catalog.
    pub fn site_peaks(&self, scratch: &CostScratch, site: usize) -> OnPremPeaks {
        let steps = self.steps;
        let res = &scratch.site_res[site * 2 * steps..(site + 1) * 2 * steps];
        OnPremPeaks {
            cpu: peak_of(&res[..steps]),
            memory_gb: peak_of(&res[steps..]),
            storage_gb: peak_of(&scratch.site_storage[site * steps..(site + 1) * steps]),
        }
    }
}

/// Peak on-prem (site 0) resource demands of one placement, read off the
/// accumulation pass of [`CompiledCost::evaluate_with_peaks`]. Bit-identical
/// to the interpretive per-step subset sums, so constraint verdicts built on
/// them match the uncompiled path exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnPremPeaks {
    /// Peak summed CPU cores of on-prem components over the horizon.
    pub cpu: f64,
    /// Peak summed memory (GB) of on-prem components over the horizon.
    pub memory_gb: f64,
    /// Peak summed storage (GB) of on-prem components over the horizon.
    pub storage_gb: f64,
}

/// `max` of a per-step series, starting from zero like the interpretive
/// peak scans.
#[inline]
fn peak_of(series: &[f64]) -> f64 {
    series.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Provider;

    fn demand() -> ResourceDemand {
        let names = vec![
            "Frontend".to_string(),
            "Service".to_string(),
            "MongoDB".to_string(),
        ];
        let mut d = ResourceDemand::zeros(names, 6, 600); // one hour in 10-minute steps
        d.fill_cpu(0, 2.0);
        d.fill_cpu(1, 6.0);
        d.fill_cpu(2, 1.0);
        d.fill_memory(0, 1.0);
        d.fill_memory(1, 4.0);
        d.fill_memory(2, 8.0);
        d.fill_storage(2, 40.0);
        d.fill_edge(0, 1, 5.0e8); // 500 MB per step between Frontend and Service
        d.fill_edge(1, 2, 2.0e8);
        d
    }

    #[test]
    fn all_onprem_costs_nothing() {
        let model = CostModel::default();
        let cost = model.evaluate(&demand(), &[false, false, false]);
        assert_eq!(cost.total(), 0.0);
    }

    #[test]
    fn compute_cost_counts_only_cloud_components() {
        let model = CostModel::default();
        let only_service = model.evaluate(&demand(), &[false, true, false]);
        assert!(only_service.compute > 0.0);
        assert_eq!(only_service.storage, 0.0, "no stateful component offloaded");
        let service_and_db = model.evaluate(&demand(), &[false, true, true]);
        assert!(service_and_db.compute >= only_service.compute);
        assert!(service_and_db.storage > 0.0);
    }

    #[test]
    fn traffic_cost_only_on_cross_location_edges() {
        let model = CostModel::default();
        // Frontend on-prem, Service+DB in cloud → only the 0→1 edge crosses.
        let split = model.evaluate(&demand(), &[false, true, true]);
        // Everything in cloud → no cross edge, no egress.
        let all_cloud = model.evaluate(&demand(), &[true, true, true]);
        assert!(split.traffic > 0.0);
        assert_eq!(all_cloud.traffic, 0.0);
    }

    #[test]
    fn colocating_chatty_components_is_cheaper() {
        let model = CostModel::default();
        // Offloading only the Service splits both of its heavy edges.
        let split_both = model.evaluate(&demand(), &[false, true, false]);
        // Offloading Service + DB keeps the 1→2 edge local.
        let keep_pair = model.evaluate(&demand(), &[false, true, true]);
        assert!(split_both.traffic > keep_pair.traffic);
    }

    #[test]
    fn per_day_scaling() {
        let model = CostModel::default();
        let cost = model.evaluate(&demand(), &[false, true, true]);
        let per_day = cost.per_day(3_600);
        assert!((per_day.total() - cost.total() * 24.0).abs() < 1e-9);
        // Degenerate horizon returns the original.
        assert_eq!(cost.per_day(0).total(), cost.total());
    }

    #[test]
    fn providers_change_the_price_not_the_structure() {
        let d = demand();
        let aws = CostModel::new(PricingModel::preset(Provider::AwsLike))
            .evaluate(&d, &[false, true, true]);
        let gcp = CostModel::new(PricingModel::preset(Provider::GcpLike))
            .evaluate(&d, &[false, true, true]);
        assert_ne!(aws.total(), gcp.total());
        assert!(aws.compute > 0.0 && gcp.compute > 0.0);
    }

    #[test]
    #[should_panic(expected = "placement must cover every component")]
    fn mismatched_placement_panics() {
        let model = CostModel::default();
        let _ = model.evaluate(&demand(), &[true]);
    }

    /// The two-entry site model reproduces the binary cost model to the last
    /// bit: pool pricing shares the arithmetic and the egress pass visits
    /// the edges in the same order.
    #[test]
    fn two_site_model_is_bit_identical_to_the_binary_cost_model() {
        let d = demand();
        let binary = CostModel::default();
        let sited = SiteCostModel::two_site(PricingModel::default());
        assert_eq!(sited.site_count(), 2);
        assert!(sited.site_model(SiteId::ON_PREM).is_none());
        assert!(sited.site_model(SiteId::CLOUD).is_some());
        for flags in [
            [false, false, false],
            [false, true, false],
            [false, true, true],
            [true, true, true],
            [true, false, true],
        ] {
            let sites: Vec<SiteId> = flags
                .iter()
                .map(|&f| if f { SiteId::CLOUD } else { SiteId::ON_PREM })
                .collect();
            let a = binary.evaluate(&d, &flags);
            let b = sited.evaluate(&d, &sites);
            assert_eq!(a.compute.to_bits(), b.compute.to_bits(), "{flags:?}");
            assert_eq!(a.storage.to_bits(), b.storage.to_bits(), "{flags:?}");
            assert_eq!(a.traffic.to_bits(), b.traffic.to_bits(), "{flags:?}");
        }
    }

    /// Each elastic site bills its own pool under its own pricing, and a
    /// cross-cloud edge pays egress at *both* sites.
    #[test]
    fn per_site_pricing_and_cross_cloud_egress() {
        let d = demand();
        let aws = PricingModel::preset(Provider::AwsLike);
        let gcp = PricingModel::preset(Provider::GcpLike);
        let model = SiteCostModel::from_pricings(vec![None, Some(aws.clone()), Some(gcp.clone())]);
        assert_eq!(model.site_count(), 3);

        // Frontend on-prem, Service at site 1, MongoDB at site 2: the 0→1
        // edge pays egress at site 1 only; the 1→2 edge pays at both.
        let split = model.evaluate(&d, &[SiteId(0), SiteId(1), SiteId(2)]);
        // Same shape but the pair collocated at site 1: the 1→2 edge
        // becomes intra-site and free.
        let collocated = model.evaluate(&d, &[SiteId(0), SiteId(1), SiteId(1)]);
        assert!(split.traffic > collocated.traffic);

        // Moving a component between sites with different compute prices
        // changes the compute bill.
        let on_aws = model.evaluate(&d, &[SiteId(0), SiteId(1), SiteId(0)]);
        let on_gcp = model.evaluate(&d, &[SiteId(0), SiteId(2), SiteId(0)]);
        assert!(on_aws.compute > 0.0 && on_gcp.compute > 0.0);
        assert_ne!(on_aws.compute, on_gcp.compute);

        // All components on-prem: nothing to bill.
        assert_eq!(model.evaluate(&d, &[SiteId(0); 3]).total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 sites")]
    fn degenerate_site_models_are_rejected() {
        let _ = SiteCostModel::from_pricings(vec![None]);
    }

    /// The compiled kernel reproduces the uncompiled model bit-for-bit over
    /// every assignment of a 3-site catalog, including all-on-prem,
    /// collocated, and fully split placements.
    #[test]
    fn compiled_cost_is_bit_identical_to_the_model() {
        let d = demand();
        let aws = PricingModel::preset(Provider::AwsLike);
        let gcp = PricingModel::preset(Provider::GcpLike);
        let model = SiteCostModel::from_pricings(vec![None, Some(aws), Some(gcp)]);
        let compiled = model.compile(&d);
        assert_eq!(compiled.site_count(), 3);
        let mut scratch = CostScratch::default();
        for a in 0..3u16 {
            for b in 0..3u16 {
                for c in 0..3u16 {
                    let sites = [SiteId(a), SiteId(b), SiteId(c)];
                    let want = model.evaluate(&d, &sites);
                    let got = compiled.evaluate_with_scratch(&sites, &mut scratch);
                    assert_eq!(want.compute.to_bits(), got.compute.to_bits(), "{sites:?}");
                    assert_eq!(want.storage.to_bits(), got.storage.to_bits(), "{sites:?}");
                    assert_eq!(want.traffic.to_bits(), got.traffic.to_bits(), "{sites:?}");
                }
            }
        }
    }

    /// Compiling hoists only placement-independent work: edges with no
    /// traffic drop out and all-zero storage columns are skipped, neither
    /// of which can shift a sum.
    #[test]
    fn compiled_cost_prunes_dead_edges_and_storage() {
        let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let mut d = ResourceDemand::zeros(names, 4, 600);
        d.fill_cpu(0, 1.0);
        d.fill_cpu(1, 2.0);
        d.fill_cpu(2, 0.5);
        d.fill_memory(0, 1.0);
        d.fill_memory(1, 1.0);
        d.fill_memory(2, 1.0);
        d.fill_edge(0, 1, 0.0); // dead edge: pruned at compile time
        d.fill_edge(1, 2, 3.0e8);
        let model = SiteCostModel::two_site(PricingModel::default());
        let compiled = model.compile(&d);
        assert_eq!(compiled.edges.len(), 1, "zero-traffic edge must be pruned");
        assert!(
            compiled.has_storage.iter().all(|&h| !h),
            "no component stores anything"
        );
        let mut scratch = CostScratch::default();
        for mask in 0..8u16 {
            let sites = [
                SiteId(mask & 1),
                SiteId((mask >> 1) & 1),
                SiteId((mask >> 2) & 1),
            ];
            let want = model.evaluate(&d, &sites);
            let got = compiled.evaluate_with_scratch(&sites, &mut scratch);
            assert_eq!(want.total().to_bits(), got.total().to_bits(), "{sites:?}");
        }
    }
}
