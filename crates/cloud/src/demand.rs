//! Expected resource demand: the `Ũ^r_c[t]` series consumed by the
//! constraint and cost models.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Expected resource usage per component per time step, plus expected
//  per-edge traffic, over the period of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceDemand {
    /// Length of one time step in seconds (the paper evaluates the cost
    /// every ten minutes; the cost model works with any step).
    pub step_s: u64,
    /// Number of time steps.
    pub steps: usize,
    /// Component names, defining the component index space.
    pub component_names: Vec<String>,
    /// Expected CPU cores: `cpu[component][step]`.
    pub cpu_cores: Vec<Vec<f64>>,
    /// Expected memory in GB: `memory_gb[component][step]`.
    pub memory_gb: Vec<Vec<f64>>,
    /// Expected storage in GB: `storage_gb[component][step]`.
    pub storage_gb: Vec<Vec<f64>>,
    /// Expected bytes transferred per step on each directed component edge:
    /// `edge_bytes[(from, to)][step]`.
    pub edge_bytes: HashMap<(usize, usize), Vec<f64>>,
}

impl ResourceDemand {
    /// Create an all-zero demand for `component_names` over `steps` steps.
    pub fn zeros(component_names: Vec<String>, steps: usize, step_s: u64) -> Self {
        let n = component_names.len();
        Self {
            step_s,
            steps,
            component_names,
            cpu_cores: vec![vec![0.0; steps]; n],
            memory_gb: vec![vec![0.0; steps]; n],
            storage_gb: vec![vec![0.0; steps]; n],
            edge_bytes: HashMap::new(),
        }
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.component_names.len()
    }

    /// Index of a component by name.
    pub fn component_index(&self, name: &str) -> Option<usize> {
        self.component_names.iter().position(|n| n == name)
    }

    /// Total duration covered, in seconds.
    pub fn duration_s(&self) -> u64 {
        self.step_s * self.steps as u64
    }

    /// Sum of expected CPU cores of a subset of components at a step.
    pub fn cpu_sum_at(&self, components: impl IntoIterator<Item = usize>, step: usize) -> f64 {
        components
            .into_iter()
            .map(|c| self.cpu_cores[c][step])
            .sum()
    }

    /// Peak (over steps) of the summed CPU demand of a subset of components.
    pub fn peak_cpu(&self, components: &[usize]) -> f64 {
        (0..self.steps)
            .map(|t| self.cpu_sum_at(components.iter().copied(), t))
            .fold(0.0, f64::max)
    }

    /// Peak (over steps) of the summed memory demand of a subset.
    pub fn peak_memory_gb(&self, components: &[usize]) -> f64 {
        (0..self.steps)
            .map(|t| {
                components
                    .iter()
                    .map(|&c| self.memory_gb[c][t])
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Peak (over steps) of the summed storage demand of a subset.
    pub fn peak_storage_gb(&self, components: &[usize]) -> f64 {
        (0..self.steps)
            .map(|t| {
                components
                    .iter()
                    .map(|&c| self.storage_gb[c][t])
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Total bytes expected on a directed edge over the whole period.
    pub fn total_edge_bytes(&self, from: usize, to: usize) -> f64 {
        self.edge_bytes
            .get(&(from, to))
            .map_or(0.0, |v| v.iter().sum())
    }

    /// Set a constant value for a component's whole CPU series.
    pub fn fill_cpu(&mut self, component: usize, cores: f64) {
        self.cpu_cores[component] = vec![cores; self.steps];
    }

    /// Set a constant value for a component's whole memory series.
    pub fn fill_memory(&mut self, component: usize, gb: f64) {
        self.memory_gb[component] = vec![gb; self.steps];
    }

    /// Set a constant value for a component's whole storage series.
    pub fn fill_storage(&mut self, component: usize, gb: f64) {
        self.storage_gb[component] = vec![gb; self.steps];
    }

    /// Set a constant per-step value for a directed edge's traffic.
    pub fn fill_edge(&mut self, from: usize, to: usize, bytes_per_step: f64) {
        self.edge_bytes
            .insert((from, to), vec![bytes_per_step; self.steps]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> ResourceDemand {
        let mut d = ResourceDemand::zeros(
            vec!["A".to_string(), "B".to_string(), "C".to_string()],
            4,
            600,
        );
        d.fill_cpu(0, 1.0);
        d.fill_cpu(1, 2.0);
        d.cpu_cores[2] = vec![0.0, 4.0, 1.0, 0.0];
        d.fill_memory(0, 0.5);
        d.fill_storage(2, 20.0);
        d.fill_edge(0, 1, 1_000.0);
        d
    }

    #[test]
    fn basic_queries() {
        let d = demand();
        assert_eq!(d.component_count(), 3);
        assert_eq!(d.duration_s(), 2_400);
        assert_eq!(d.component_index("B"), Some(1));
        assert_eq!(d.component_index("Z"), None);
    }

    #[test]
    fn cpu_aggregations() {
        let d = demand();
        assert_eq!(d.cpu_sum_at([0, 1], 0), 3.0);
        assert_eq!(d.cpu_sum_at([0, 1, 2], 1), 7.0);
        assert_eq!(d.peak_cpu(&[0, 1, 2]), 7.0);
        assert_eq!(d.peak_cpu(&[2]), 4.0);
        assert_eq!(d.peak_cpu(&[]), 0.0);
    }

    #[test]
    fn memory_and_storage_peaks() {
        let d = demand();
        assert_eq!(d.peak_memory_gb(&[0, 1]), 0.5);
        assert_eq!(d.peak_storage_gb(&[2]), 20.0);
        assert_eq!(d.peak_storage_gb(&[0]), 0.0);
    }

    #[test]
    fn edge_totals() {
        let d = demand();
        assert_eq!(d.total_edge_bytes(0, 1), 4_000.0);
        assert_eq!(d.total_edge_bytes(1, 0), 0.0);
    }
}
