//! The generalised public-cloud pricing model (paper Appendix A).
//!
//! Public clouds charge for (i) compute nodes provisioned by the cluster
//! autoscaler, (ii) storage capacity, and (iii) egress traffic leaving their
//! datacenters (ingress is free). The exact figures vary per provider and
//! over time — the paper's evaluation uses AWS-like numbers (`m5.large` at
//! $0.096/h, $0.08/GB-month storage, $0.09/GB egress) — so the model is kept
//! as a plain parameter struct with presets.

use serde::{Deserialize, Serialize};

/// Cloud providers with built-in pricing presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provider {
    /// Amazon-Web-Services-like pricing.
    AwsLike,
    /// Microsoft-Azure-like pricing.
    AzureLike,
    /// Google-Cloud-like pricing.
    GcpLike,
}

/// Pricing and node-granularity parameters of one cloud provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// Name of the node type the cluster autoscaler provisions.
    pub node_type: String,
    /// CPU cores per node (`Ω_CPU`).
    pub node_cpu_cores: f64,
    /// Memory per node in GB (`Ω_mem`).
    pub node_memory_gb: f64,
    /// Price per node per hour (`Θ_compute`), in dollars.
    pub compute_per_node_hour: f64,
    /// Price per GB of provisioned storage per month (`Θ_storage`), dollars.
    pub storage_per_gb_month: f64,
    /// Price per GB of egress traffic (`Θ_traffic`), dollars.
    pub egress_per_gb: f64,
    /// Headroom fraction that triggers scale-up (`δ`), e.g. 0.2 to keep 20 %
    /// of each resource free.
    pub headroom: f64,
}

impl PricingModel {
    /// Pricing preset for a provider.
    pub fn preset(provider: Provider) -> Self {
        match provider {
            Provider::AwsLike => Self {
                node_type: "m5.large-x2".to_string(),
                node_cpu_cores: 4.0,
                node_memory_gb: 16.0,
                compute_per_node_hour: 0.192,
                storage_per_gb_month: 0.08,
                egress_per_gb: 0.09,
                headroom: 0.20,
            },
            Provider::AzureLike => Self {
                node_type: "D4s_v3".to_string(),
                node_cpu_cores: 4.0,
                node_memory_gb: 16.0,
                compute_per_node_hour: 0.208,
                storage_per_gb_month: 0.095,
                egress_per_gb: 0.087,
                headroom: 0.20,
            },
            Provider::GcpLike => Self {
                node_type: "e2-standard-4".to_string(),
                node_cpu_cores: 4.0,
                node_memory_gb: 16.0,
                compute_per_node_hour: 0.134,
                storage_per_gb_month: 0.10,
                egress_per_gb: 0.12,
                headroom: 0.20,
            },
        }
    }

    /// Price of one node for `seconds` of usage.
    pub fn compute_cost_for(&self, nodes: usize, seconds: f64) -> f64 {
        self.compute_per_node_hour * nodes as f64 * seconds / 3_600.0
    }

    /// Price of `gb` of storage provisioned for `seconds`.
    ///
    /// Storage is billed per GB-month; a month is taken as 30 days.
    pub fn storage_cost_for(&self, gb: f64, seconds: f64) -> f64 {
        const MONTH_SECONDS: f64 = 30.0 * 24.0 * 3_600.0;
        self.storage_per_gb_month * gb * seconds / MONTH_SECONDS
    }

    /// Price of `bytes` of egress traffic.
    pub fn egress_cost_for(&self, bytes: f64) -> f64 {
        self.egress_per_gb * bytes / 1.0e9
    }
}

impl Default for PricingModel {
    fn default() -> Self {
        Self::preset(Provider::AwsLike)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_positive() {
        let aws = PricingModel::preset(Provider::AwsLike);
        let azure = PricingModel::preset(Provider::AzureLike);
        let gcp = PricingModel::preset(Provider::GcpLike);
        for p in [&aws, &azure, &gcp] {
            assert!(p.compute_per_node_hour > 0.0);
            assert!(p.storage_per_gb_month > 0.0);
            assert!(p.egress_per_gb > 0.0);
            assert!(p.node_cpu_cores > 0.0);
            assert!((0.0..1.0).contains(&p.headroom));
        }
        assert_ne!(aws.compute_per_node_hour, gcp.compute_per_node_hour);
    }

    #[test]
    fn compute_cost_scales_linearly() {
        let p = PricingModel::default();
        let one_hour_one_node = p.compute_cost_for(1, 3_600.0);
        assert!((one_hour_one_node - p.compute_per_node_hour).abs() < 1e-12);
        assert!((p.compute_cost_for(3, 3_600.0) - 3.0 * one_hour_one_node).abs() < 1e-12);
        assert!((p.compute_cost_for(1, 1_800.0) - 0.5 * one_hour_one_node).abs() < 1e-12);
    }

    #[test]
    fn storage_cost_is_prorated_per_month() {
        let p = PricingModel::default();
        let full_month = p.storage_cost_for(100.0, 30.0 * 24.0 * 3_600.0);
        assert!((full_month - 8.0).abs() < 1e-9, "100 GB at $0.08/GB-month");
        let half_month = p.storage_cost_for(100.0, 15.0 * 24.0 * 3_600.0);
        assert!((half_month - 4.0).abs() < 1e-9);
    }

    #[test]
    fn egress_cost_per_gb() {
        let p = PricingModel::default();
        assert!((p.egress_cost_for(1.0e9) - 0.09).abs() < 1e-12);
        assert_eq!(p.egress_cost_for(0.0), 0.0);
    }
}
