//! Resource estimation: deriving the expected demand from telemetry.
//!
//! Atlas treats the estimator as a pluggable black box: the paper uses
//! DeepRest \[34\] to predict the resources needed to serve the expected API
//! traffic in the period of interest. DeepRest itself is a learned model on
//! production traces; this crate provides a [`ScalingEstimator`] that plays
//! the same role — it derives per-component resource profiles from the
//! observed telemetry and scales them to the expected traffic level (e.g.
//! the 5× burst of the evaluation). Anything that implements
//! [`ResourceEstimator`] can be plugged into Atlas instead.

use atlas_telemetry::{Direction, MetricKind, TelemetryStore};

use crate::demand::ResourceDemand;

/// A resource estimator: telemetry in, expected demand out.
pub trait ResourceEstimator {
    /// Estimate the expected resource usage of every component over a
    /// horizon of `steps` steps of `step_s` seconds each.
    fn estimate(
        &self,
        store: &TelemetryStore,
        component_names: &[String],
        steps: usize,
        step_s: u64,
    ) -> ResourceDemand;
}

/// A DeepRest substitute: scales the observed per-component usage to the
/// expected traffic level and replays the observed diurnal shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingEstimator {
    /// Expected traffic growth relative to the observation period (the
    /// paper's burst scenario uses 5×).
    pub traffic_scale: f64,
    /// Fraction of the per-component CPU that scales with traffic (the rest
    /// is the idle baseline).
    pub cpu_traffic_fraction: f64,
    /// Fraction of the memory footprint that scales with traffic.
    pub memory_traffic_fraction: f64,
}

impl Default for ScalingEstimator {
    fn default() -> Self {
        Self {
            traffic_scale: 1.0,
            cpu_traffic_fraction: 0.85,
            memory_traffic_fraction: 0.25,
        }
    }
}

impl ScalingEstimator {
    /// An estimator expecting `traffic_scale`× the observed traffic.
    pub fn with_scale(traffic_scale: f64) -> Self {
        Self {
            traffic_scale,
            ..Self::default()
        }
    }

    fn scaled(&self, observed: f64, traffic_fraction: f64) -> f64 {
        let fixed = observed * (1.0 - traffic_fraction);
        let variable = observed * traffic_fraction * self.traffic_scale;
        fixed + variable
    }
}

impl ResourceEstimator for ScalingEstimator {
    fn estimate(
        &self,
        store: &TelemetryStore,
        component_names: &[String],
        steps: usize,
        step_s: u64,
    ) -> ResourceDemand {
        let mut demand = ResourceDemand::zeros(component_names.to_vec(), steps, step_s);

        // The shape of the expected period mirrors the shape of the observed
        // period: we resample each component's observed series onto the
        // requested number of steps (stretching or compressing in time), and
        // scale the traffic-dependent share.
        for (ci, name) in component_names.iter().enumerate() {
            let metrics = store.component_metrics(name);
            let (cpu_obs, mem_obs, storage_obs) = match &metrics {
                Some(m) => (
                    m.series(MetricKind::CpuCores).cloned().unwrap_or_default(),
                    m.series(MetricKind::MemoryGb).cloned().unwrap_or_default(),
                    m.series(MetricKind::StorageGb).cloned().unwrap_or_default(),
                ),
                None => Default::default(),
            };
            let resample = |points: &atlas_telemetry::MetricSeries, fallback: f64| -> Vec<f64> {
                if points.is_empty() {
                    return vec![fallback; steps];
                }
                let src: Vec<f64> = points.points().iter().map(|p| p.value).collect();
                (0..steps)
                    .map(|t| {
                        let idx = t * src.len() / steps.max(1);
                        src[idx.min(src.len() - 1)]
                    })
                    .collect()
            };
            let cpu = resample(&cpu_obs, 0.0);
            let mem = resample(&mem_obs, 0.0);
            let sto = resample(&storage_obs, 0.0);
            for t in 0..steps {
                demand.cpu_cores[ci][t] = self.scaled(cpu[t], self.cpu_traffic_fraction);
                demand.memory_gb[ci][t] = self.scaled(mem[t], self.memory_traffic_fraction);
                // Storage does not scale with short-term traffic.
                demand.storage_gb[ci][t] = sto[t];
            }
        }

        // Edge traffic: total observed bytes on each directed edge, spread
        // uniformly over the horizon and scaled with traffic.
        let traffic = store.traffic();
        let observed_duration_s = component_names
            .iter()
            .filter_map(|n| store.component_metrics(n))
            .flat_map(|m| {
                m.series(MetricKind::CpuCores)
                    .map(|s| s.points().last().map(|p| p.timestamp_s + 1).unwrap_or(1))
            })
            .max()
            .unwrap_or(1) as f64;
        for edge in traffic.edges() {
            let from = component_names.iter().position(|n| *n == edge.from);
            let to = component_names.iter().position(|n| *n == edge.to);
            let (Some(from), Some(to)) = (from, to) else {
                continue;
            };
            let total = traffic.total_bytes(&edge, Direction::Request)
                + traffic.total_bytes(&edge, Direction::Response);
            let per_second = total / observed_duration_s.max(1.0);
            let per_step = per_second * step_s as f64 * self.traffic_scale;
            demand.fill_edge(from, to, per_step);
        }

        demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_history() -> (TelemetryStore, Vec<String>) {
        let store = TelemetryStore::new();
        let names = vec!["A".to_string(), "B".to_string()];
        for t in 0..100u64 {
            // A ramps up over time; B is flat.
            store.record_metric("A", MetricKind::CpuCores, t, 0.5 + t as f64 / 100.0);
            store.record_metric("A", MetricKind::MemoryGb, t, 2.0);
            store.record_metric("B", MetricKind::CpuCores, t, 1.0);
            store.record_metric("B", MetricKind::StorageGb, t, 30.0);
        }
        for t in 0..100u64 {
            store.record_traffic("A", "B", Direction::Request, t, 1_000.0);
            store.record_traffic("A", "B", Direction::Response, t, 500.0);
        }
        (store, names)
    }

    #[test]
    fn unscaled_estimate_mirrors_observation() {
        let (store, names) = store_with_history();
        let est = ScalingEstimator::default();
        let d = est.estimate(&store, &names, 10, 60);
        assert_eq!(d.steps, 10);
        assert_eq!(d.component_count(), 2);
        // B's flat 1.0-core series stays ~1.0.
        assert!((d.cpu_cores[1][0] - 1.0).abs() < 1e-9);
        assert!((d.cpu_cores[1][9] - 1.0).abs() < 1e-9);
        // A's ramp is preserved: later steps are larger.
        assert!(d.cpu_cores[0][9] > d.cpu_cores[0][0]);
        // Storage follows the observation.
        assert!((d.storage_gb[1][0] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_scale_amplifies_cpu_and_edges() {
        let (store, names) = store_with_history();
        let base = ScalingEstimator::default().estimate(&store, &names, 10, 60);
        let burst = ScalingEstimator::with_scale(5.0).estimate(&store, &names, 10, 60);
        assert!(burst.cpu_cores[1][0] > 3.0 * base.cpu_cores[1][0]);
        assert!(burst.cpu_cores[1][0] < 5.0 * base.cpu_cores[1][0] + 1e-9);
        let base_edge = base.total_edge_bytes(0, 1);
        let burst_edge = burst.total_edge_bytes(0, 1);
        assert!((burst_edge / base_edge - 5.0).abs() < 1e-6);
    }

    #[test]
    fn storage_does_not_scale_with_traffic() {
        let (store, names) = store_with_history();
        let burst = ScalingEstimator::with_scale(5.0).estimate(&store, &names, 10, 60);
        assert!((burst.storage_gb[1][0] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_components_get_zero_demand() {
        let (store, _) = store_with_history();
        let names = vec!["Ghost".to_string()];
        let d = ScalingEstimator::default().estimate(&store, &names, 5, 60);
        assert_eq!(d.cpu_cores[0], vec![0.0; 5]);
        assert_eq!(d.memory_gb[0], vec![0.0; 5]);
        assert!(d.edge_bytes.is_empty());
    }
}
