//! NSGA-II building blocks: fast non-dominated sorting, crowding distance,
//! survival selection and binary tournaments (Deb et al., 2002).
//!
//! All functions minimise. Feasibility is handled with constrained
//! domination: a feasible solution always beats an infeasible one; two
//! infeasible solutions are compared by their objectives like feasible ones
//! (the caller can fold a violation measure into the objectives if desired).
//!
//! Every entry point is generic over `AsRef<[f64]>`, so populations can be
//! scored into fixed-size arrays (`[f64; 3]` for Atlas's three indicators)
//! and sorted without a per-member `Vec` allocation in the O(N²) dominance
//! loop; plain `Vec<Vec<f64>>` populations keep working unchanged.
//!
//! # Example
//!
//! Sort four candidate plans scored on two minimised objectives into Pareto
//! fronts, then keep the three best under NSGA-II survival selection:
//!
//! ```
//! use atlas_ga::nsga2::{fast_non_dominated_sort, select_survivors};
//!
//! let objectives = vec![
//!     vec![1.0, 4.0], // Pareto-optimal
//!     vec![2.0, 2.0], // Pareto-optimal
//!     vec![4.0, 1.0], // Pareto-optimal
//!     vec![4.0, 4.0], // dominated by [2.0, 2.0]
//! ];
//! let feasible = vec![true; 4];
//!
//! let fronts = fast_non_dominated_sort(&objectives, &feasible);
//! assert_eq!(fronts, vec![vec![0, 1, 2], vec![3]]);
//!
//! let mut survivors = select_survivors(&objectives, &feasible, 3);
//! survivors.sort_unstable();
//! assert_eq!(survivors, vec![0, 1, 2]);
//! ```

use rand::Rng;

use crate::pareto::dominates;

/// Whether `a` constrained-dominates `b` given their feasibility flags.
fn constrained_dominates(a: &[f64], a_feasible: bool, b: &[f64], b_feasible: bool) -> bool {
    match (a_feasible, b_feasible) {
        (true, false) => true,
        (false, true) => false,
        _ => dominates(a, b),
    }
}

/// Fast non-dominated sort: partition the population into fronts, best
/// first. `feasible[i]` marks whether member `i` satisfies all constraints.
///
/// Returns the fronts as vectors of indices; every index appears exactly
/// once.
pub fn fast_non_dominated_sort<S: AsRef<[f64]>>(
    objectives: &[S],
    feasible: &[bool],
) -> Vec<Vec<usize>> {
    let n = objectives.len();
    assert_eq!(
        n,
        feasible.len(),
        "feasibility flags must cover the population"
    );
    if n == 0 {
        return Vec::new();
    }
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if constrained_dominates(
                objectives[i].as_ref(),
                feasible[i],
                objectives[j].as_ref(),
                feasible[j],
            ) {
                dominated_by[i].push(j);
            } else if constrained_dominates(
                objectives[j].as_ref(),
                feasible[j],
                objectives[i].as_ref(),
                feasible[i],
            ) {
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// Crowding distance of each member of one front (larger = more isolated =
/// preferred for diversity). Boundary members get `f64::INFINITY`.
pub fn crowding_distance<S: AsRef<[f64]>>(objectives: &[S], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    if m == 0 {
        return Vec::new();
    }
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    let objective_count = objectives[front[0]].as_ref().len();
    let mut distance = vec![0.0f64; m];
    for k in 0..objective_count {
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            objectives[front[a]].as_ref()[k]
                .partial_cmp(&objectives[front[b]].as_ref()[k])
                .expect("objectives must be finite")
        });
        let min = objectives[front[order[0]]].as_ref()[k];
        let max = objectives[front[order[m - 1]]].as_ref()[k];
        distance[order[0]] = f64::INFINITY;
        distance[order[m - 1]] = f64::INFINITY;
        let range = max - min;
        if range <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let prev = objectives[front[order[w - 1]]].as_ref()[k];
            let next = objectives[front[order[w + 1]]].as_ref()[k];
            if distance[order[w]].is_finite() {
                distance[order[w]] += (next - prev) / range;
            }
        }
    }
    distance
}

/// NSGA-II survival: keep the `capacity` best members (by front rank, ties
/// broken by crowding distance). Returns the selected indices.
pub fn select_survivors<S: AsRef<[f64]>>(
    objectives: &[S],
    feasible: &[bool],
    capacity: usize,
) -> Vec<usize> {
    survive(objectives, feasible, capacity).selected
}

/// Outcome of one fused survival round: the surviving indices plus the rank
/// and crowding distance of each survivor *within the surviving population*,
/// ready to drive the next round of binary tournaments.
#[derive(Debug, Clone)]
pub struct Survival {
    /// Indices of the survivors into the input population, best fronts
    /// first (a truncated front is ordered by descending crowding).
    pub selected: Vec<usize>,
    /// `rank[k]` is the front index of `selected[k]` among the survivors.
    pub rank: Vec<usize>,
    /// `crowding[k]` is the crowding distance of `selected[k]` within its
    /// surviving front.
    pub crowding: Vec<f64>,
}

/// Batch-friendly survival hook: one non-dominated sort yields both the
/// survivors and their rank/crowding, where callers previously paid for
/// [`select_survivors`] followed by [`rank_and_crowding`] on the survivor
/// subset (two sorts per generation). The results are identical: front
/// membership is preserved under survival truncation because every member of
/// front `r+1` is dominated by some member of the fully-kept front `r`, and
/// crowding of a truncated front is recomputed over the kept members only.
pub fn survive<S: AsRef<[f64]>>(objectives: &[S], feasible: &[bool], capacity: usize) -> Survival {
    let fronts = fast_non_dominated_sort(objectives, feasible);
    let mut selected = Vec::with_capacity(capacity.min(objectives.len()));
    let mut rank = Vec::with_capacity(selected.capacity());
    let mut crowding = Vec::with_capacity(selected.capacity());
    for (r, front) in fronts.iter().enumerate() {
        if selected.len() >= capacity {
            break;
        }
        if selected.len() + front.len() <= capacity {
            let distances = crowding_distance(objectives, front);
            for (k, &i) in front.iter().enumerate() {
                selected.push(i);
                rank.push(r);
                crowding.push(distances[k]);
            }
        } else {
            // Truncation choice uses crowding over the *full* front (as
            // select_survivors always has); the reported crowding is then
            // recomputed over the kept members only.
            let distances = crowding_distance(objectives, front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                distances[b]
                    .partial_cmp(&distances[a])
                    .expect("crowding distances are comparable")
            });
            let kept: Vec<usize> = order
                .iter()
                .take(capacity - selected.len())
                .map(|&o| front[o])
                .collect();
            let kept_distances = crowding_distance(objectives, &kept);
            for (k, &i) in kept.iter().enumerate() {
                selected.push(i);
                rank.push(r);
                crowding.push(kept_distances[k]);
            }
        }
    }
    Survival {
        selected,
        rank,
        crowding,
    }
}

/// Retain `items[selected[0]], items[selected[1]], …` in that order,
/// consuming the input without cloning a single member: the survival
/// permutation applied by move. `selected` must not repeat an index (as
/// [`survive`]'s output never does).
///
/// This replaces the per-generation `selected.iter().map(|&i|
/// population[i].clone())` pattern, which deep-cloned every survivor every
/// generation.
pub fn take_selected<T>(items: Vec<T>, selected: &[usize]) -> Vec<T> {
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    selected
        .iter()
        .map(|&i| {
            slots[i]
                .take()
                .expect("selected indices must be unique and in range")
        })
        .collect()
}

/// Rank (front index) and crowding distance of every member, used by the
/// binary tournament.
pub fn rank_and_crowding<S: AsRef<[f64]>>(
    objectives: &[S],
    feasible: &[bool],
) -> (Vec<usize>, Vec<f64>) {
    let fronts = fast_non_dominated_sort(objectives, feasible);
    let n = objectives.len();
    let mut rank = vec![0usize; n];
    let mut crowd = vec![0.0f64; n];
    for (r, front) in fronts.iter().enumerate() {
        let distances = crowding_distance(objectives, front);
        for (k, &i) in front.iter().enumerate() {
            rank[i] = r;
            crowd[i] = distances[k];
        }
    }
    (rank, crowd)
}

/// Binary tournament: draw two random members and keep the one with the
/// better (lower) rank, breaking ties by larger crowding distance.
pub fn binary_tournament<R: Rng + ?Sized>(rng: &mut R, rank: &[usize], crowding: &[f64]) -> usize {
    let n = rank.len();
    assert!(n > 0, "tournament needs a non-empty population");
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if rank[a] < rank[b] {
        a
    } else if rank[b] < rank[a] {
        b
    } else if crowding[a] >= crowding[b] {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_feasible(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn sorting_partitions_into_correct_fronts() {
        let objs = vec![
            vec![1.0, 1.0], // front 0
            vec![2.0, 2.0], // front 1 (dominated by 0)
            vec![1.0, 3.0], // front 0? dominated by none: vs [1,1]: 1==1, 3>1 → not dominated? [1,1] dominates [1,3] (equal first, better second) → front 1
            vec![3.0, 3.0], // front 2
            vec![0.5, 4.0], // front 0
        ];
        let fronts = fast_non_dominated_sort(&objs, &all_feasible(5));
        assert_eq!(fronts[0], vec![0, 4]);
        assert!(fronts[1].contains(&1));
        assert!(fronts[1].contains(&2));
        assert_eq!(fronts.last().unwrap(), &vec![3]);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn infeasible_members_fall_behind_feasible_ones() {
        let objs = vec![
            vec![10.0, 10.0], // feasible but poor
            vec![1.0, 1.0],   // infeasible but excellent
        ];
        let fronts = fast_non_dominated_sort(&objs, &[true, false]);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1]);
    }

    #[test]
    fn crowding_prefers_boundaries_and_isolated_points() {
        let objs = vec![
            vec![0.0, 10.0],
            vec![1.0, 9.0],
            vec![2.0, 8.0],
            vec![9.0, 1.0], // isolated
            vec![10.0, 0.0],
        ];
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&objs, &front);
        assert!(d[0].is_infinite());
        assert!(d[4].is_infinite());
        assert!(d[3] > d[1], "isolated members should have larger crowding");
        assert!(d[1] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn crowding_handles_tiny_fronts_and_flat_objectives() {
        let objs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(crowding_distance(&objs, &[0, 1]), vec![f64::INFINITY; 2]);
        assert!(crowding_distance(&objs, &[]).is_empty());
        // A flat objective must not produce NaNs.
        let flat = vec![vec![1.0, 5.0], vec![1.0, 4.0], vec![1.0, 3.0]];
        let d = crowding_distance(&flat, &[0, 1, 2]);
        assert!(d.iter().all(|x| !x.is_nan()));
    }

    #[test]
    fn survivors_fill_capacity_from_best_fronts() {
        let objs = vec![
            vec![1.0, 1.0], // front 0
            vec![5.0, 5.0], // front 2
            vec![2.0, 2.0], // front 1
            vec![0.5, 3.0], // front 0
            vec![3.0, 0.5], // front 0
        ];
        let survivors = select_survivors(&objs, &all_feasible(5), 3);
        assert_eq!(survivors.len(), 3);
        assert!(survivors.contains(&0));
        assert!(!survivors.contains(&1), "worst member must not survive");

        // Capacity larger than population keeps everyone.
        let all = select_survivors(&objs, &all_feasible(5), 10);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn survivors_within_a_front_prefer_spread() {
        // Front 0 has four members; capacity 3 → the most crowded interior
        // point should be dropped.
        let objs = vec![
            vec![0.0, 10.0],
            vec![4.9, 5.1], // crowded next to [5,5]
            vec![5.0, 5.0],
            vec![10.0, 0.0],
        ];
        let survivors = select_survivors(&objs, &all_feasible(4), 3);
        assert_eq!(survivors.len(), 3);
        assert!(survivors.contains(&0));
        assert!(survivors.contains(&3));
        // One of the two crowded twins is dropped.
        assert!(survivors.contains(&1) ^ survivors.contains(&2));
    }

    #[test]
    fn tournament_prefers_better_rank_then_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let rank = vec![0, 1, 0, 2];
        let crowding = vec![1.0, f64::INFINITY, 2.0, 0.5];
        let mut wins = vec![0usize; 4];
        for _ in 0..2_000 {
            wins[binary_tournament(&mut rng, &rank, &crowding)] += 1;
        }
        // The two rank-0 members should collect the overwhelming majority.
        assert!(wins[0] + wins[2] > 1_500);
        // The rank-2 member can only win against itself.
        assert!(wins[3] < 300);
    }

    #[test]
    fn rank_and_crowding_cover_every_member() {
        let objs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (10 - i) as f64]).collect();
        let (rank, crowd) = rank_and_crowding(&objs, &all_feasible(10));
        assert_eq!(rank.len(), 10);
        assert_eq!(crowd.len(), 10);
        assert!(
            rank.iter().all(|&r| r == 0),
            "a pure trade-off line is one front"
        );
    }

    #[test]
    fn empty_population_is_handled() {
        assert!(fast_non_dominated_sort::<Vec<f64>>(&[], &[]).is_empty());
        assert!(select_survivors::<Vec<f64>>(&[], &[], 5).is_empty());
        let survival = survive::<Vec<f64>>(&[], &[], 5);
        assert!(survival.selected.is_empty());
        assert!(survival.rank.is_empty());
        assert!(survival.crowding.is_empty());
    }

    /// The fused hook must reproduce the two-pass path exactly:
    /// `select_survivors` followed by `rank_and_crowding` on the survivors.
    #[test]
    fn survive_matches_the_two_pass_selection() {
        let mut rng = StdRng::seed_from_u64(9);
        for capacity in [1usize, 3, 7, 12, 20] {
            let n = 16;
            let objectives: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let feasible: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.8)).collect();
            let survival = survive(&objectives, &feasible, capacity);
            let selected = select_survivors(&objectives, &feasible, capacity);
            assert_eq!(survival.selected, selected);
            let subset_objs: Vec<Vec<f64>> =
                selected.iter().map(|&i| objectives[i].clone()).collect();
            let subset_feas: Vec<bool> = selected.iter().map(|&i| feasible[i]).collect();
            let (rank, crowding) = rank_and_crowding(&subset_objs, &subset_feas);
            assert_eq!(survival.rank, rank, "capacity {capacity}");
            for (a, b) in survival.crowding.iter().zip(&crowding) {
                assert!(
                    (a == b) || (a.is_infinite() && b.is_infinite()),
                    "capacity {capacity}: {a} vs {b}"
                );
            }
        }
    }
}
