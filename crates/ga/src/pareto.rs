//! Pareto dominance for minimisation problems.

/// Whether objective vector `a` dominates `b` (minimisation): `a` is no
/// worse than `b` in every objective and strictly better in at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the Pareto-optimal members of a set of objective vectors
/// (minimisation). A member is kept if no other member dominates it.
///
/// Duplicated objective vectors are all kept (they do not dominate each
/// other), which matches how the paper counts recommended plans. Generic
/// over `AsRef<[f64]>` so fixed-size `[f64; N]` objective arrays work
/// without per-member allocation.
pub fn pareto_front_indices<S: AsRef<[f64]>>(objectives: &[S]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, a) in objectives.iter().enumerate() {
        for (j, b) in objectives.iter().enumerate() {
            if i != j && dominates(b.as_ref(), a.as_ref()) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal vectors do not dominate"
        );
        assert!(
            !dominates(&[1.0, 3.0], &[2.0, 2.0]),
            "trade-offs do not dominate"
        );
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pareto_front_of_a_simple_set() {
        let objs = vec![
            vec![1.0, 5.0], // front
            vec![2.0, 4.0], // front
            vec![3.0, 3.0], // front
            vec![3.0, 5.0], // dominated by [1,5]? no ([1,5] has 1<3, 5==5 → dominates). dominated
            vec![5.0, 5.0], // dominated
            vec![0.5, 9.0], // front (best in first objective)
        ];
        let front = pareto_front_indices(&objs);
        assert_eq!(front, vec![0, 1, 2, 5]);
    }

    #[test]
    fn duplicates_are_all_kept() {
        let objs = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_front_indices(&objs), vec![0, 1]);
    }

    #[test]
    fn single_member_is_trivially_optimal() {
        assert_eq!(pareto_front_indices(&[vec![3.0, 7.0]]), vec![0]);
        assert!(pareto_front_indices::<Vec<f64>>(&[]).is_empty());
    }

    #[test]
    fn front_members_do_not_dominate_each_other() {
        let objs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (20 - i) as f64, ((i * 7) % 5) as f64])
            .collect();
        let front = pareto_front_indices(&objs);
        for &i in &front {
            for &j in &front {
                if i != j {
                    assert!(!dominates(&objs[i], &objs[j]));
                }
            }
        }
    }
}
