//! Multi-objective genetic-algorithm machinery (NSGA-II).
//!
//! Atlas selects parent plans for crossover using non-dominated sorting,
//! crowding distance and binary tournament from NSGA-II (paper §4.2.1,
//! citing Deb et al. \[36\]); the affinity-based baseline of the evaluation
//! also uses NSGA-II directly. This crate implements that machinery for
//! minimisation problems over arbitrary genomes:
//!
//! * [`pareto`] — Pareto-dominance tests and front extraction;
//! * [`nsga2`] — fast non-dominated sorting, crowding distance,
//!   constraint-aware survival selection and binary tournaments;
//! * [`operators`] — uniform crossover and alphabet/bit-flip mutation for
//!   the placement genomes Atlas uses (binary or N-site);
//! * [`archive`] — a capped, crowding-pruned external non-dominated archive
//!   that accumulates every evaluated candidate, so the final front
//!   survives population churn.

#![deny(missing_docs)]

pub mod archive;
pub mod nsga2;
pub mod operators;
pub mod pareto;

pub use archive::ParetoArchive;
pub use nsga2::{
    binary_tournament, crowding_distance, fast_non_dominated_sort, select_survivors, take_selected,
};
pub use operators::{
    alphabet_mutation, alphabet_mutation_tracked, bit_flip_mutation, uniform_crossover,
};
pub use pareto::{dominates, pareto_front_indices};
