//! An external non-dominated archive: the best front ever seen, kept
//! outside the evolving population.
//!
//! NSGA-II survival keeps the population's best `capacity` members *of the
//! current generation*, so a Pareto-optimal plan discovered early can be
//! displaced later by crowding pressure and never return — at small search
//! budgets the final-generation front is routinely thinner than the set of
//! non-dominated plans the search actually visited. A [`ParetoArchive`]
//! fixes that by accumulating every evaluated candidate as it is scored:
//! dominated offers are rejected, entries dominated by a new offer are
//! evicted, and when the archive outgrows its capacity the most crowded
//! entry (smallest NSGA-II crowding distance over the archive treated as
//! one front) is pruned, preserving the spread of the front.
//!
//! The archive is a pure, deterministic function of the insertion sequence:
//! no randomness, no iteration-order dependence, ties broken by insertion
//! order. Searches that feed it the same candidates in the same order —
//! regardless of evaluator thread count — hold identical archives.

use crate::nsga2::crowding_distance;
use crate::pareto::dominates;

/// A capped, crowding-pruned archive of mutually non-dominated entries.
///
/// `G` is the genome type (cloned only when an offer is accepted); `S` is
/// the objective vector (minimised, as everywhere in this crate). Entries
/// with equal objectives but distinct genomes are all kept — matching
/// [`crate::pareto::pareto_front_indices`], which never collapses ties —
/// while exact `(genome, objectives)` duplicates are rejected.
#[derive(Debug, Clone)]
pub struct ParetoArchive<G, S> {
    entries: Vec<(G, S)>,
    capacity: usize,
}

impl<G: Clone + PartialEq, S: AsRef<[f64]>> ParetoArchive<G, S> {
    /// An empty archive holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Offer one evaluated candidate. Returns `true` when the offer joined
    /// the front: it was not dominated by (or an exact duplicate of) any
    /// entry. Entries the offer dominates are evicted; if the archive then
    /// exceeds its capacity, the most crowded entry is pruned — possibly
    /// the offer itself.
    pub fn insert(&mut self, genome: &G, objectives: S) -> bool {
        let offer = objectives.as_ref();
        for (g, s) in &self.entries {
            let held = s.as_ref();
            if dominates(held, offer) {
                return false;
            }
            if held == offer && g == genome {
                return false;
            }
        }
        self.entries.retain(|(_, s)| !dominates(offer, s.as_ref()));
        self.entries.push((genome.clone(), objectives));
        while self.entries.len() > self.capacity {
            self.prune_most_crowded();
        }
        true
    }

    /// Evict the entry with the smallest crowding distance over the archive
    /// treated as a single front (first such entry on ties, so pruning is
    /// deterministic).
    fn prune_most_crowded(&mut self) {
        let front: Vec<usize> = (0..self.entries.len()).collect();
        let objectives: Vec<&S> = self.entries.iter().map(|(_, s)| s).collect();
        let crowding = crowding_distance(&objectives, &front);
        let mut victim = 0;
        for (i, &d) in crowding.iter().enumerate() {
            if d < crowding[victim] {
                victim = i;
            }
        }
        self.entries.remove(victim);
    }

    /// The archived entries, in insertion order (evictions preserve the
    /// relative order of the remainder).
    pub fn entries(&self) -> &[(G, S)] {
        &self.entries
    }

    /// Consume the archive, yielding its entries.
    pub fn into_entries(self) -> Vec<(G, S)> {
        self.entries
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The maximum number of entries the archive retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front(archive: &ParetoArchive<usize, Vec<f64>>) -> Vec<Vec<f64>> {
        archive.entries().iter().map(|(_, s)| s.clone()).collect()
    }

    #[test]
    fn dominated_offers_are_rejected_and_dominating_offers_evict() {
        let mut a = ParetoArchive::new(8);
        assert!(a.insert(&0, vec![2.0, 2.0]));
        assert!(!a.insert(&1, vec![3.0, 3.0]), "dominated offer rejected");
        assert_eq!(a.len(), 1);
        assert!(a.insert(&2, vec![1.0, 1.0]), "dominating offer accepted");
        assert_eq!(front(&a), vec![vec![1.0, 1.0]], "old entry evicted");
    }

    #[test]
    fn trade_offs_accumulate_and_duplicates_are_rejected() {
        let mut a = ParetoArchive::new(8);
        assert!(a.insert(&0, vec![1.0, 4.0]));
        assert!(a.insert(&1, vec![4.0, 1.0]));
        assert!(a.insert(&2, vec![2.0, 2.0]));
        assert_eq!(a.len(), 3);
        // The exact same (genome, objectives) pair is a duplicate…
        assert!(!a.insert(&2, vec![2.0, 2.0]));
        // …but a different genome with equal objectives is a distinct
        // front member (pareto_front_indices keeps such ties too).
        assert!(a.insert(&3, vec![2.0, 2.0]));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn capacity_prunes_the_most_crowded_entry() {
        let mut a = ParetoArchive::new(3);
        assert!(a.insert(&0, vec![0.0, 10.0]));
        assert!(a.insert(&1, vec![10.0, 0.0]));
        assert!(a.insert(&2, vec![5.0, 5.0]));
        // The new interior point crowds in right next to (5,5): one of the
        // two crowded twins is pruned, the boundaries survive.
        assert!(a.insert(&3, vec![5.1, 4.9]));
        assert_eq!(a.len(), 3);
        let kept = front(&a);
        assert!(kept.contains(&vec![0.0, 10.0]));
        assert!(kept.contains(&vec![10.0, 0.0]));
    }

    #[test]
    fn archive_is_a_pure_function_of_the_insertion_sequence() {
        let offers = vec![
            vec![3.0, 7.0],
            vec![7.0, 3.0],
            vec![5.0, 5.0],
            vec![4.0, 6.0],
            vec![6.0, 4.0],
            vec![2.0, 9.0],
            vec![9.0, 2.0],
        ];
        let mut a = ParetoArchive::new(4);
        let mut b = ParetoArchive::new(4);
        for (i, s) in offers.iter().enumerate() {
            a.insert(&i, s.clone());
            b.insert(&i, s.clone());
        }
        assert_eq!(a.entries(), b.entries());
    }
}
