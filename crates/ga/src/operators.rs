//! Genetic operators for binary placement genomes.
//!
//! The baselines and the random initialisation of Atlas's population use the
//! classic operators: uniform crossover (each gene comes from either parent
//! with equal probability) and bit-flip mutation. Atlas's own crossover is
//! the learned agent in `atlas-core::rl_crossover`; these operators are the
//! "existing approaches create offspring by randomly combining the parents"
//! the paper compares against (§4.2.1).

use rand::Rng;

/// Uniform crossover: each gene is copied from either parent with equal
/// probability.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn uniform_crossover<R: Rng + ?Sized>(rng: &mut R, a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    a.iter()
        .zip(b.iter())
        .map(|(&ga, &gb)| if rng.gen::<bool>() { ga } else { gb })
        .collect()
}

/// Bit-flip mutation: each gene is flipped (0 ↔ 1) independently with
/// probability `rate`.
pub fn bit_flip_mutation<R: Rng + ?Sized>(rng: &mut R, genome: &mut [u8], rate: f64) {
    for gene in genome.iter_mut() {
        if rng.gen::<f64>() < rate {
            *gene = if *gene == 0 { 1 } else { 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn crossover_genes_come_from_a_parent() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = vec![0u8; 32];
        let b = vec![1u8; 32];
        let child = uniform_crossover(&mut rng, &a, &b);
        assert_eq!(child.len(), 32);
        assert!(child.iter().all(|&g| g == 0 || g == 1));
        // With 32 genes the child is essentially never a clone of one parent.
        assert!(child.iter().any(|&g| g == 0));
        assert!(child.iter().any(|&g| g == 1));
    }

    #[test]
    fn crossover_of_identical_parents_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = vec![0, 1, 1, 0, 1];
        let child = uniform_crossover(&mut rng, &a, &a);
        assert_eq!(child, a);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_parents_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uniform_crossover(&mut rng, &[0, 1], &[0, 1, 1]);
    }

    #[test]
    fn mutation_rate_zero_and_one_are_exact() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut genome = vec![0, 1, 0, 1];
        bit_flip_mutation(&mut rng, &mut genome, 0.0);
        assert_eq!(genome, vec![0, 1, 0, 1]);
        bit_flip_mutation(&mut rng, &mut genome, 1.0);
        assert_eq!(genome, vec![1, 0, 1, 0]);
    }

    #[test]
    fn mutation_flips_roughly_rate_fraction() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut genome = vec![0u8; 10_000];
        bit_flip_mutation(&mut rng, &mut genome, 0.1);
        let flipped = genome.iter().filter(|&&g| g == 1).count();
        assert!(
            (800..1_200).contains(&flipped),
            "expected ~1000 flips, got {flipped}"
        );
    }
}
