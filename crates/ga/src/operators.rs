//! Genetic operators for placement genomes over an arbitrary site alphabet.
//!
//! The baselines and the random initialisation of Atlas's population use the
//! classic operators: uniform crossover (each gene comes from either parent
//! with equal probability) and a resampling mutation over the gene alphabet
//! ([`bit_flip_mutation`] is the binary special case). Atlas's own crossover
//! is the learned agent in `atlas-core::rl_crossover`; these operators are
//! the "existing approaches create offspring by randomly combining the
//! parents" the paper compares against (§4.2.1).
//!
//! The operators are generic over the gene type, so the same code serves the
//! paper's binary `{on-prem, cloud}` genomes and the N-site `SiteId`
//! genomes of the multi-region model.

use rand::Rng;

/// Uniform crossover: each gene is copied from either parent with equal
/// probability. Generic over the gene type (binary `u8` genomes and N-site
/// id genomes alike); the random stream is one draw per gene regardless of
/// the alphabet.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn uniform_crossover<T: Copy, R: Rng + ?Sized>(rng: &mut R, a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    a.iter()
        .zip(b.iter())
        .map(|(&ga, &gb)| if rng.gen::<bool>() { ga } else { gb })
        .collect()
}

/// Bit-flip mutation: each gene is flipped (0 ↔ 1) independently with
/// probability `rate`.
pub fn bit_flip_mutation<R: Rng + ?Sized>(rng: &mut R, genome: &mut [u8], rate: f64) {
    for gene in genome.iter_mut() {
        if rng.gen::<f64>() < rate {
            *gene = if *gene == 0 { 1 } else { 0 };
        }
    }
}

/// Alphabet mutation: each gene is independently resampled, with probability
/// `rate`, to a *different* letter of `alphabet`, chosen uniformly.
///
/// This is the N-ary generalisation of [`bit_flip_mutation`], and it
/// consumes the random stream identically for a two-letter alphabet: one
/// `f64` draw per gene, and the replacement of a mutated gene is the other
/// letter without a further draw — so a binary search using it is
/// bit-identical to one using `bit_flip_mutation`. Larger alphabets pay one
/// extra draw per *mutated* gene to pick the replacement.
///
/// Genes not present in the alphabet are replaced by a uniformly drawn
/// letter when mutated.
///
/// # Panics
///
/// Panics if the alphabet has fewer than two letters.
pub fn alphabet_mutation<T: Copy + Eq, R: Rng + ?Sized>(
    rng: &mut R,
    genome: &mut [T],
    alphabet: &[T],
    rate: f64,
) {
    mutate_alphabet(rng, genome, alphabet, rate, |_| {});
}

/// [`alphabet_mutation`] that additionally reports *which* genes mutated.
///
/// Consumes the random stream identically to the untracked variant (the
/// tracking is pure bookkeeping), so swapping one for the other never
/// perturbs a seeded search. The returned indices are ascending and unique;
/// delta re-scoring uses them to re-price only the traces that touch a
/// mutated component.
pub fn alphabet_mutation_tracked<T: Copy + Eq, R: Rng + ?Sized>(
    rng: &mut R,
    genome: &mut [T],
    alphabet: &[T],
    rate: f64,
) -> Vec<usize> {
    let mut changed = Vec::new();
    mutate_alphabet(rng, genome, alphabet, rate, |idx| changed.push(idx));
    changed
}

/// Shared body of the alphabet mutations: one `f64` draw per gene, a
/// deterministic flip on binary alphabets, one extra draw per mutated gene
/// otherwise. `on_change` fires once per mutated gene, in genome order.
fn mutate_alphabet<T: Copy + Eq, R: Rng + ?Sized>(
    rng: &mut R,
    genome: &mut [T],
    alphabet: &[T],
    rate: f64,
    mut on_change: impl FnMut(usize),
) {
    assert!(alphabet.len() >= 2, "mutation needs at least 2 letters");
    for (idx, gene) in genome.iter_mut().enumerate() {
        if rng.gen::<f64>() < rate {
            if alphabet.len() == 2 {
                // Binary special case: deterministic flip, no extra draw
                // (keeps 2-site searches bit-identical to bit_flip_mutation).
                *gene = if *gene == alphabet[0] {
                    alphabet[1]
                } else {
                    alphabet[0]
                };
            } else {
                let current = alphabet.iter().position(|l| l == gene);
                let k = rng.gen_range(0..alphabet.len() - usize::from(current.is_some()));
                let k = match current {
                    // Skip the current letter so the mutation always moves.
                    Some(c) if k >= c => k + 1,
                    _ => k,
                };
                *gene = alphabet[k];
            }
            on_change(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn crossover_genes_come_from_a_parent() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = vec![0u8; 32];
        let b = vec![1u8; 32];
        let child = uniform_crossover(&mut rng, &a, &b);
        assert_eq!(child.len(), 32);
        assert!(child.iter().all(|&g| g == 0 || g == 1));
        // With 32 genes the child is essentially never a clone of one parent.
        assert!(child.iter().any(|&g| g == 0));
        assert!(child.iter().any(|&g| g == 1));
    }

    #[test]
    fn crossover_of_identical_parents_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = vec![0, 1, 1, 0, 1];
        let child = uniform_crossover(&mut rng, &a, &a);
        assert_eq!(child, a);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_parents_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uniform_crossover(&mut rng, &[0, 1], &[0, 1, 1]);
    }

    #[test]
    fn mutation_rate_zero_and_one_are_exact() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut genome = vec![0, 1, 0, 1];
        bit_flip_mutation(&mut rng, &mut genome, 0.0);
        assert_eq!(genome, vec![0, 1, 0, 1]);
        bit_flip_mutation(&mut rng, &mut genome, 1.0);
        assert_eq!(genome, vec![1, 0, 1, 0]);
    }

    #[test]
    fn mutation_flips_roughly_rate_fraction() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut genome = vec![0u8; 10_000];
        bit_flip_mutation(&mut rng, &mut genome, 0.1);
        let flipped = genome.iter().filter(|&&g| g == 1).count();
        assert!(
            (800..1_200).contains(&flipped),
            "expected ~1000 flips, got {flipped}"
        );
    }

    #[test]
    fn crossover_is_generic_over_the_gene_type() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = vec![0u16, 0, 0, 0, 0, 0, 0, 0];
        let b = vec![3u16, 3, 3, 3, 3, 3, 3, 3];
        let child = uniform_crossover(&mut rng, &a, &b);
        assert!(child.iter().all(|&g| g == 0 || g == 3));
        // Identical draws regardless of gene type: the same seed crossing
        // u8 parents picks the same parents per gene.
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let bytes = uniform_crossover(&mut rng_a, &[0u8; 16], &[1u8; 16]);
        let words = uniform_crossover(&mut rng_b, &[0u16; 16], &[1u16; 16]);
        assert_eq!(bytes.iter().map(|&x| x as u16).collect::<Vec<_>>(), words);
    }

    /// On a two-letter alphabet the generalised mutation is bit-identical to
    /// `bit_flip_mutation`: same draws, same flips, same resulting stream.
    #[test]
    fn alphabet_mutation_matches_bit_flip_on_binary_genomes() {
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut bits = vec![0u8, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0];
        let mut sites = bits.clone();
        bit_flip_mutation(&mut rng_a, &mut bits, 0.4);
        alphabet_mutation(&mut rng_b, &mut sites, &[0u8, 1], 0.4);
        assert_eq!(bits, sites);
        // The streams stay aligned after the call.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn alphabet_mutation_always_moves_to_a_different_letter() {
        let alphabet = [0u16, 1, 2, 3];
        let mut rng = StdRng::seed_from_u64(5);
        let mut genome = vec![2u16; 5_000];
        alphabet_mutation(&mut rng, &mut genome, &alphabet, 1.0);
        // Rate 1.0: every gene mutated, never back to its own letter, and
        // the three remaining letters all appear.
        assert!(genome.iter().all(|&g| g != 2));
        for letter in [0u16, 1, 3] {
            assert!(genome.contains(&letter), "letter {letter} never drawn");
        }

        // Rate 0.0: nothing moves.
        let mut untouched = vec![1u16; 64];
        alphabet_mutation(&mut rng, &mut untouched, &alphabet, 0.0);
        assert_eq!(untouched, vec![1u16; 64]);

        // Genes outside the alphabet are legalised when mutated.
        let mut stray = vec![9u16; 2_000];
        alphabet_mutation(&mut rng, &mut stray, &alphabet, 1.0);
        assert!(stray.iter().all(|g| alphabet.contains(g)));
    }

    /// The tracked mutation consumes the same stream and produces the same
    /// genome as the untracked one, while reporting exactly the mutated
    /// gene indices.
    #[test]
    fn tracked_mutation_matches_untracked_and_reports_changes() {
        for alphabet in [vec![0u16, 1], vec![0u16, 1, 2, 3, 4]] {
            let mut rng_a = StdRng::seed_from_u64(17);
            let mut rng_b = StdRng::seed_from_u64(17);
            let mut plain = vec![0u16, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1];
            let mut tracked = plain.clone();
            let before = tracked.clone();
            alphabet_mutation(&mut rng_a, &mut plain, &alphabet, 0.4);
            let changed = alphabet_mutation_tracked(&mut rng_b, &mut tracked, &alphabet, 0.4);
            assert_eq!(plain, tracked);
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
            // Ascending, unique, and exactly the genes that moved.
            assert!(changed.windows(2).all(|w| w[0] < w[1]));
            let moved: Vec<usize> = (0..before.len())
                .filter(|&i| before[i] != tracked[i])
                .collect();
            assert_eq!(changed, moved);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 letters")]
    fn degenerate_alphabets_are_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        alphabet_mutation(&mut rng, &mut [0u8, 1], &[0u8], 0.5);
    }
}
