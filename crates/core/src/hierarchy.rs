//! Hierarchical post-processing of the Pareto front (paper §4.2.2).
//!
//! A three-dimensional Pareto front is hard for an application owner to
//! navigate. Atlas organises the recommended plans with agglomerative
//! hierarchical clustering over their (normalised) quality vectors and
//! presents the resulting dendrogram top-down: first a few coarse clusters
//! (performance-focused, cost-focused, …), then finer splits, until the
//! leaves — individual plans — are reached.

use serde::{Deserialize, Serialize};

/// A node of the dendrogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DendrogramNode {
    /// A single plan, identified by its index in the input list.
    Leaf {
        /// Index of the plan in the list passed to [`Dendrogram::build`].
        plan: usize,
    },
    /// A merge of two clusters at a given (average-linkage) distance.
    Merge {
        /// Left subtree.
        left: Box<DendrogramNode>,
        /// Right subtree.
        right: Box<DendrogramNode>,
        /// Linkage distance at which the merge happened.
        distance: f64,
    },
}

impl DendrogramNode {
    /// Indices of all plans under this node.
    pub fn members(&self) -> Vec<usize> {
        match self {
            DendrogramNode::Leaf { plan } => vec![*plan],
            DendrogramNode::Merge { left, right, .. } => {
                let mut v = left.members();
                v.extend(right.members());
                v
            }
        }
    }

    /// Number of plans under this node.
    pub fn len(&self) -> usize {
        match self {
            DendrogramNode::Leaf { .. } => 1,
            DendrogramNode::Merge { left, right, .. } => left.len() + right.len(),
        }
    }

    /// Whether the node is a leaf.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The dendrogram over a set of plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    root: Option<DendrogramNode>,
    point_count: usize,
}

impl Dendrogram {
    /// Build a dendrogram by average-linkage agglomerative clustering of the
    /// given quality vectors. Each dimension is min-max normalised first so
    /// that cost (dollars) does not dominate performance (ratios).
    pub fn build(points: &[Vec<f64>]) -> Self {
        if points.is_empty() {
            return Self {
                root: None,
                point_count: 0,
            };
        }
        let normalised = normalise(points);
        // Active clusters: (node, member indices).
        let mut clusters: Vec<(DendrogramNode, Vec<usize>)> = (0..points.len())
            .map(|i| (DendrogramNode::Leaf { plan: i }, vec![i]))
            .collect();
        while clusters.len() > 1 {
            // Find the closest pair by average linkage.
            let mut best = (0usize, 1usize, f64::INFINITY);
            for i in 0..clusters.len() {
                for j in i + 1..clusters.len() {
                    let d = average_linkage(&normalised, &clusters[i].1, &clusters[j].1);
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            let (i, j, distance) = best;
            let (right_node, right_members) = clusters.remove(j);
            let (left_node, left_members) = clusters.remove(i);
            let mut members = left_members;
            members.extend(right_members);
            clusters.push((
                DendrogramNode::Merge {
                    left: Box::new(left_node),
                    right: Box::new(right_node),
                    distance,
                },
                members,
            ));
        }
        Self {
            root: clusters.pop().map(|(node, _)| node),
            point_count: points.len(),
        }
    }

    /// The root node, if any plan was clustered.
    pub fn root(&self) -> Option<&DendrogramNode> {
        self.root.as_ref()
    }

    /// Number of plans in the dendrogram.
    pub fn len(&self) -> usize {
        self.point_count
    }

    /// Whether the dendrogram is empty.
    pub fn is_empty(&self) -> bool {
        self.point_count == 0
    }

    /// Cut the dendrogram into (up to) `k` clusters and return the member
    /// indices of each cluster, coarsest splits first.
    pub fn cut(&self, k: usize) -> Vec<Vec<usize>> {
        let Some(root) = &self.root else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut clusters: Vec<&DendrogramNode> = vec![root];
        while clusters.len() < k {
            // Split the cluster whose merge distance is the largest.
            let Some((idx, _)) = clusters
                .iter()
                .enumerate()
                .filter_map(|(i, n)| match n {
                    DendrogramNode::Merge { distance, .. } => Some((i, *distance)),
                    DendrogramNode::Leaf { .. } => None,
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            else {
                break; // all leaves
            };
            let node = clusters.remove(idx);
            if let DendrogramNode::Merge { left, right, .. } = node {
                clusters.push(left);
                clusters.push(right);
            }
        }
        clusters.into_iter().map(|n| n.members()).collect()
    }

    /// A representative plan per cluster when cutting at `k`: the member
    /// whose normalised quality vector is closest to the cluster centroid.
    pub fn representatives(&self, points: &[Vec<f64>], k: usize) -> Vec<usize> {
        let normalised = normalise(points);
        self.cut(k)
            .into_iter()
            .map(|members| {
                let dim = normalised[members[0]].len();
                let mut centroid = vec![0.0; dim];
                for &m in &members {
                    for d in 0..dim {
                        centroid[d] += normalised[m][d];
                    }
                }
                for c in centroid.iter_mut() {
                    *c /= members.len() as f64;
                }
                *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        euclidean(&normalised[a], &centroid)
                            .partial_cmp(&euclidean(&normalised[b], &centroid))
                            .expect("finite")
                    })
                    .expect("clusters are non-empty")
            })
            .collect()
    }
}

fn normalise(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if points.is_empty() {
        return Vec::new();
    }
    let dim = points[0].len();
    let mut mins = vec![f64::INFINITY; dim];
    let mut maxs = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for d in 0..dim {
            mins[d] = mins[d].min(p[d]);
            maxs[d] = maxs[d].max(p[d]);
        }
    }
    points
        .iter()
        .map(|p| {
            (0..dim)
                .map(|d| {
                    let range = maxs[d] - mins[d];
                    if range <= 0.0 {
                        0.0
                    } else {
                        (p[d] - mins[d]) / range
                    }
                })
                .collect()
        })
        .collect()
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

fn average_linkage(points: &[Vec<f64>], a: &[usize], b: &[usize]) -> f64 {
    let mut total = 0.0;
    for &i in a {
        for &j in b {
            total += euclidean(&points[i], &points[j]);
        }
    }
    total / (a.len() * b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated groups of plans: cheap-but-slow and fast-but-
    /// expensive.
    fn two_groups() -> Vec<Vec<f64>> {
        vec![
            vec![4.0, 0.0, 50.0],
            vec![4.2, 0.0, 52.0],
            vec![3.9, 1.0, 55.0],
            vec![1.1, 2.0, 220.0],
            vec![1.2, 2.0, 230.0],
            vec![1.0, 3.0, 250.0],
        ]
    }

    #[test]
    fn dendrogram_contains_every_plan_exactly_once() {
        let d = Dendrogram::build(&two_groups());
        assert_eq!(d.len(), 6);
        let mut members = d.root().unwrap().members();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(d.root().unwrap().len(), 6);
    }

    #[test]
    fn cutting_at_two_recovers_the_natural_groups() {
        let points = two_groups();
        let d = Dendrogram::build(&points);
        let clusters = d.cut(2);
        assert_eq!(clusters.len(), 2);
        let mut sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
        // Each cluster holds either the cheap or the fast group, not a mix.
        for cluster in &clusters {
            let cheap = cluster.iter().filter(|&&i| i < 3).count();
            assert!(cheap == 0 || cheap == cluster.len());
        }
    }

    #[test]
    fn cutting_deeper_than_the_leaf_count_yields_singletons() {
        let points = two_groups();
        let d = Dendrogram::build(&points);
        let clusters = d.cut(100);
        assert_eq!(clusters.len(), 6);
        assert!(clusters.iter().all(|c| c.len() == 1));
        assert!(d.cut(0).is_empty());
    }

    #[test]
    fn representatives_come_from_their_clusters() {
        let points = two_groups();
        let d = Dendrogram::build(&points);
        let reps = d.representatives(&points, 2);
        assert_eq!(reps.len(), 2);
        let clusters = d.cut(2);
        for (rep, cluster) in reps.iter().zip(clusters.iter()) {
            assert!(cluster.contains(rep));
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = Dendrogram::build(&[]);
        assert!(empty.is_empty());
        assert!(empty.root().is_none());
        assert!(empty.cut(3).is_empty());

        let single = Dendrogram::build(&[vec![1.0, 2.0]]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.cut(3), vec![vec![0]]);
    }

    #[test]
    fn normalisation_keeps_scale_heavy_dimensions_from_dominating() {
        // Cost (third dimension) is in the hundreds; performance differences
        // are small but should still drive the clustering after
        // normalisation. Two groups differ mostly in performance.
        let points = vec![
            vec![1.0, 0.0, 100.0],
            vec![1.05, 0.0, 101.0],
            vec![5.0, 0.0, 100.5],
            vec![5.1, 0.0, 100.0],
        ];
        let d = Dendrogram::build(&points);
        let clusters = d.cut(2);
        for cluster in clusters {
            let fast = cluster.iter().filter(|&&i| i < 2).count();
            assert!(fast == 0 || fast == cluster.len());
        }
    }
}
