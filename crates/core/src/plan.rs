//! Migration plans: the unit Atlas recommends and evaluates.

use serde::{Deserialize, Serialize};

use atlas_sim::{ComponentId, Location, Placement};

/// A migration plan: a target placement for every component, evaluated
/// relative to the current (original) placement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MigrationPlan {
    placement: Placement,
}

impl MigrationPlan {
    /// Wrap a placement as a plan.
    pub fn new(placement: Placement) -> Self {
        Self { placement }
    }

    /// The "do nothing" plan: every component stays on-prem.
    pub fn all_onprem(component_count: usize) -> Self {
        Self::new(Placement::all_onprem(component_count))
    }

    /// Build from the paper's binary encoding (`0` = on-prem, `1` = cloud).
    pub fn from_bits(bits: &[u8]) -> Self {
        Self::new(Placement::from_bits(bits))
    }

    /// The underlying placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The binary encoding of the plan.
    pub fn to_bits(&self) -> Vec<u8> {
        self.placement.to_bits()
    }

    /// The plan encoded as an `f64` vector, the representation fed to the
    /// crossover agent (one input per component, 0.0 = on-prem, 1.0 = cloud).
    pub fn to_features(&self) -> Vec<f64> {
        self.placement
            .to_bits()
            .into_iter()
            .map(|b| b as f64)
            .collect()
    }

    /// Number of components covered by the plan.
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// Whether the plan covers no components.
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    /// Location assigned to a component.
    pub fn location(&self, c: ComponentId) -> Location {
        self.placement.location(c)
    }

    /// Set a component's location.
    pub fn set(&mut self, c: ComponentId, loc: Location) {
        self.placement.set(c, loc);
    }

    /// Components offloaded to the cloud by this plan.
    pub fn cloud_components(&self) -> Vec<ComponentId> {
        self.placement.cloud_components()
    }

    /// Components that must move given the current placement.
    pub fn moved_components(&self, current: &Placement) -> Vec<ComponentId> {
        self.placement.moved_components(current)
    }
}

impl From<Placement> for MigrationPlan {
    fn from(placement: Placement) -> Self {
        Self::new(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        let plan = MigrationPlan::from_bits(&[0, 1, 0, 1]);
        assert_eq!(plan.to_bits(), vec![0, 1, 0, 1]);
        assert_eq!(plan.to_features(), vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(plan.location(ComponentId(1)), Location::Cloud);
        assert_eq!(
            plan.cloud_components(),
            vec![ComponentId(1), ComponentId(3)]
        );
    }

    #[test]
    fn all_onprem_is_the_identity_plan() {
        let plan = MigrationPlan::all_onprem(3);
        assert!(plan.cloud_components().is_empty());
        let current = Placement::all_onprem(3);
        assert!(plan.moved_components(&current).is_empty());
    }

    #[test]
    fn mutation_and_conversion() {
        let mut plan = MigrationPlan::all_onprem(3);
        plan.set(ComponentId(2), Location::Cloud);
        assert_eq!(plan.to_bits(), vec![0, 0, 1]);
        let from_placement: MigrationPlan = Placement::from_bits(&[1, 0]).into();
        assert_eq!(from_placement.to_bits(), vec![1, 0]);
    }
}
