//! Migration plans: the unit Atlas recommends and evaluates.

use serde::{Deserialize, Serialize};

use atlas_sim::{ComponentId, Location, Placement, PlacementError, SiteId};

/// A migration plan: a target placement for every component, evaluated
/// relative to the current (original) placement.
///
/// Plans are site-indexed (see [`Placement`]): the paper's binary encoding
/// survives as the two-site special case via
/// [`MigrationPlan::from_bits`]/[`MigrationPlan::to_bits`], and
/// [`MigrationPlan::from_sites`]/[`MigrationPlan::to_sites`] carry the full
/// N-site assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MigrationPlan {
    placement: Placement,
}

impl MigrationPlan {
    /// Wrap a placement as a plan.
    pub fn new(placement: Placement) -> Self {
        Self { placement }
    }

    /// The "do nothing" plan: every component stays on-prem.
    pub fn all_onprem(component_count: usize) -> Self {
        Self::new(Placement::all_onprem(component_count))
    }

    /// Build from the paper's binary encoding (`0` = on-prem, `1` = cloud).
    /// Debug builds assert every value is 0 or 1 (see
    /// [`Placement::from_bits`]).
    pub fn from_bits(bits: &[u8]) -> Self {
        Self::new(Placement::from_bits(bits))
    }

    /// Build from an explicit site assignment.
    pub fn from_sites(sites: Vec<SiteId>) -> Self {
        Self::new(Placement::from_sites(sites))
    }

    /// Build from a site assignment, rejecting sites outside an
    /// `site_count`-site catalog.
    pub fn try_from_sites(sites: Vec<SiteId>, site_count: usize) -> Result<Self, PlacementError> {
        Placement::try_from_sites(sites, site_count).map(Self::new)
    }

    /// The underlying placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The binary encoding of the plan (lossy for N-site plans: every
    /// elastic site maps to 1).
    pub fn to_bits(&self) -> Vec<u8> {
        self.placement.to_bits()
    }

    /// The site assignment of the plan.
    pub fn to_sites(&self) -> Vec<SiteId> {
        self.placement.to_sites()
    }

    /// The sites of the plan, borrowed (the search paths' genome view).
    pub fn sites(&self) -> &[SiteId] {
        self.placement.sites()
    }

    /// The plan encoded as an `f64` vector, the representation fed to the
    /// crossover agent: one input per component holding the raw site index
    /// (0.0 = on-prem; in the two-site model this is exactly the paper's
    /// binary feature). Maps straight from the placement — no intermediate
    /// byte vector is allocated.
    pub fn to_features(&self) -> Vec<f64> {
        self.placement.sites().iter().map(|s| s.0 as f64).collect()
    }

    /// [`MigrationPlan::to_features`] normalised to `[0, 1]` by the catalog
    /// size: site `s` maps to `s / (site_count − 1)`. For the two-site model
    /// this is bit-identical to the raw features (division by 1), so the
    /// binary crossover agent sees the exact inputs it always has.
    pub fn to_features_scaled(&self, site_count: usize) -> Vec<f64> {
        let scale = (site_count.saturating_sub(1)).max(1) as f64;
        self.placement
            .sites()
            .iter()
            .map(|s| s.0 as f64 / scale)
            .collect()
    }

    /// Number of components covered by the plan.
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// Whether the plan covers no components.
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    /// Binary view of a component's placement.
    pub fn location(&self, c: ComponentId) -> Location {
        self.placement.location(c)
    }

    /// Site assigned to a component.
    pub fn site(&self, c: ComponentId) -> SiteId {
        self.placement.site(c)
    }

    /// Set a component's site ([`Location`]s convert implicitly).
    pub fn set(&mut self, c: ComponentId, site: impl Into<SiteId>) {
        self.placement.set(c, site);
    }

    /// Components offloaded off-prem by this plan.
    pub fn cloud_components(&self) -> Vec<ComponentId> {
        self.placement.cloud_components()
    }

    /// Components that must move given the current placement.
    pub fn moved_components(&self, current: &Placement) -> Vec<ComponentId> {
        self.placement.moved_components(current)
    }
}

impl From<Placement> for MigrationPlan {
    fn from(placement: Placement) -> Self {
        Self::new(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        let plan = MigrationPlan::from_bits(&[0, 1, 0, 1]);
        assert_eq!(plan.to_bits(), vec![0, 1, 0, 1]);
        assert_eq!(plan.to_features(), vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(plan.location(ComponentId(1)), Location::Cloud);
        assert_eq!(
            plan.cloud_components(),
            vec![ComponentId(1), ComponentId(3)]
        );
    }

    #[test]
    fn site_encoding_and_features() {
        let sites = vec![SiteId(0), SiteId(2), SiteId(3)];
        let plan = MigrationPlan::from_sites(sites.clone());
        assert_eq!(plan.to_sites(), sites);
        assert_eq!(plan.sites(), sites.as_slice());
        assert_eq!(plan.site(ComponentId(1)), SiteId(2));
        assert_eq!(plan.to_features(), vec![0.0, 2.0, 3.0]);
        // Normalised by a 4-site catalog: /3.
        let scaled = plan.to_features_scaled(4);
        assert!((scaled[1] - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(scaled[0], 0.0);
        assert_eq!(scaled[2], 1.0);
        // Two-site scaling is the identity on binary plans.
        let binary = MigrationPlan::from_bits(&[0, 1, 1, 0]);
        assert_eq!(binary.to_features(), binary.to_features_scaled(2));
    }

    #[test]
    fn checked_site_construction() {
        assert!(MigrationPlan::try_from_sites(vec![SiteId(0), SiteId(2)], 3).is_ok());
        assert!(MigrationPlan::try_from_sites(vec![SiteId(0), SiteId(3)], 3).is_err());
    }

    #[test]
    fn all_onprem_is_the_identity_plan() {
        let plan = MigrationPlan::all_onprem(3);
        assert!(plan.cloud_components().is_empty());
        let current = Placement::all_onprem(3);
        assert!(plan.moved_components(&current).is_empty());
    }

    #[test]
    fn mutation_and_conversion() {
        let mut plan = MigrationPlan::all_onprem(3);
        plan.set(ComponentId(2), Location::Cloud);
        assert_eq!(plan.to_bits(), vec![0, 0, 1]);
        plan.set(ComponentId(0), SiteId(2));
        assert_eq!(plan.site(ComponentId(0)), SiteId(2));
        let from_placement: MigrationPlan = Placement::from_bits(&[1, 0]).into();
        assert_eq!(from_placement.to_bits(), vec![1, 0]);
    }
}
