//! The reward-driven crossover agent `Λ_θ` (paper §4.2.1, Eq. 5).
//!
//! Instead of combining two parent plans uniformly at random, Atlas trains a
//! small actor-critic network that maps the concatenation of the parents to
//! a probability distribution over child plans. The reward encourages
//! children that (i) satisfy every constraint of Eq. 4 and (ii) beat both
//! parents in as many quality aspects as possible:
//!
//! ```text
//! Reward(p; p_i, p_j) = (−1)^{1−λ(p)} · Σ_Q 𝟙[ min(Q(p_i), Q(p_j)) > Q(p) ]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atlas_nn::{ActorCritic, ActorCriticConfig};

use atlas_sim::SiteId;

use crate::eval::PlanEvaluator;
use crate::plan::MigrationPlan;
use crate::quality::{PlanQuality, ScoredPlan};

/// Hyperparameters of the crossover agent and its training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RlCrossoverConfig {
    /// Training iterations (the paper trains for 1,000).
    pub iterations: usize,
    /// Hidden sizes of the actor (the paper uses three ReLU layers of 128).
    pub actor_hidden: Vec<usize>,
    /// Whether the feasibility sign-flip of Eq. 5 is applied. Disabling it
    /// is the ablation exercised by `bench_reward_ablation`.
    pub feasibility_penalty: bool,
    /// Seed for sampling parents and actions.
    pub seed: u64,
}

impl Default for RlCrossoverConfig {
    fn default() -> Self {
        Self {
            iterations: 1_000,
            actor_hidden: vec![128, 128, 128],
            feasibility_penalty: true,
            seed: 17,
        }
    }
}

/// The trained crossover agent plus its reward bookkeeping.
///
/// The policy network has one Bernoulli output per component. In the
/// paper's two-site model that output *is* the child's placement bit. Over
/// an N-site catalog ([`CrossoverAgent::with_site_count`]) the same output
/// is interpreted as an **inheritance mask**: output `i` picks whether gene
/// `i` of the child comes from parent A or parent B, so the learned
/// operator recombines arbitrary site assignments without growing the
/// action space. State inputs are the parents' site indices normalised to
/// `[0, 1]` ([`MigrationPlan::to_features_scaled`]), which reduces to the
/// historical binary features when `site_count == 2`.
#[derive(Debug)]
pub struct CrossoverAgent {
    agent: ActorCritic,
    config: RlCrossoverConfig,
    site_count: usize,
    rng: StdRng,
    reward_history: Vec<f64>,
}

impl CrossoverAgent {
    /// Create an untrained agent for plans over `component_count` components
    /// in the paper's two-site model.
    pub fn new(component_count: usize, config: RlCrossoverConfig) -> Self {
        let ac_config = ActorCriticConfig {
            actor_hidden: config.actor_hidden.clone(),
            seed: config.seed,
            ..ActorCriticConfig::default()
        };
        let agent = ActorCritic::new(component_count * 2, component_count, ac_config);
        let rng = StdRng::seed_from_u64(config.seed.wrapping_mul(31).wrapping_add(7));
        Self {
            agent,
            config,
            site_count: 2,
            rng,
            reward_history: Vec::new(),
        }
    }

    /// Builder: set the number of sites plans range over. With more than two
    /// sites the policy's outputs act as an inheritance mask over the two
    /// parents (see the type docs); with two they emit the placement
    /// directly, exactly like the paper.
    pub fn with_site_count(mut self, site_count: usize) -> Self {
        assert!(site_count >= 2, "plans need at least two sites");
        self.site_count = site_count;
        self
    }

    /// Reward of a child given its parents' qualities (Eq. 5).
    pub fn reward(
        &self,
        child: &PlanQuality,
        parent_a: &PlanQuality,
        parent_b: &PlanQuality,
    ) -> f64 {
        let improvements = [
            (
                parent_a.performance.min(parent_b.performance),
                child.performance,
            ),
            (
                parent_a.availability.min(parent_b.availability),
                child.availability,
            ),
            (parent_a.cost.min(parent_b.cost), child.cost),
        ]
        .iter()
        .filter(|(best_parent, child_q)| *best_parent > *child_q)
        .count() as f64;
        if self.config.feasibility_penalty && !child.feasible {
            -improvements.max(1.0)
        } else {
            improvements
        }
    }

    /// Train the agent on random parent pairs drawn from `dataset`, scoring
    /// rewards through the shared plan evaluator (the parents are usually
    /// already cached by the surrounding search, and duplicate rollout
    /// children are scored once). Returns the per-iteration rewards (the
    /// reward-progression curve of paper Figure 21b).
    pub fn train(&mut self, evaluator: &PlanEvaluator<'_>, dataset: &[MigrationPlan]) -> Vec<f64> {
        let qualities: Vec<PlanQuality> = evaluator.evaluate_batch(dataset);
        let scored: Vec<ScoredPlan> = dataset
            .iter()
            .zip(qualities)
            .map(|(plan, quality)| ScoredPlan::quality_only(plan.to_sites(), quality))
            .collect();
        self.train_scored(&scored, |_, _, child| evaluator.evaluate(child))
    }

    /// [`Self::train`] over an already-scored dataset: parent qualities come
    /// from the retained [`ScoredPlan`]s (no re-evaluation), and each rollout
    /// child is scored by the caller-supplied closure, which receives both
    /// tournament parents so it can route the child through a delta path
    /// (e.g. [`PlanEvaluator::evaluate_offspring`] against the nearer
    /// parent) and observe every evaluated child (e.g. to feed an external
    /// Pareto archive). The random stream — parent sampling, policy
    /// sampling, policy updates — is identical to [`Self::train`], so the
    /// two entry points train bit-identical agents whenever the closure
    /// returns the same qualities the shared evaluator would.
    pub fn train_scored(
        &mut self,
        dataset: &[ScoredPlan],
        mut score: impl FnMut(&ScoredPlan, &ScoredPlan, &MigrationPlan) -> PlanQuality,
    ) -> Vec<f64> {
        assert!(dataset.len() >= 2, "training needs at least two plans");
        let mut rewards = Vec::with_capacity(self.config.iterations);
        for _ in 0..self.config.iterations {
            let i = self.rng.gen_range(0..dataset.len());
            let mut j = self.rng.gen_range(0..dataset.len());
            if i == j {
                j = (j + 1) % dataset.len();
            }
            let state = self.state_of_sites(dataset[i].sites(), dataset[j].sites());
            let action = self.agent.sample(&state);
            let child = MigrationPlan::from_sites(self.child_sites_of(
                &action,
                dataset[i].sites(),
                dataset[j].sites(),
            ));
            let child_quality = score(&dataset[i], &dataset[j], &child);
            let reward = self.reward(&child_quality, &dataset[i].quality(), &dataset[j].quality());
            self.agent.update(&state, &action, reward);
            rewards.push(reward);
        }
        self.reward_history.extend_from_slice(&rewards);
        rewards
    }

    /// Produce a child plan from two parents by sampling the learned policy.
    pub fn crossover(
        &mut self,
        parent_a: &MigrationPlan,
        parent_b: &MigrationPlan,
    ) -> MigrationPlan {
        MigrationPlan::from_sites(self.crossover_sites(parent_a.sites(), parent_b.sites()))
    }

    /// [`Self::crossover`] over borrowed genomes: samples the learned
    /// policy on two site assignments and returns the child's sites without
    /// requiring the parents to exist as [`MigrationPlan`]s (the search
    /// keeps its population as retained [`ScoredPlan`]s). Consumes the same
    /// random draws as [`Self::crossover`].
    pub fn crossover_sites(&mut self, parent_a: &[SiteId], parent_b: &[SiteId]) -> Vec<SiteId> {
        let state = self.state_of_sites(parent_a, parent_b);
        let action = self.agent.sample(&state);
        self.child_sites_of(&action, parent_a, parent_b)
    }

    /// Deterministic (greedy) child of two parents.
    pub fn crossover_greedy(
        &self,
        parent_a: &MigrationPlan,
        parent_b: &MigrationPlan,
    ) -> MigrationPlan {
        let state = self.state_of(parent_a, parent_b);
        MigrationPlan::from_sites(self.child_sites_of(
            &self.agent.greedy(&state),
            parent_a.sites(),
            parent_b.sites(),
        ))
    }

    /// All rewards observed during training, in order.
    pub fn reward_history(&self) -> &[f64] {
        &self.reward_history
    }

    /// Mean reward over a window of the most recent training iterations.
    pub fn recent_mean_reward(&self, window: usize) -> f64 {
        if self.reward_history.is_empty() {
            return 0.0;
        }
        let n = self.reward_history.len();
        let slice = &self.reward_history[n.saturating_sub(window)..];
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    fn state_of(&self, a: &MigrationPlan, b: &MigrationPlan) -> Vec<f64> {
        self.state_of_sites(a.sites(), b.sites())
    }

    /// The policy input for a parent pair: both site assignments normalised
    /// to `[0, 1]`, exactly [`MigrationPlan::to_features_scaled`] applied to
    /// each genome.
    fn state_of_sites(&self, a: &[SiteId], b: &[SiteId]) -> Vec<f64> {
        let scale = (self.site_count.saturating_sub(1)).max(1) as f64;
        let mut state = Vec::with_capacity(a.len() + b.len());
        state.extend(a.iter().map(|s| s.0 as f64 / scale));
        state.extend(b.iter().map(|s| s.0 as f64 / scale));
        state
    }

    /// Decode one policy action into a child genome. Two-site agents emit
    /// the placement directly (the paper's formulation, bit-identical to the
    /// historical decode); N-site agents treat the action as a per-gene
    /// parent-inheritance mask.
    fn child_sites_of(&self, action: &[bool], a: &[SiteId], b: &[SiteId]) -> Vec<SiteId> {
        if self.site_count <= 2 {
            action
                .iter()
                .map(|&bit| if bit { SiteId::CLOUD } else { SiteId::ON_PREM })
                .collect()
        } else {
            action
                .iter()
                .enumerate()
                .map(|(i, &from_a)| if from_a { a[i] } else { b[i] })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quality(perf: f64, avail: f64, cost: f64, feasible: bool) -> PlanQuality {
        PlanQuality {
            performance: perf,
            availability: avail,
            cost,
            feasible,
        }
    }

    fn agent(n: usize) -> CrossoverAgent {
        CrossoverAgent::new(
            n,
            RlCrossoverConfig {
                iterations: 10,
                actor_hidden: vec![16, 16],
                feasibility_penalty: true,
                seed: 4,
            },
        )
    }

    #[test]
    fn reward_counts_improved_objectives() {
        let a = agent(4);
        let pa = quality(2.0, 1.0, 100.0, true);
        let pb = quality(3.0, 0.0, 80.0, true);
        // Child beats min(perf)=2.0 and min(cost)=80 but not min(avail)=0.
        let child = quality(1.5, 0.5, 50.0, true);
        assert_eq!(a.reward(&child, &pa, &pb), 2.0);
        // Child worse everywhere → reward 0.
        let bad = quality(5.0, 2.0, 200.0, true);
        assert_eq!(a.reward(&bad, &pa, &pb), 0.0);
        // Child better everywhere → 3.
        let best = quality(1.0, -1.0, 10.0, true);
        assert_eq!(a.reward(&best, &pa, &pb), 3.0);
    }

    #[test]
    fn infeasible_children_get_negative_reward() {
        let a = agent(4);
        let pa = quality(2.0, 1.0, 100.0, true);
        let pb = quality(3.0, 0.0, 80.0, true);
        let infeasible_good = quality(1.0, -1.0, 10.0, false);
        assert!(a.reward(&infeasible_good, &pa, &pb) < 0.0);
        let infeasible_bad = quality(9.0, 9.0, 900.0, false);
        assert!(a.reward(&infeasible_bad, &pa, &pb) < 0.0);
    }

    #[test]
    fn disabling_the_penalty_keeps_rewards_non_negative() {
        let mut cfg = RlCrossoverConfig::default();
        cfg.feasibility_penalty = false;
        cfg.actor_hidden = vec![8];
        let a = CrossoverAgent::new(3, cfg);
        let pa = quality(2.0, 1.0, 100.0, true);
        let pb = quality(3.0, 0.0, 80.0, true);
        let infeasible_good = quality(1.0, -1.0, 10.0, false);
        assert!(a.reward(&infeasible_good, &pa, &pb) >= 0.0);
    }

    #[test]
    fn crossover_produces_plans_of_the_right_size() {
        let mut a = agent(6);
        let p1 = MigrationPlan::from_bits(&[0, 0, 0, 1, 1, 1]);
        let p2 = MigrationPlan::from_bits(&[1, 1, 1, 0, 0, 0]);
        let child = a.crossover(&p1, &p2);
        assert_eq!(child.len(), 6);
        let greedy = a.crossover_greedy(&p1, &p2);
        assert_eq!(greedy.len(), 6);
        assert!(child.to_bits().iter().all(|&b| b <= 1));
    }

    #[test]
    fn multi_site_crossover_inherits_genes_from_the_parents() {
        use atlas_sim::SiteId;
        let mut a = agent(6).with_site_count(4);
        let p1 = MigrationPlan::from_sites(vec![SiteId(3); 6]);
        let p2 = MigrationPlan::from_sites(vec![SiteId(1); 6]);
        for _ in 0..8 {
            let child = a.crossover(&p1, &p2);
            assert_eq!(child.len(), 6);
            // Every gene comes from one of the parents: only sites 1 and 3
            // can appear, never an arbitrary site.
            assert!(child
                .sites()
                .iter()
                .all(|&s| s == SiteId(1) || s == SiteId(3)));
        }
        let greedy = a.crossover_greedy(&p1, &p2);
        assert!(greedy
            .sites()
            .iter()
            .all(|&s| s == SiteId(1) || s == SiteId(3)));
    }

    #[test]
    fn recent_mean_reward_of_untrained_agent_is_zero() {
        let a = agent(4);
        assert_eq!(a.recent_mean_reward(100), 0.0);
        assert!(a.reward_history().is_empty());
    }
}
