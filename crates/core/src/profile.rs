//! Application learning: API and component profiling from telemetry
//! (paper §3, "Application Learning" stage).
//!
//! Atlas never looks at application code or configuration beyond what the
//! telemetry exposes: it discovers the set of user-facing APIs from the
//! trace roots, the components each API touches (and which of those hold
//! state) from the trace trees, and each component's resource profile from
//! the cAdvisor-style metrics.

use std::collections::{HashMap, HashSet};

use atlas_telemetry::{MetricKind, TelemetryStore, Trace};

/// Profile of one user-facing API learned from traces.
#[derive(Debug, Clone)]
pub struct ApiProfile {
    /// Endpoint name (root operation of its traces).
    pub endpoint: String,
    /// Sample traces retained for delay injection (the paper keeps ~100 per
    /// API once the latency stabilises). With clustering these are weighted
    /// *representatives*: one trace per distinct call-tree structure.
    pub traces: Vec<Trace>,
    /// Weight of each retained trace (parallel to `traces`): the number of
    /// raw traces the representative stands for. An empty vector means every
    /// retained trace has weight 1.0 (unclustered learning).
    ///
    /// Invariant: all downstream per-API latency means are the weighted mean
    /// `Σ wᵢ·latᵢ / Σ wᵢ`. With unit weights this reproduces the unweighted
    /// mean bit for bit (`1.0 · x == x` and a sum of ones equals the exact
    /// integer length), so weighted and unweighted scoring agree exactly
    /// whenever every trace is structurally unique.
    pub trace_weights: Vec<f64>,
    /// Components used by the API (any span in any of its traces).
    pub components: HashSet<String>,
    /// Stateful components used by the API (`SC(A)` in Eq. 3).
    pub stateful_components: HashSet<String>,
    /// Mean observed end-to-end latency in milliseconds (over *all* observed
    /// traces, not only the retained representatives).
    pub mean_latency_ms: f64,
    /// Number of requests observed over the learning period.
    pub request_count: usize,
}

impl ApiProfile {
    /// Observed latency samples (ms) of the retained traces.
    pub fn latency_samples_ms(&self) -> Vec<f64> {
        self.traces
            .iter()
            .map(|t| atlas_telemetry::us_to_ms(t.end_to_end_latency_us()))
            .collect()
    }

    /// Weight of retained trace `i` (1.0 when no weights were recorded).
    pub fn trace_weight(&self, i: usize) -> f64 {
        self.trace_weights.get(i).copied().unwrap_or(1.0)
    }

    /// Total weight of the retained traces (the raw trace count they stand
    /// for). Summed in trace order so unit weights reproduce `len() as f64`
    /// exactly.
    pub fn weight_total(&self) -> f64 {
        if self.trace_weights.is_empty() {
            self.traces.len() as f64
        } else {
            self.trace_weights.iter().sum()
        }
    }
}

/// Resource profile of one component learned from metrics.
#[derive(Debug, Clone)]
pub struct ComponentProfile {
    /// Component name.
    pub name: String,
    /// Whether the component holds persistent state (provided by the
    /// operator's deployment manifest, not inferred from code).
    pub stateful: bool,
    /// Mean CPU cores over the learning period.
    pub mean_cpu_cores: f64,
    /// Peak CPU cores over the learning period.
    pub peak_cpu_cores: f64,
    /// Mean memory (GB).
    pub mean_memory_gb: f64,
    /// Mean storage (GB); zero for stateless components.
    pub mean_storage_gb: f64,
    /// Total bytes sent plus received over the learning period.
    pub total_network_bytes: f64,
}

/// The learned application profile: everything the recommendation stage
/// needs apart from the network footprints.
#[derive(Debug, Clone)]
pub struct ApplicationProfile {
    /// Per-API profiles keyed by endpoint.
    pub apis: HashMap<String, ApiProfile>,
    /// Per-component profiles keyed by name.
    pub components: HashMap<String, ComponentProfile>,
}

impl ApplicationProfile {
    /// Learn the application profile from the telemetry store, collapsing
    /// each API's traces into weighted structural representatives.
    ///
    /// `stateful_components` is deployment-level knowledge (which containers
    /// have persistent volumes); `traces_per_api` caps how many weighted
    /// *representatives* are retained per API for delay injection, so the
    /// retained set scales with distinct behaviours rather than traffic
    /// volume.
    pub fn learn(
        store: &TelemetryStore,
        stateful_components: &[String],
        traces_per_api: usize,
    ) -> Self {
        Self::learn_with(store, stateful_components, traces_per_api, true)
    }

    /// Learn without trace clustering: retain the `traces_per_api` most
    /// recent traces of each API with unit weights, reproducing the
    /// pre-clustering (full-trace) data path. Used as the comparison
    /// baseline for the clustered learner in tests and benchmarks.
    pub fn learn_unclustered(
        store: &TelemetryStore,
        stateful_components: &[String],
        traces_per_api: usize,
    ) -> Self {
        Self::learn_with(store, stateful_components, traces_per_api, false)
    }

    fn learn_with(
        store: &TelemetryStore,
        stateful_components: &[String],
        traces_per_api: usize,
        clustered: bool,
    ) -> Self {
        let stateful: HashSet<&str> = stateful_components.iter().map(String::as_str).collect();
        let mut apis = HashMap::new();
        for endpoint in store.apis() {
            apis.insert(
                endpoint.clone(),
                learn_api(store, &endpoint, traces_per_api, &stateful, clustered),
            );
        }
        Self {
            apis,
            components: learn_components(store, &stateful),
        }
    }

    /// Incrementally relearn only the `dirty` endpoints from the store,
    /// leaving every other API profile untouched.
    ///
    /// Each dirty endpoint runs exactly the clustered per-API pipeline of
    /// [`ApplicationProfile::learn`]; an endpoint whose traces were all
    /// evicted is removed. Component profiles are refreshed in full — they
    /// derive from cheap metric aggregates and component-name unions, and
    /// both can change under ingest or eviction — so after this call the
    /// profile is field-for-field identical to a cold
    /// [`ApplicationProfile::learn`] against the same store contents.
    pub fn relearn_dirty(
        &mut self,
        store: &TelemetryStore,
        stateful_components: &[String],
        traces_per_api: usize,
        dirty: &[String],
    ) {
        let stateful: HashSet<&str> = stateful_components.iter().map(String::as_str).collect();
        for endpoint in dirty {
            if store.api_trace_count(endpoint) == 0 {
                self.apis.remove(endpoint);
                continue;
            }
            self.apis.insert(
                endpoint.clone(),
                learn_api(store, endpoint, traces_per_api, &stateful, true),
            );
        }
        self.components = learn_components(store, &stateful);
    }

    /// Endpoints of all learned APIs, sorted.
    pub fn api_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.apis.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of all learned components, sorted.
    pub fn component_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.components.keys().cloned().collect();
        v.sort();
        v
    }

    /// The stateful components used by an API (`SC(A)`), empty if unknown.
    pub fn stateful_components_of(&self, api: &str) -> Vec<String> {
        self.apis
            .get(api)
            .map(|p| {
                let mut v: Vec<String> = p.stateful_components.iter().cloned().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }
}

/// Learn one API profile — the shared per-endpoint pipeline behind both the
/// cold [`ApplicationProfile::learn`] and the incremental
/// [`ApplicationProfile::relearn_dirty`].
fn learn_api(
    store: &TelemetryStore,
    endpoint: &str,
    traces_per_api: usize,
    stateful: &HashSet<&str>,
    clustered: bool,
) -> ApiProfile {
    // Request count and mean latency come straight from the arena's
    // root-latency column: no trace is materialised for them.
    let request_count = store.api_trace_count(endpoint);
    let mean_latency_ms = store.api_mean_latency_ms(endpoint);
    let (traces, trace_weights) = if clustered {
        let reps = store.weighted_traces_for_api(endpoint, traces_per_api);
        let weights: Vec<f64> = reps.iter().map(|r| r.weight).collect();
        (reps.into_iter().map(|r| r.trace).collect(), weights)
    } else {
        let traces = store.recent_traces_for_api(endpoint, traces_per_api);
        let weights = vec![1.0; traces.len()];
        (traces, weights)
    };
    let mut components = HashSet::new();
    let mut stateful_used = HashSet::new();
    for c in store.api_components(endpoint) {
        if stateful.contains(c.as_str()) {
            stateful_used.insert(c.clone());
        }
        components.insert(c);
    }
    ApiProfile {
        endpoint: endpoint.to_string(),
        traces,
        trace_weights,
        components,
        stateful_components: stateful_used,
        mean_latency_ms,
        request_count,
    }
}

/// Learn every component profile from the store's metric aggregates.
fn learn_components(
    store: &TelemetryStore,
    stateful: &HashSet<&str>,
) -> HashMap<String, ComponentProfile> {
    let mut components = HashMap::new();
    for name in store.components() {
        let metrics = store.component_metrics(&name);
        let (mean_cpu, peak_cpu, mean_mem, mean_sto, net) = match metrics {
            Some(m) => (
                m.mean(MetricKind::CpuCores),
                m.max(MetricKind::CpuCores),
                m.mean(MetricKind::MemoryGb),
                m.mean(MetricKind::StorageGb),
                m.series(MetricKind::IngressBytes)
                    .map(|s| s.points().iter().map(|p| p.value).sum::<f64>())
                    .unwrap_or(0.0)
                    + m.series(MetricKind::EgressBytes)
                        .map(|s| s.points().iter().map(|p| p.value).sum::<f64>())
                        .unwrap_or(0.0),
            ),
            None => (0.0, 0.0, 0.0, 0.0, 0.0),
        };
        components.insert(
            name.clone(),
            ComponentProfile {
                stateful: stateful.contains(name.as_str()),
                name,
                mean_cpu_cores: mean_cpu,
                peak_cpu_cores: peak_cpu,
                mean_memory_gb: mean_mem,
                mean_storage_gb: mean_sto,
                total_network_bytes: net,
            },
        );
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
    use atlas_sim::{ClusterSpec, OverloadModel, Placement, SimConfig, Simulator};

    fn learned_profile() -> ApplicationProfile {
        let app = social_network(SocialNetworkOptions::default());
        let sim = Simulator::new(
            app.clone(),
            Placement::all_onprem(app.component_count()),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 2,
            },
        );
        let schedule =
            WorkloadGenerator::new(WorkloadOptions::social_network_default().with_seed(2))
                .generate(&app)
                .unwrap();
        let store = atlas_telemetry::TelemetryStore::new();
        sim.run(&schedule, &store);
        let stateful: Vec<String> = app
            .stateful_components()
            .into_iter()
            .map(|c| app.component_name(c).to_string())
            .collect();
        ApplicationProfile::learn(&store, &stateful, 50)
    }

    #[test]
    fn learns_every_api_and_component() {
        let profile = learned_profile();
        assert_eq!(profile.apis.len(), 9);
        assert_eq!(profile.components.len(), 29);
        for api in profile.apis.values() {
            assert!(api.request_count > 0);
            assert!(api.mean_latency_ms > 0.0);
            assert!(!api.traces.is_empty());
            assert!(api.traces.len() <= 50);
            assert!(!api.components.is_empty());
        }
    }

    #[test]
    fn stateful_usage_matches_the_application() {
        let profile = learned_profile();
        let compose_stateful = profile.stateful_components_of("/composeAPI");
        assert!(compose_stateful.contains(&"PostStorageMongoDB".to_string()));
        assert!(compose_stateful.contains(&"UserMongoDB".to_string()));
        let follow_stateful = profile.stateful_components_of("/followAPI");
        assert!(follow_stateful.contains(&"SocialGraphMongoDB".to_string()));
        assert!(!follow_stateful.contains(&"MediaMongoDB".to_string()));
        assert!(profile.stateful_components_of("/unknown").is_empty());
    }

    #[test]
    fn component_profiles_capture_resource_usage() {
        let profile = learned_profile();
        let frontend = &profile.components["FrontendNGINX"];
        assert!(frontend.mean_cpu_cores > 0.0);
        assert!(frontend.peak_cpu_cores >= frontend.mean_cpu_cores);
        assert!(!frontend.stateful);
        let mongo = &profile.components["UserMongoDB"];
        assert!(mongo.stateful);
        assert!(mongo.mean_storage_gb > 0.0);
        assert!(frontend.total_network_bytes > 0.0);
    }

    #[test]
    fn latency_samples_match_trace_count() {
        let profile = learned_profile();
        let api = &profile.apis["/loginAPI"];
        assert_eq!(api.latency_samples_ms().len(), api.traces.len());
        assert!(api.latency_samples_ms().iter().all(|&l| l > 0.0));
    }

    #[test]
    fn clustered_weights_cover_the_observed_requests() {
        let profile = learned_profile();
        for api in profile.apis.values() {
            assert_eq!(api.trace_weights.len(), api.traces.len());
            assert!(api.trace_weights.iter().all(|&w| w >= 1.0));
            let total = api.weight_total();
            assert!(
                total <= api.request_count as f64,
                "{}: weights {} exceed requests {}",
                api.endpoint,
                total,
                api.request_count
            );
            // The representative cap binds on structures, not volume: when
            // every structure fits, the weights account for every request.
            if api.traces.len() < 50 {
                assert_eq!(total, api.request_count as f64);
            }
        }
    }
}
