//! Migration preferences: the application owner's constraints and weights
//! (paper §3 and Eq. 4).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use atlas_sim::{ComponentId, SiteId};

/// The application owner's migration preferences.
///
/// These drive both the constraints of Eq. 4 (placement pins, on-prem
/// resource limits, budget) and the per-API weights `τ_A` used by the
/// performance and availability models (critical APIs count double by
/// default).
///
/// Placement pins generalise to the N-site model: [`MigrationPreferences::pin`]
/// fixes a component to one site ([`atlas_sim::Location`]s convert, so the
/// paper's binary pins read unchanged), and
/// [`MigrationPreferences::pin_to_sites`] restricts a component to a *set* of
/// allowed sites (e.g. "any region inside the jurisdiction").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPreferences {
    /// APIs that are critical to the business; weighted
    /// [`MigrationPreferences::critical_weight`]× in the quality models.
    pub critical_apis: Vec<String>,
    /// Weight multiplier applied to critical APIs (the paper defaults to 2).
    pub critical_weight: f64,
    /// Hard placement constraints, e.g. data that must stay on-prem for
    /// regulatory compliance (`M_placement`): component → required site.
    pub pinned: HashMap<ComponentId, SiteId>,
    /// Site-set placement constraints: component → non-empty list of allowed
    /// sites. The first entry is the site searches snap a violating plan to.
    pub allowed_sites: HashMap<ComponentId, Vec<SiteId>>,
    /// Maximum CPU cores the application may keep using on-prem
    /// (`M^CPU_onprem-limit`).
    pub onprem_cpu_limit: f64,
    /// Maximum memory (GB) the application may keep using on-prem.
    pub onprem_memory_limit_gb: f64,
    /// Maximum storage (GB) the application may keep using on-prem.
    pub onprem_storage_limit_gb: f64,
    /// Cloud budget over the period of interest (`M_budget`); `None` means
    /// unlimited (the paper's default).
    pub budget: Option<f64>,
}

impl Default for MigrationPreferences {
    fn default() -> Self {
        Self {
            critical_apis: Vec::new(),
            critical_weight: 2.0,
            pinned: HashMap::new(),
            allowed_sites: HashMap::new(),
            onprem_cpu_limit: f64::INFINITY,
            onprem_memory_limit_gb: f64::INFINITY,
            onprem_storage_limit_gb: f64::INFINITY,
            budget: None,
        }
    }
}

impl MigrationPreferences {
    /// Preferences with the given on-prem CPU limit and everything else at
    /// its default.
    pub fn with_cpu_limit(limit: f64) -> Self {
        Self {
            onprem_cpu_limit: limit,
            ..Self::default()
        }
    }

    /// Builder: mark an API as critical.
    pub fn critical(mut self, api: impl Into<String>) -> Self {
        self.critical_apis.push(api.into());
        self
    }

    /// Builder: pin a component to a site (e.g. regulatory data that must
    /// stay on-prem). [`atlas_sim::Location`]s convert implicitly, so the
    /// paper's binary pins read unchanged.
    pub fn pin(mut self, component: ComponentId, site: impl Into<SiteId>) -> Self {
        self.pinned.insert(component, site.into());
        self
    }

    /// Builder: restrict a component to a set of allowed sites. The first
    /// entry is the site searches snap a violating plan to.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn pin_to_sites(mut self, component: ComponentId, sites: Vec<SiteId>) -> Self {
        assert!(!sites.is_empty(), "a site-set pin needs at least one site");
        self.allowed_sites.insert(component, sites);
        self
    }

    /// Builder: set the cloud budget.
    pub fn with_budget(mut self, budget: f64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Builder: set the on-prem memory limit.
    pub fn with_memory_limit(mut self, gb: f64) -> Self {
        self.onprem_memory_limit_gb = gb;
        self
    }

    /// The weight `τ_A` of an API.
    pub fn api_weight(&self, api: &str) -> f64 {
        if self.critical_apis.iter().any(|a| a == api) {
            self.critical_weight
        } else {
            1.0
        }
    }

    /// Whether a plan violates any placement pin (exact or site-set).
    pub fn violates_pins(&self, plan: &crate::plan::MigrationPlan) -> bool {
        self.pinned
            .iter()
            .any(|(&c, &site)| c.0 < plan.len() && plan.site(c) != site)
            || self
                .allowed_sites
                .iter()
                .any(|(&c, allowed)| c.0 < plan.len() && !allowed.contains(&plan.site(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::MigrationPlan;
    use atlas_sim::Location;

    #[test]
    fn defaults_are_unconstrained() {
        let p = MigrationPreferences::default();
        assert!(p.critical_apis.is_empty());
        assert_eq!(p.critical_weight, 2.0);
        assert!(p.budget.is_none());
        assert!(p.onprem_cpu_limit.is_infinite());
        assert!(p.allowed_sites.is_empty());
        assert_eq!(p.api_weight("/any"), 1.0);
    }

    #[test]
    fn critical_apis_get_double_weight() {
        let p = MigrationPreferences::default()
            .critical("/composeAPI")
            .critical("/homeTimelineAPI");
        assert_eq!(p.api_weight("/composeAPI"), 2.0);
        assert_eq!(p.api_weight("/loginAPI"), 1.0);
    }

    #[test]
    fn pins_are_checked_against_plans() {
        let p = MigrationPreferences::default()
            .pin(ComponentId(0), Location::OnPrem)
            .pin(ComponentId(2), Location::OnPrem);
        let ok = MigrationPlan::from_bits(&[0, 1, 0]);
        let bad = MigrationPlan::from_bits(&[0, 0, 1]);
        assert!(!p.violates_pins(&ok));
        assert!(p.violates_pins(&bad));
    }

    #[test]
    fn site_pins_generalize_the_binary_ones() {
        // Pin component 1 to site 2 exactly.
        let exact = MigrationPreferences::default().pin(ComponentId(1), SiteId(2));
        let at_2 = MigrationPlan::from_sites(vec![SiteId(0), SiteId(2), SiteId(0)]);
        let at_1 = MigrationPlan::from_sites(vec![SiteId(0), SiteId(1), SiteId(0)]);
        assert!(!exact.violates_pins(&at_2));
        assert!(exact.violates_pins(&at_1));

        // Restrict component 0 to sites {0, 3}.
        let set = MigrationPreferences::default()
            .pin_to_sites(ComponentId(0), vec![SiteId(0), SiteId(3)]);
        let at_0 = MigrationPlan::from_sites(vec![SiteId(0), SiteId(1)]);
        let at_3 = MigrationPlan::from_sites(vec![SiteId(3), SiteId(1)]);
        let at_1 = MigrationPlan::from_sites(vec![SiteId(1), SiteId(1)]);
        assert!(!set.violates_pins(&at_0));
        assert!(!set.violates_pins(&at_3));
        assert!(set.violates_pins(&at_1));
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_site_sets_are_rejected() {
        let _ = MigrationPreferences::default().pin_to_sites(ComponentId(0), vec![]);
    }

    #[test]
    fn builders_compose() {
        let p = MigrationPreferences::with_cpu_limit(100.0)
            .with_budget(50.0)
            .with_memory_limit(256.0)
            .critical("/x");
        assert_eq!(p.onprem_cpu_limit, 100.0);
        assert_eq!(p.budget, Some(50.0));
        assert_eq!(p.onprem_memory_limit_gb, 256.0);
        assert_eq!(p.api_weight("/x"), 2.0);
    }
}
