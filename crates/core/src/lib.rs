//! Atlas core: the hybrid-cloud migration advisor.
//!
//! This crate implements the paper's contribution (§3–§4): an
//! observability-driven advisor that learns how every user-facing API uses
//! the application's components and recommends which components to offload
//! to the cloud, optimising three quality indicators — API latency, API
//! availability (migration disruption) and cloud hosting cost — under the
//! application owner's preferences.
//!
//! The pipeline mirrors Figure 5 of the paper:
//!
//! 1. **Application learning** — [`profile`] extracts per-API and
//!    per-component profiles from telemetry; [`footprint`] learns the
//!    network footprint of every API (Eq. 1).
//! 2. **Migration recommendation** — [`quality`] models the three quality
//!    indicators of a candidate plan ([`delay`] performs the delay-injection
//!    latency estimate of §4.1.1; [`kernel`] compiles it into a flat,
//!    index-resolved, allocation-free scoring pass), [`eval`] wraps the
//!    quality model in a
//!    cached, batched, thread-parallel evaluation layer shared by every
//!    search path, [`plan`]/[`preferences`] describe plans and constraints
//!    (Eq. 4), [`rl_crossover`] trains the reward-driven crossover agent
//!    (Eq. 5) and [`recommender`] runs the DRL-based genetic algorithm;
//!    [`hierarchy`] organises the Pareto-optimal plans into a dendrogram for
//!    selection (§4.2.2).
//! 3. **Post-migration monitoring** — [`monitor`] detects latency-
//!    distribution drift with KL divergence (§4.3); [`security`] reuses the
//!    footprints to flag data-exfiltration anomalies (§6).
//!
//! [`advisor::Atlas`] wires the stages together behind one entry point for
//! batch use; [`service::AdvisorService`] runs the same pipeline as a
//! resident event loop — streaming ingest, continuous drift detection,
//! incremental dirty-API relearning and re-recommendation — and
//! [`hub::AdvisorHub`] serves many such tenants concurrently over
//! lock-free, epoch-stamped model snapshots with per-epoch shared eval
//! caches.

#![deny(missing_docs)]

pub mod advisor;
pub mod delay;
pub mod eval;
pub mod footprint;
pub mod hierarchy;
pub mod hub;
pub mod kernel;
pub mod monitor;
pub mod plan;
pub mod preferences;
pub mod profile;
pub mod quality;
pub mod recommender;
pub mod rl_crossover;
pub mod security;
pub mod service;

pub use advisor::{Atlas, AtlasConfig};
pub use delay::DelayInjector;
pub use eval::{
    EvalStats, MemoCache, PlanEvaluator, DELTA_DIFF_THRESHOLD, LANE_WIDTH, MEMO_SHARDS,
};
pub use footprint::{FootprintLearner, NetworkFootprint};
pub use hierarchy::{Dendrogram, DendrogramNode};
pub use hub::{AdvisorHub, HubReport, TenantId};
pub use kernel::{CompiledQuality, ConstraintKernel, ScoredTrace};
pub use monitor::{kl_divergence, DriftDetector, DriftReport};
pub use plan::MigrationPlan;
pub use preferences::MigrationPreferences;
pub use profile::{ApiProfile, ApplicationProfile, ComponentProfile};
pub use quality::{PlanQuality, QualityModel, ScoredPlan};
pub use recommender::{
    random_site, RecommendedPlan, Recommender, RecommenderConfig, ARCHIVE_CAPACITY,
};
pub use rl_crossover::{CrossoverAgent, RlCrossoverConfig};
pub use security::{BreachDetector, BreachReport};
pub use service::{AdvisorService, AdvisorServiceConfig, PlanDelta, ServiceEvent};
