//! The resident advisor: a continuously-running event loop over streaming
//! telemetry (paper §4.3 operationalised).
//!
//! [`Atlas`] is a batch advisor: learn once from a
//! full day of telemetry, recommend once. [`AdvisorService`] keeps the
//! advisor *resident*: traces stream in through [`AdvisorService::feed`],
//! the telemetry store retains a bounded window, a [`DriftDetector`] per
//! API continuously compares the freshest latency window against the
//! distribution the current model was learned from, and when drift fires
//! the service relearns **only the APIs whose telemetry changed**
//! ([`QualityModel::relearn_dirty`] — per-API profile relearn plus per-API
//! op-arena recompile, bit-identical to a cold rebuild), then re-runs the
//! recommender and reports how the preferred plan moved.
//!
//! ```text
//!          ┌──────────── feed(batch) ────────────┐
//!          ▼                                     │
//!   TelemetryStore ──ingest_batch──▶ retention eviction + per-API epochs
//!          │                                     │
//!          ▼ recent window per API               │
//!   DriftDetector.check ──drifted?──▶ dirty_apis_since(synced epoch)
//!                                     │
//!                                     ▼
//!                   QualityModel::relearn_dirty (profile + kernel, in place)
//!                                     │
//!                                     ▼
//!              Recommender::recommend_with(warm PlanEvaluator)
//!                                     │
//!                                     ▼
//!              ServiceEvent timeline (ingest / drift / relearn / plans)
//! ```
//!
//! Every stage appends [`ServiceEvent`]s to the returned timeline, so a
//! caller replaying a day of traffic gets an auditable log of what the
//! advisor saw, when it retrained, how long the drift-to-new-plan path
//! took, and which components the new recommendation moved.

use std::collections::{HashMap, VecDeque};
use std::mem;
use std::sync::Arc;
use std::time::Instant;

use atlas_sim::{Placement, SiteId};
use atlas_telemetry::{TelemetryStore, Trace};

use crate::advisor::{Atlas, AtlasConfig};
use crate::monitor::{DriftDetector, DriftReport};
use crate::plan::MigrationPlan;
use crate::preferences::MigrationPreferences;
use crate::quality::QualityModel;
use crate::recommender::{RecommendationReport, Recommender};

/// Default number of [`ServiceEvent`]s a resident service retains in its
/// timeline before evicting oldest-first (see
/// [`AdvisorServiceConfig::timeline_cap`]).
pub const DEFAULT_TIMELINE_CAP: usize = 1024;

/// Configuration of a resident [`AdvisorService`].
#[derive(Debug, Clone)]
pub struct AdvisorServiceConfig {
    /// The wrapped advisor configuration (learning + recommender settings).
    pub atlas: AtlasConfig,
    /// The owner's migration preferences, applied to every recommendation
    /// round.
    pub preferences: MigrationPreferences,
    /// Telemetry retention window in seconds: traces whose root started
    /// more than this long before the newest trace are evicted at ingest.
    /// `None` retains everything (not recommended for a resident service).
    pub retention_window_s: Option<u64>,
    /// Number of the freshest latency samples compared against the learned
    /// distribution on every drift check.
    pub drift_window: usize,
    /// Minimum retained samples an API needs before a detector is armed
    /// (below this, window-vs-distribution divergence is sampling noise).
    pub min_detector_samples: usize,
    /// Factor over the baseline divergence that flags drift
    /// (see [`DriftDetector::with_threshold_factor`]).
    pub threshold_factor: f64,
    /// Maximum [`ServiceEvent`]s retained in the timeline. A resident
    /// service emits events forever; once the timeline holds this many,
    /// each new event evicts the oldest one and bumps
    /// [`AdvisorService::dropped_events`]. The events *returned* by
    /// [`AdvisorService::feed`] / [`AdvisorService::bootstrap`] are never
    /// truncated — only the retained history is bounded.
    pub timeline_cap: usize,
}

impl AdvisorServiceConfig {
    /// A service configuration with the detector defaults (50-sample drift
    /// window, armed from 100 samples, 5× threshold).
    pub fn new(atlas: AtlasConfig, preferences: MigrationPreferences) -> Self {
        Self {
            atlas,
            preferences,
            retention_window_s: None,
            drift_window: 50,
            min_detector_samples: 100,
            threshold_factor: DriftDetector::DEFAULT_THRESHOLD_FACTOR,
            timeline_cap: DEFAULT_TIMELINE_CAP,
        }
    }

    /// Set the telemetry retention window (builder style).
    pub fn with_retention_window_s(mut self, window_s: u64) -> Self {
        self.retention_window_s = Some(window_s);
        self
    }

    /// Set the timeline event cap (builder style). See
    /// [`Self::timeline_cap`].
    pub fn with_timeline_cap(mut self, cap: usize) -> Self {
        self.timeline_cap = cap;
        self
    }
}

/// One component move between the previously preferred plan and the newly
/// preferred one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDelta {
    /// Component name.
    pub component: String,
    /// Site under the previous recommendation.
    pub from: SiteId,
    /// Site under the new recommendation.
    pub to: SiteId,
}

/// One entry of the service timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// A telemetry batch was ingested.
    Ingested {
        /// Traces ingested by this batch.
        traces: usize,
        /// Traces evicted by the retention window.
        evicted: usize,
        /// Store epoch after the batch.
        epoch: u64,
    },
    /// An API's recent latency window drifted from the learned
    /// distribution.
    DriftFired {
        /// The drifted API.
        api: String,
        /// The detector's report.
        report: DriftReport,
    },
    /// The model was (re)learned.
    Relearned {
        /// The APIs relearned (every API on a cold bootstrap).
        apis: Vec<String>,
        /// Whether this was the cold bootstrap (full learn) rather than an
        /// incremental dirty-API relearn.
        cold: bool,
        /// Wall-clock milliseconds of the relearn + recompile.
        elapsed_ms: f64,
    },
    /// The recommender produced a fresh Pareto front.
    Rerecommended {
        /// Number of Pareto-optimal plans.
        plans: usize,
        /// Component moves of the preferred (performance-optimised) plan
        /// relative to the previous round's preferred plan.
        deltas: Vec<PlanDelta>,
        /// Wall-clock milliseconds from drift confirmation to the new
        /// recommendation (relearn + recompile + search).
        latency_ms: f64,
    },
}

/// A resident advisor: streaming ingest, continuous per-API drift
/// detection, incremental relearning and re-recommendation. See the
/// [module docs](self) for the event loop.
pub struct AdvisorService {
    config: AdvisorServiceConfig,
    store: TelemetryStore,
    atlas: Atlas,
    current: Placement,
    /// The compiled model, shared by `Arc` so a serving layer (the
    /// multi-tenant [`hub`](crate::hub)) can publish an epoch-stamped
    /// snapshot that in-flight recommenders keep reading while the service
    /// relearns the next generation in place (`Arc::make_mut` clones only
    /// when a snapshot is still held elsewhere).
    model: Option<Arc<QualityModel>>,
    /// Bumped every time the model changes: the cold bootstrap and each
    /// incremental resync. Snapshot holders compare generations to know
    /// when to republish.
    model_generation: u64,
    detectors: HashMap<String, DriftDetector>,
    /// Store epoch the model was last synchronised to.
    synced_epoch: u64,
    recommendation: Option<RecommendationReport>,
    preferred: Option<MigrationPlan>,
    /// Bounded event history (oldest evicted beyond
    /// [`AdvisorServiceConfig::timeline_cap`]).
    timeline: VecDeque<ServiceEvent>,
    /// Events of the round in flight, returned (untruncated) by
    /// `feed`/`bootstrap` before being folded into the bounded timeline.
    round_events: Vec<ServiceEvent>,
    /// Events evicted from the timeline so far.
    dropped_events: u64,
}

impl AdvisorService {
    /// Create a resident advisor for an application currently deployed as
    /// `current`. The service owns its telemetry store (with the
    /// configured retention window); feed it traces with
    /// [`AdvisorService::feed`], then arm the model with
    /// [`AdvisorService::bootstrap`].
    pub fn new(config: AdvisorServiceConfig, current: Placement) -> Self {
        let store = match config.retention_window_s {
            Some(w) => TelemetryStore::with_retention_window_s(w),
            None => TelemetryStore::new(),
        };
        let atlas = Atlas::new(config.atlas.clone());
        Self {
            config,
            store,
            atlas,
            current,
            model: None,
            model_generation: 0,
            detectors: HashMap::new(),
            synced_epoch: 0,
            recommendation: None,
            preferred: None,
            timeline: VecDeque::new(),
            round_events: Vec::new(),
            dropped_events: 0,
        }
    }

    /// The service's telemetry store (for recording metrics/traffic
    /// alongside the trace stream).
    pub fn store(&self) -> &TelemetryStore {
        &self.store
    }

    /// The current quality model, if bootstrapped.
    pub fn model(&self) -> Option<&QualityModel> {
        self.model.as_deref()
    }

    /// A shared handle to the current quality model, if bootstrapped: the
    /// publication primitive of the multi-tenant [`hub`](crate::hub). The
    /// `Arc` stays valid across later relearns (resync clones-on-write
    /// instead of mutating a shared model), so a recommender holding it
    /// never observes a model change mid-search.
    pub fn shared_model(&self) -> Option<Arc<QualityModel>> {
        self.model.clone()
    }

    /// The model generation: `0` before bootstrap, bumped by the bootstrap
    /// and by every incremental relearn. Two equal generations guarantee
    /// the same model (and therefore the same scores), so snapshot holders
    /// use this to decide when a republish — and a fresh eval cache — is
    /// due.
    pub fn model_generation(&self) -> u64 {
        self.model_generation
    }

    /// The service configuration.
    pub fn config(&self) -> &AdvisorServiceConfig {
        &self.config
    }

    /// The placement the application is currently deployed as.
    pub fn current_placement(&self) -> &Placement {
        &self.current
    }

    /// The latest recommendation report, if any.
    pub fn recommendation(&self) -> Option<&RecommendationReport> {
        self.recommendation.as_ref()
    }

    /// The retained event timeline, oldest first. Bounded by
    /// [`AdvisorServiceConfig::timeline_cap`]: once full, each new event
    /// evicts the oldest (counted by [`Self::dropped_events`]).
    pub fn timeline(&self) -> &VecDeque<ServiceEvent> {
        &self.timeline
    }

    /// Events evicted from the bounded timeline so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Whether [`AdvisorService::bootstrap`] has run.
    pub fn is_bootstrapped(&self) -> bool {
        self.model.is_some()
    }

    /// Ingest one batch of traces and run the event loop: retention
    /// eviction, per-API drift checks and — when drift fires — incremental
    /// relearn and re-recommendation. Returns the events this batch
    /// produced (also appended to [`AdvisorService::timeline`]).
    ///
    /// Before [`AdvisorService::bootstrap`] the loop only ingests: there is
    /// no model to drift from yet.
    pub fn feed(&mut self, traces: Vec<Trace>) -> Vec<ServiceEvent> {
        let report = self.store.ingest_batch(traces);
        self.round_events.push(ServiceEvent::Ingested {
            traces: report.ingested,
            evicted: report.evicted,
            epoch: report.epoch,
        });
        if self.model.is_some() {
            let drifted = self.check_drift();
            if !drifted.is_empty() {
                self.resync(&drifted);
            }
        }
        self.finish_round()
    }

    /// Fold the in-flight round's events into the bounded timeline and
    /// return them (untruncated — only the retained history is capped).
    fn finish_round(&mut self) -> Vec<ServiceEvent> {
        let events = mem::take(&mut self.round_events);
        for event in &events {
            if self.timeline.len() >= self.config.timeline_cap.max(1) {
                self.timeline.pop_front();
                self.dropped_events += 1;
            }
            self.timeline.push_back(event.clone());
        }
        events
    }

    /// Cold-start the model from everything the store currently retains:
    /// full application learning, first recommendation, and one armed
    /// drift detector per API with enough samples. Returns the bootstrap
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if the store holds no traces.
    pub fn bootstrap(&mut self) -> Vec<ServiceEvent> {
        assert!(
            self.store.trace_count() > 0,
            "feed the service telemetry before bootstrapping"
        );
        let start = Instant::now();
        self.atlas.learn(&self.store);
        let model = self
            .atlas
            .quality_model(self.current.clone(), self.config.preferences.clone());
        let apis = self.store.apis();
        self.model = Some(Arc::new(model));
        self.model_generation += 1;
        self.synced_epoch = self.store.epoch();
        self.round_events.push(ServiceEvent::Relearned {
            apis: apis.clone(),
            cold: true,
            elapsed_ms: start.elapsed().as_secs_f64() * 1_000.0,
        });
        for api in &apis {
            self.arm_detector(api);
        }
        self.recommend(start);
        self.finish_round()
    }

    /// (Re)arm the drift detector of one API from the store's retained
    /// latency distribution: the reference is the full distribution, the
    /// baseline divergence is the freshest window's divergence from it —
    /// i.e. the sampling noise a healthy window shows. Later windows
    /// exceeding that noise by the threshold factor flag drift. APIs with
    /// fewer than the configured minimum of samples are left unarmed.
    fn arm_detector(&mut self, api: &str) {
        let samples = self.store.api_latencies_ms(api);
        if samples.len() < self.config.min_detector_samples.max(2) {
            self.detectors.remove(api);
            return;
        }
        let window = self.config.drift_window.min(samples.len() / 2).max(1);
        let freshest = samples[samples.len() - window..].to_vec();
        let detector = DriftDetector::new(samples, &freshest)
            .with_threshold_factor(self.config.threshold_factor);
        self.detectors.insert(api.to_string(), detector);
    }

    /// Run every armed detector against its API's freshest latency window;
    /// returns the drifted APIs (sorted) and logs a
    /// [`ServiceEvent::DriftFired`] per hit.
    fn check_drift(&mut self) -> Vec<String> {
        let mut names: Vec<&String> = self.detectors.keys().collect();
        names.sort();
        let mut drifted = Vec::new();
        let mut events = Vec::new();
        for api in names {
            let samples = self.store.api_latencies_ms(api);
            if samples.len() < self.config.drift_window {
                continue;
            }
            let recent = &samples[samples.len() - self.config.drift_window..];
            let report = self.detectors[api].check(recent);
            if report.drifted {
                drifted.push(api.clone());
                events.push(ServiceEvent::DriftFired {
                    api: api.clone(),
                    report,
                });
            }
        }
        self.round_events.extend(events);
        drifted
    }

    /// The drift response: relearn every API the store marked dirty since
    /// the last sync (a superset of the drifted ones — cheap, and it keeps
    /// the model equal to a cold rebuild), re-arm their detectors, and
    /// re-run the recommender over a warm evaluator.
    fn resync(&mut self, drifted: &[String]) {
        let start = Instant::now();
        let (epoch, dirty) = self.store.dirty_apis_since(self.synced_epoch);
        // Clone-on-write: if a snapshot holder (the hub, an in-flight
        // recommender) still shares the Arc, relearn a private copy and
        // leave the published model untouched — readers at the old
        // generation stay consistent until the new one is republished.
        let model = Arc::make_mut(self.model.as_mut().expect("resync requires a model"));
        model.relearn_dirty(
            &self.store,
            &self.config.atlas.stateful_components,
            self.config.atlas.traces_per_api,
            &dirty,
        );
        self.model_generation += 1;
        self.synced_epoch = epoch;
        self.round_events.push(ServiceEvent::Relearned {
            apis: dirty.clone(),
            cold: false,
            elapsed_ms: start.elapsed().as_secs_f64() * 1_000.0,
        });
        for api in dirty.iter().chain(drifted) {
            self.arm_detector(api);
        }
        self.recommend(start);
    }

    /// Run the recommender over the current model through a warm
    /// [`PlanEvaluator`](crate::eval::PlanEvaluator) (shared across the
    /// whole GA run — the memo cache makes revisited plans free; it is
    /// rebuilt per model generation because a relearn invalidates every
    /// cached score), record the report and log the plan deltas against
    /// the previous round's preferred plan.
    fn recommend(&mut self, since: Instant) {
        let model = self.model.as_deref().expect("recommend requires a model");
        let recommender = Recommender::new(model, self.config.atlas.recommender.clone());
        let report = recommender.recommend();
        let preferred = report
            .performance_optimized()
            .map(|p| p.plan.clone())
            .or_else(|| report.plans.first().map(|p| p.plan.clone()));
        let deltas = match (&self.preferred, &preferred) {
            (Some(old), Some(new)) if old.len() == new.len() => model
                .component_index()
                .iter()
                .enumerate()
                .filter_map(|(i, name)| {
                    let c = atlas_sim::ComponentId(i);
                    let (from, to) = (old.site(c), new.site(c));
                    (from != to).then(|| PlanDelta {
                        component: name.clone(),
                        from,
                        to,
                    })
                })
                .collect(),
            _ => Vec::new(),
        };
        self.round_events.push(ServiceEvent::Rerecommended {
            plans: report.plans.len(),
            deltas,
            latency_ms: since.elapsed().as_secs_f64() * 1_000.0,
        });
        self.preferred = preferred;
        self.recommendation = Some(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommender::RecommenderConfig;
    use atlas_apps::{synthesize, CallGraphShape, SynthOptions, WorkloadGenerator, WorkloadShape};
    use atlas_sim::{ClusterSpec, OverloadModel, SimConfig, Simulator};
    use atlas_telemetry::TraceId;

    const DAY_S: u64 = 60;

    /// A small synthetic scenario's one-day trace corpus (root-start
    /// ordered) plus the matching service configuration.
    fn scenario() -> (AdvisorServiceConfig, Placement, Vec<Trace>) {
        let options = SynthOptions {
            components: 20,
            shape: CallGraphShape::Layered,
            stateful_fraction: 0.2,
            apis: 3,
            call_depth: 4,
            data_scale: 1.0,
            workload: WorkloadShape::Diurnal,
            volume_scale: 1.0,
            site_count: 2,
            seed: 7,
        };
        let scenario = synthesize(options).unwrap();
        let current = Placement::all_onprem(scenario.topology.component_count());
        let scratch = TelemetryStore::new();
        let mut workload = scenario.workload.clone();
        workload.profile.day_seconds = DAY_S;
        let sim = Simulator::new(
            scenario.topology.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 7,
            },
        );
        let schedule = WorkloadGenerator::new(workload)
            .generate(&scenario.topology)
            .unwrap();
        sim.run(&schedule, &scratch);

        let mut corpus: Vec<Trace> = scratch
            .apis()
            .into_iter()
            .flat_map(|api| scratch.traces_for_api(&api))
            .collect();
        corpus
            .sort_by(|a, b| (a.root().start_us, a.trace_id).cmp(&(b.root().start_us, b.trace_id)));

        let mut atlas = AtlasConfig::new(scenario.component_index(), scenario.stateful_names());
        atlas.sites = Some(scenario.catalog.clone());
        atlas.traces_per_api = 30;
        atlas.horizon_steps = 8;
        atlas.recommender = RecommenderConfig {
            population: 8,
            max_visited: 60,
            ..RecommenderConfig::fast()
        };
        let preferences = MigrationPreferences::with_cpu_limit(scenario.burst_cpu_limit(5.0, 0.6));
        let mut config = AdvisorServiceConfig::new(atlas, preferences);
        config.min_detector_samples = 30;
        config.drift_window = 20;
        (config, current, corpus)
    }

    /// Clone one API's traces as a later, slower day: every span shifted
    /// forward and its duration scaled, trace ids re-tagged.
    fn slow_replay(corpus: &[Trace], api: &str, offset_us: u64, factor: u64) -> Vec<Trace> {
        corpus
            .iter()
            .filter(|t| t.root().operation == api)
            .cloned()
            .map(|mut t| {
                t.trace_id = TraceId(t.trace_id.0 ^ (1 << 62));
                for node in &mut t.nodes {
                    node.span.trace_id = t.trace_id;
                    node.span.start_us += offset_us;
                    node.span.duration_us *= factor;
                }
                t
            })
            .collect()
    }

    #[test]
    fn feed_before_bootstrap_only_ingests() {
        let (config, current, corpus) = scenario();
        let mut service = AdvisorService::new(config, current);
        let events = service.feed(corpus);
        assert!(!service.is_bootstrapped());
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            ServiceEvent::Ingested { traces, evicted: 0, .. } if traces > 0
        ));
    }

    #[test]
    #[should_panic(expected = "feed the service telemetry")]
    fn bootstrapping_an_empty_service_panics() {
        let (config, current, _) = scenario();
        AdvisorService::new(config, current).bootstrap();
    }

    #[test]
    fn bootstrap_learns_recommends_and_stays_calm_on_familiar_traffic() {
        let (config, current, corpus) = scenario();
        let mut service = AdvisorService::new(config, current);
        let replay = slow_replay(
            &corpus,
            &corpus[0].root().operation,
            (DAY_S + 1) * 1_000_000,
            1,
        );
        service.feed(corpus);
        let events = service.bootstrap();
        assert!(service.is_bootstrapped());
        assert!(matches!(
            &events[0],
            ServiceEvent::Relearned { cold: true, apis, .. } if apis.len() == 3
        ));
        assert!(matches!(&events[1], ServiceEvent::Rerecommended { plans, .. } if *plans > 0));
        assert!(service.recommendation().is_some());

        // A same-shape replay (duration factor 1) must not trip a detector.
        let events = service.feed(replay);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, ServiceEvent::DriftFired { .. })),
            "familiar traffic drifted: {events:?}"
        );
    }

    #[test]
    fn drift_episode_relearns_only_the_dirty_api_and_rerecommends() {
        let (config, current, corpus) = scenario();
        let mut service = AdvisorService::new(config, current);
        service.feed(corpus.clone());
        service.bootstrap();

        let api = corpus[0].root().operation.clone();
        let before = service.model().unwrap().profile().apis[&api].mean_latency_ms;
        let events = service.feed(slow_replay(&corpus, &api, (DAY_S + 1) * 1_000_000, 5));

        assert!(
            events
                .iter()
                .any(|e| matches!(e, ServiceEvent::DriftFired { api: a, report } if a == &api && report.drifted)),
            "5x slower traffic must fire the {api} detector: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(
                e,
                ServiceEvent::Relearned { cold: false, apis, .. } if apis == &vec![api.clone()]
            )),
            "only the drifted API is dirty, so only it relearns: {events:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, ServiceEvent::Rerecommended { .. })));
        let after = service.model().unwrap().profile().apis[&api].mean_latency_ms;
        assert!(
            after > before * 1.5,
            "the relearned profile must absorb the slowdown: {before:.2} -> {after:.2}"
        );
    }

    #[test]
    fn timeline_cap_evicts_oldest_events_and_counts_drops() {
        let (mut config, current, corpus) = scenario();
        config = config.with_timeline_cap(2);
        let mut service = AdvisorService::new(config, current);
        let fed = service.feed(corpus);
        assert_eq!(fed.len(), 1);
        assert_eq!(service.dropped_events(), 0);

        // Bootstrap emits Relearned + Rerecommended: together with the
        // ingest that is 3 events against a cap of 2, so the oldest (the
        // ingest) evicts — but the *returned* round is never truncated.
        let booted = service.bootstrap();
        assert_eq!(booted.len(), 2);
        assert_eq!(service.timeline().len(), 2);
        assert_eq!(service.dropped_events(), 1);
        assert!(
            matches!(
                service.timeline().front(),
                Some(ServiceEvent::Relearned { .. })
            ),
            "oldest-first eviction drops the ingest event first"
        );
        assert!(matches!(
            service.timeline().back(),
            Some(ServiceEvent::Rerecommended { .. })
        ));
    }

    #[test]
    fn model_generation_tracks_bootstrap_and_relearns() {
        let (config, current, corpus) = scenario();
        let mut service = AdvisorService::new(config, current);
        assert_eq!(service.model_generation(), 0);
        service.feed(corpus.clone());
        assert_eq!(service.model_generation(), 0, "ingest alone never bumps");
        service.bootstrap();
        assert_eq!(service.model_generation(), 1);

        // Hold the published snapshot across a drift-triggered relearn: the
        // relearn clones-on-write, so the held model is untouched while the
        // service moves to generation 2.
        let snapshot = service.shared_model().unwrap();
        let api = corpus[0].root().operation.clone();
        let before = snapshot.profile().apis[&api].mean_latency_ms;
        service.feed(slow_replay(&corpus, &api, (DAY_S + 1) * 1_000_000, 5));
        assert_eq!(service.model_generation(), 2);
        let after_held = snapshot.profile().apis[&api].mean_latency_ms;
        assert_eq!(
            before.to_bits(),
            after_held.to_bits(),
            "a held snapshot never observes a relearn"
        );
        let fresh = service.model().unwrap().profile().apis[&api].mean_latency_ms;
        assert!(
            fresh > before * 1.5,
            "the new generation absorbed the drift"
        );
    }

    #[test]
    fn retention_window_evicts_old_traces_during_later_days() {
        let (mut config, current, corpus) = scenario();
        config = config.with_retention_window_s(DAY_S + DAY_S / 2);
        let mut service = AdvisorService::new(config, current);
        service.feed(corpus.clone());
        service.bootstrap();

        // Day 2 ends past the retention window, so day-1 traces evict.
        let api = corpus[0].root().operation.clone();
        let events = service.feed(slow_replay(&corpus, &api, (DAY_S + 1) * 1_000_000, 1));
        let evicted: usize = events
            .iter()
            .map(|e| match e {
                ServiceEvent::Ingested { evicted, .. } => *evicted,
                _ => 0,
            })
            .sum();
        assert!(evicted > 0, "day-2 ingest must evict day-1 traces");
        assert!(service.store().trace_count() > 0);
    }
}
