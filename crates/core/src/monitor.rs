//! Post-migration monitoring: drift detection over API latency
//! distributions (paper §4.3).
//!
//! After a plan is executed, the approximated latency distribution of each
//! API (from delay injection) should keep matching reality. User-behaviour
//! or footprint drift invalidates it; Atlas detects this by comparing the
//! KL divergence of the most recent latency distribution against the
//! divergence observed right after the migration, and triggers a new round
//! of recommendations when the information loss grows by a large factor
//! (the paper reports 0.47 → 6.09, a 13× loss, for `/homeTimeline`).

use serde::{Deserialize, Serialize};

/// Kullback–Leibler divergence `D_KL(P ‖ Q)` between two empirical latency
/// distributions, computed over a shared histogram with `bins` bins spanning
/// the combined range of both sample sets. Each bin receives an ε
/// pseudo-count proportional to `1 / total_samples`, which keeps the
/// divergence finite when a bin is empty in `Q` without drowning small
/// sample sets: add-one smoothing would inject `bins` pseudo-counts (about
/// 30 % of the mass of a 50-sample window at the default 20 bins), flat
/// enough to hide a clearly shifted distribution from the drift detector.
pub fn kl_divergence(p_samples: &[f64], q_samples: &[f64], bins: usize) -> f64 {
    if p_samples.is_empty() || q_samples.is_empty() || bins == 0 {
        return 0.0;
    }
    let min = p_samples
        .iter()
        .chain(q_samples.iter())
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max = p_samples
        .iter()
        .chain(q_samples.iter())
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let width = ((max - min) / bins as f64).max(1e-9);

    let histogram = |samples: &[f64]| -> Vec<f64> {
        let total = samples.len() as f64;
        let epsilon = 1.0 / total; // ε-smoothing proportional to 1/total
        let mut counts = vec![epsilon; bins];
        for &s in samples {
            let idx = (((s - min) / width) as usize).min(bins - 1);
            counts[idx] += 1.0;
        }
        let mass = total + bins as f64 * epsilon;
        counts.into_iter().map(|c| c / mass).collect()
    };

    let p = histogram(p_samples);
    let q = histogram(q_samples);
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi).ln() } else { 0.0 })
        .sum()
}

/// Outcome of one drift check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Baseline divergence `D_KL(b_real ‖ b_approx)` captured right after
    /// the migration.
    pub baseline_kl: f64,
    /// Divergence of the most recent window `D_KL(b_real ‖ b_recent)`.
    pub recent_kl: f64,
    /// `recent / baseline` — the "information loss" factor the paper quotes.
    pub information_loss_factor: f64,
    /// Whether the drift threshold was exceeded.
    pub drifted: bool,
}

/// Drift detector for one API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftDetector {
    /// Latency samples (ms) observed right after the last migration — the
    /// reference distribution `b_real`.
    reference: Vec<f64>,
    /// Baseline divergence `D_KL(b_real ‖ b_approx)` where `b_approx` is the
    /// delay-injection estimate of the executed plan.
    baseline_kl: f64,
    /// Histogram bins.
    bins: usize,
    /// Factor over the baseline divergence that triggers a new round of
    /// recommendations.
    threshold_factor: f64,
}

impl DriftDetector {
    /// Default number of histogram bins.
    pub const DEFAULT_BINS: usize = 20;
    /// Default trigger factor: the recent divergence must exceed the
    /// baseline by this factor to flag drift (the paper's example is 13×; a
    /// conservative 5× default catches it with margin).
    pub const DEFAULT_THRESHOLD_FACTOR: f64 = 5.0;

    /// Create a detector from the post-migration reality (`reference`, the
    /// measured latency samples) and the approximation used when the plan
    /// was selected (`approximation`, the delay-injection samples).
    pub fn new(reference: Vec<f64>, approximation: &[f64]) -> Self {
        let baseline_kl = kl_divergence(&reference, approximation, Self::DEFAULT_BINS).max(1e-6);
        Self {
            reference,
            baseline_kl,
            bins: Self::DEFAULT_BINS,
            threshold_factor: Self::DEFAULT_THRESHOLD_FACTOR,
        }
    }

    /// Override the trigger factor (builder style).
    pub fn with_threshold_factor(mut self, factor: f64) -> Self {
        self.threshold_factor = factor;
        self
    }

    /// The baseline divergence.
    pub fn baseline_kl(&self) -> f64 {
        self.baseline_kl
    }

    /// Check the most recent latency samples for drift.
    pub fn check(&self, recent: &[f64]) -> DriftReport {
        let recent_kl = kl_divergence(&self.reference, recent, self.bins);
        let factor = recent_kl / self.baseline_kl;
        DriftReport {
            baseline_kl: self.baseline_kl,
            recent_kl,
            information_loss_factor: factor,
            drifted: factor > self.threshold_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn samples(rng: &mut StdRng, mean: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| mean + rng.gen_range(-spread..=spread))
            .collect()
    }

    #[test]
    fn kl_is_near_zero_for_similar_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = samples(&mut rng, 50.0, 5.0, 500);
        let b = samples(&mut rng, 50.0, 5.0, 500);
        let d = kl_divergence(&a, &b, 20);
        assert!(d < 0.2, "similar distributions should have low KL, got {d}");
    }

    #[test]
    fn kl_grows_when_distributions_shift() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = samples(&mut rng, 50.0, 5.0, 500);
        let near = samples(&mut rng, 52.0, 5.0, 500);
        let far = samples(&mut rng, 150.0, 5.0, 500);
        assert!(kl_divergence(&a, &far, 20) > kl_divergence(&a, &near, 20));
        assert!(kl_divergence(&a, &far, 20) > 1.0);
    }

    #[test]
    fn kl_handles_degenerate_inputs() {
        assert_eq!(kl_divergence(&[], &[1.0], 10), 0.0);
        assert_eq!(kl_divergence(&[1.0], &[], 10), 0.0);
        assert_eq!(kl_divergence(&[1.0], &[1.0], 0), 0.0);
        // Identical constant samples.
        let d = kl_divergence(&[5.0; 50], &[5.0; 50], 10);
        assert!(d.abs() < 1e-9);
    }

    #[test]
    fn detector_stays_quiet_without_drift() {
        let mut rng = StdRng::seed_from_u64(3);
        let reality = samples(&mut rng, 80.0, 8.0, 400);
        let approximation = samples(&mut rng, 82.0, 8.0, 400);
        let detector = DriftDetector::new(reality, &approximation);
        let recent_same = samples(&mut rng, 80.0, 8.0, 400);
        let report = detector.check(&recent_same);
        assert!(!report.drifted, "no drift expected, got {report:?}");
        assert!(report.information_loss_factor < 5.0);
    }

    #[test]
    fn detector_flags_a_latency_shift_like_figure17() {
        let mut rng = StdRng::seed_from_u64(4);
        // After migration: ~80 ms; the approximation was accurate.
        let reality = samples(&mut rng, 80.0, 8.0, 400);
        let approximation = samples(&mut rng, 81.0, 8.0, 400);
        let detector = DriftDetector::new(reality, &approximation);
        assert!(detector.baseline_kl() > 0.0);
        // New user behaviour: /compose latency jumps to ~160 ms.
        let recent_shifted = samples(&mut rng, 160.0, 10.0, 400);
        let report = detector.check(&recent_shifted);
        assert!(report.drifted);
        assert!(
            report.information_loss_factor > 10.0,
            "expected an order-of-magnitude information loss, got {}",
            report.information_loss_factor
        );
    }

    /// Regression test: with add-one smoothing, two *fully disjoint* small
    /// sample sets looked only mildly divergent (the 20 pseudo-counts held
    /// ~30 % of a 50-sample histogram's mass), capping the divergence well
    /// below what ε-smoothing reports.
    #[test]
    fn small_disjoint_windows_have_large_divergence() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = samples(&mut rng, 50.0, 5.0, 50);
        let b = samples(&mut rng, 100.0, 5.0, 50);
        let d = kl_divergence(&a, &b, 20);
        assert!(
            d > 3.0,
            "disjoint 50-sample windows should diverge strongly, got {d}"
        );
    }

    /// Regression test for the drift detector: a clearly shifted *small*
    /// recent window (50 samples, the first scrapes after a behaviour
    /// change) must flag drift at the default threshold factor. Add-one
    /// smoothing flattened small windows so much that this shift stayed
    /// below the 5× trigger.
    #[test]
    fn detector_flags_a_shifted_small_window_at_default_threshold() {
        let mut rng = StdRng::seed_from_u64(7);
        let reality = samples(&mut rng, 80.0, 20.0, 400);
        // The delay-injection estimate over-estimated the spread (the usual
        // case: the paper reports a baseline divergence of 0.47 for
        // /homeTimeline), so the baseline divergence is moderate, not tiny.
        let approximation = samples(&mut rng, 80.0, 38.0, 400);
        let detector = DriftDetector::new(reality, &approximation);
        let recent_small = samples(&mut rng, 160.0, 10.0, 50);
        let report = detector.check(&recent_small);
        assert!(
            report.drifted,
            "a doubled latency in a 50-sample window must trigger at the \
             default threshold, got {report:?}"
        );
    }

    #[test]
    fn threshold_factor_is_configurable() {
        let mut rng = StdRng::seed_from_u64(5);
        let reality = samples(&mut rng, 80.0, 8.0, 300);
        let approximation = samples(&mut rng, 81.0, 8.0, 300);
        let strict = DriftDetector::new(reality.clone(), &approximation).with_threshold_factor(0.5);
        let recent = samples(&mut rng, 85.0, 8.0, 300);
        assert!(
            strict.check(&recent).drifted,
            "a 0.5x threshold flags everything"
        );
        let lenient = DriftDetector::new(reality, &approximation).with_threshold_factor(1e9);
        assert!(!lenient.check(&recent).drifted);
    }
}
