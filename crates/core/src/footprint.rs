//! Network-footprint learning (paper §4.1.1, Eq. 1).
//!
//! Istio only reports the *aggregate* bytes exchanged between two components
//! across all APIs; Atlas needs per-API request/response sizes to inject the
//! right delay. Footprint learning recovers them by regressing the windowed
//! byte counters `U_{ci→cj}[t]` on the per-API invocation counts
//! `I^A_{ci→cj}[t]` derived from traces:
//!
//! ```text
//! argmin_d Σ_t ( U[t] − Σ_A I^A[t]·d^A )²      subject to d^A ≥ 0
//! ```
//!
//! One small non-negative least-squares problem is solved per directed edge
//! and direction (request / response), using projected gradient descent —
//! adequate because each problem has at most one unknown per API.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use atlas_telemetry::{Direction, TelemetryStore, Windowing};

/// The learned network footprint: per API, per directed component edge, the
/// average request and response payload sizes in bytes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkFootprint {
    /// `(api, from, to) → (request_bytes, response_bytes)`.
    entries: HashMap<(String, String, String), (f64, f64)>,
}

impl NetworkFootprint {
    /// An empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the learned sizes of an edge for an API.
    pub fn insert(
        &mut self,
        api: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
        request_bytes: f64,
        response_bytes: f64,
    ) {
        self.entries.insert(
            (api.into(), from.into(), to.into()),
            (request_bytes, response_bytes),
        );
    }

    /// The learned `(request, response)` sizes of an edge for an API, or
    /// `None` if the API never exercised that edge.
    pub fn get(&self, api: &str, from: &str, to: &str) -> Option<(f64, f64)> {
        self.entries
            .get(&(api.to_string(), from.to_string(), to.to_string()))
            .copied()
    }

    /// Like [`NetworkFootprint::get`] but falling back to zero-byte payloads.
    pub fn get_or_zero(&self, api: &str, from: &str, to: &str) -> (f64, f64) {
        self.get(api, from, to).unwrap_or((0.0, 0.0))
    }

    /// All edges known for an API.
    pub fn edges_of_api(&self, api: &str) -> Vec<(String, String, f64, f64)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter(|((a, _, _), _)| a == api)
            .map(|((_, f, t), &(req, resp))| (f.clone(), t.clone(), req, resp))
            .collect();
        v.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        v
    }

    /// Number of learned (api, edge) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expected bytes between a component pair per request of each API
    /// (request + response), used by the breach detector (§6).
    pub fn expected_bytes_per_request(&self, api: &str, from: &str, to: &str) -> f64 {
        let (req, resp) = self.get_or_zero(api, from, to);
        req + resp
    }

    /// Percentage accuracy of the learned footprint of one API against
    /// ground-truth sizes, as plotted in paper Figure 20. For every edge the
    /// accuracy is `100 · (1 − |est − real| / max(real, ε))`, averaged over
    /// request and response directions and over edges.
    pub fn accuracy_against(&self, api: &str, ground_truth: &[(String, String, f64, f64)]) -> f64 {
        if ground_truth.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for (from, to, real_req, real_resp) in ground_truth {
            let (est_req, est_resp) = self.get_or_zero(api, from, to);
            for (est, real) in [(est_req, *real_req), (est_resp, *real_resp)] {
                if real <= 1.0 {
                    continue; // ignore empty payloads (e.g. background acks)
                }
                let err = (est - real).abs() / real;
                total += (1.0 - err).max(0.0) * 100.0;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Learns [`NetworkFootprint`]s from a telemetry store.
#[derive(Debug, Clone, Copy)]
pub struct FootprintLearner {
    /// Window length in seconds used to align traffic and invocation counts
    /// (the paper uses 5-second windows).
    pub window_s: u64,
    /// Number of projected-gradient iterations per edge.
    pub iterations: usize,
}

impl Default for FootprintLearner {
    fn default() -> Self {
        Self {
            window_s: 5,
            iterations: 400,
        }
    }
}

impl FootprintLearner {
    /// Learn the footprint of every API on every observed edge.
    pub fn learn(&self, store: &TelemetryStore) -> NetworkFootprint {
        let mut footprint = NetworkFootprint::new();
        let windowing = Windowing::new(0, self.window_s);
        // Number of windows: derived from the latest trace/traffic timestamp.
        let window_count = self.window_count(store, &windowing);
        if window_count == 0 {
            return footprint;
        }

        for edge in store.traffic_edges() {
            let invocations = store.windowed_invocations(&edge, &windowing, window_count);
            if invocations.is_empty() {
                continue;
            }
            let apis: Vec<String> = {
                let mut v: Vec<String> = invocations.keys().cloned().collect();
                v.sort();
                v
            };
            let design: Vec<&Vec<f64>> = apis.iter().map(|a| &invocations[a]).collect();

            for direction in [Direction::Request, Direction::Response] {
                let observed = store.windowed_traffic(&edge, direction, &windowing, window_count);
                let sizes = solve_nnls(&design, &observed, self.iterations);
                for (api, size) in apis.iter().zip(sizes.iter()) {
                    let entry_key = (api.clone(), edge.from.clone(), edge.to.clone());
                    let (req, resp) = footprint
                        .entries
                        .get(&entry_key)
                        .copied()
                        .unwrap_or((0.0, 0.0));
                    let updated = match direction {
                        Direction::Request => (*size, resp),
                        Direction::Response => (req, *size),
                    };
                    footprint.entries.insert(entry_key, updated);
                }
            }
        }
        footprint
    }

    fn window_count(&self, store: &TelemetryStore, windowing: &Windowing) -> usize {
        // The latest trace timestamp is tracked incrementally at ingest; no
        // trace needs to be materialised (let alone all of them) to find it.
        let mut max_s = store.latest_trace_second().unwrap_or(0);
        let traffic = store.traffic();
        for edge in traffic.edges() {
            for dir in [Direction::Request, Direction::Response] {
                if let Some(samples) = traffic.samples(&edge, dir) {
                    if let Some(last) = samples.last() {
                        max_s = max_s.max(last.timestamp_s);
                    }
                }
            }
        }
        windowing.count_until(max_s + 1)
    }
}

/// Solve `min_d ||X·d − y||²` with `d ≥ 0` by projected gradient descent.
///
/// `design[k]` is the column of invocation counts of API `k` (one entry per
/// window); `observed` is the byte counter per window.
fn solve_nnls(design: &[&Vec<f64>], observed: &[f64], iterations: usize) -> Vec<f64> {
    let k = design.len();
    let t = observed.len();
    if k == 0 || t == 0 {
        return vec![0.0; k];
    }
    // Initial guess: ratio of totals, the "every API sends the average"
    // solution, which is already exact when only one API uses the edge.
    let mut d: Vec<f64> = design
        .iter()
        .map(|col| {
            let calls: f64 = col.iter().sum();
            let total: f64 = observed.iter().sum();
            let all_calls: f64 = design.iter().map(|c| c.iter().sum::<f64>()).sum();
            if calls > 0.0 && all_calls > 0.0 {
                total / all_calls
            } else {
                0.0
            }
        })
        .collect();

    // Lipschitz-ish step size from the squared column norms.
    let norm: f64 = design
        .iter()
        .map(|col| col.iter().map(|x| x * x).sum::<f64>())
        .sum::<f64>()
        .max(1e-9);
    let step = 1.0 / norm;

    let mut residual = vec![0.0; t];
    for _ in 0..iterations {
        // residual = X·d − y
        for (i, r) in residual.iter_mut().enumerate() {
            let mut pred = 0.0;
            for (j, col) in design.iter().enumerate() {
                pred += col[i] * d[j];
            }
            *r = pred - observed[i];
        }
        // gradient_j = Σ_i X[i][j] · residual[i]
        let mut max_update = 0.0f64;
        for (j, col) in design.iter().enumerate() {
            let grad: f64 = col.iter().zip(residual.iter()).map(|(x, r)| x * r).sum();
            let new = (d[j] - step * grad).max(0.0);
            max_update = max_update.max((new - d[j]).abs());
            d[j] = new;
        }
        if max_update < 1e-9 {
            break;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_telemetry::{Span, SpanId, Trace, TraceId};

    /// Build a store where two APIs share the Frontend→Service edge with
    /// different request sizes (A sends 100 B, B sends 500 B) and
    /// non-collinear request mixes across windows.
    fn two_api_store() -> TelemetryStore {
        let store = TelemetryStore::new();
        let mut next_id = 0u64;
        let mut make_trace = |api: &str, at_s: u64| {
            next_id += 1;
            let t = TraceId(next_id);
            let start = at_s * 1_000_000;
            let spans = vec![
                Span::new(t, SpanId(next_id * 10), None, "Frontend", api, start, 5_000),
                Span::new(
                    t,
                    SpanId(next_id * 10 + 1),
                    Some(SpanId(next_id * 10)),
                    "Service",
                    "op",
                    start + 500,
                    3_000,
                ),
            ];
            Trace::from_spans(spans).unwrap()
        };
        // Window 0 (0-4s): 3×A, 1×B. Window 1 (5-9s): 1×A, 4×B.
        // Window 2 (10-14s): 2×A, 2×B.
        let mix = [(0u64, 3usize, 1usize), (5, 1, 4), (10, 2, 2)];
        for (base_s, a_count, b_count) in mix {
            let mut req_bytes = 0.0;
            for i in 0..a_count {
                store.ingest_trace(make_trace("/a", base_s + (i as u64 % 5)));
                req_bytes += 100.0;
            }
            for i in 0..b_count {
                store.ingest_trace(make_trace("/b", base_s + (i as u64 % 5)));
                req_bytes += 500.0;
            }
            store.record_traffic("Frontend", "Service", Direction::Request, base_s, req_bytes);
            store.record_traffic(
                "Frontend",
                "Service",
                Direction::Response,
                base_s,
                (a_count as f64) * 40.0 + (b_count as f64) * 250.0,
            );
        }
        store
    }

    #[test]
    fn recovers_per_api_sizes_from_aggregates() {
        let store = two_api_store();
        let footprint = FootprintLearner::default().learn(&store);
        let (a_req, a_resp) = footprint.get("/a", "Frontend", "Service").unwrap();
        let (b_req, b_resp) = footprint.get("/b", "Frontend", "Service").unwrap();
        assert!(
            (a_req - 100.0).abs() < 20.0,
            "A request ≈ 100 B, got {a_req}"
        );
        assert!(
            (b_req - 500.0).abs() < 40.0,
            "B request ≈ 500 B, got {b_req}"
        );
        assert!(
            (a_resp - 40.0).abs() < 15.0,
            "A response ≈ 40 B, got {a_resp}"
        );
        assert!(
            (b_resp - 250.0).abs() < 25.0,
            "B response ≈ 250 B, got {b_resp}"
        );
    }

    #[test]
    fn footprint_accuracy_metric_reflects_the_fit() {
        let store = two_api_store();
        let footprint = FootprintLearner::default().learn(&store);
        let truth_a = vec![("Frontend".to_string(), "Service".to_string(), 100.0, 40.0)];
        let acc = footprint.accuracy_against("/a", &truth_a);
        assert!(acc > 80.0, "accuracy should be high, got {acc}");
        // A deliberately wrong ground truth scores poorly.
        let wrong = vec![(
            "Frontend".to_string(),
            "Service".to_string(),
            10_000.0,
            9_000.0,
        )];
        assert!(footprint.accuracy_against("/a", &wrong) < 30.0);
        assert_eq!(footprint.accuracy_against("/a", &[]), 0.0);
    }

    #[test]
    fn learning_from_an_empty_store_yields_empty_footprint() {
        let footprint = FootprintLearner::default().learn(&TelemetryStore::new());
        assert!(footprint.is_empty());
        assert_eq!(footprint.len(), 0);
        assert_eq!(footprint.get_or_zero("/a", "X", "Y"), (0.0, 0.0));
    }

    #[test]
    fn edges_of_api_lists_learned_edges() {
        let store = two_api_store();
        let footprint = FootprintLearner::default().learn(&store);
        let edges = footprint.edges_of_api("/a");
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].0, "Frontend");
        assert_eq!(edges[0].1, "Service");
        assert!(footprint.edges_of_api("/nothing").is_empty());
    }

    #[test]
    fn nnls_handles_single_api_exactly() {
        let col = vec![2.0, 4.0, 1.0];
        let observed: Vec<f64> = col.iter().map(|c| c * 300.0).collect();
        let d = solve_nnls(&[&col], &observed, 500);
        assert!((d[0] - 300.0).abs() < 1.0);
    }

    #[test]
    fn nnls_never_returns_negative_sizes() {
        // Observed traffic is smaller than any consistent solution; the
        // estimates must stay non-negative.
        let a = vec![1.0, 0.0, 2.0];
        let b = vec![0.0, 3.0, 1.0];
        let observed = vec![0.0, 0.0, 0.0];
        let d = solve_nnls(&[&a, &b], &observed, 300);
        assert!(d.iter().all(|&x| x >= 0.0));
        assert!(d.iter().all(|&x| x < 1.0));
    }

    #[test]
    fn manual_insert_and_per_request_expectation() {
        let mut fp = NetworkFootprint::new();
        fp.insert("/x", "A", "B", 120.0, 30.0);
        assert_eq!(fp.get("/x", "A", "B"), Some((120.0, 30.0)));
        assert_eq!(fp.expected_bytes_per_request("/x", "A", "B"), 150.0);
        assert_eq!(fp.expected_bytes_per_request("/x", "A", "C"), 0.0);
        assert_eq!(fp.len(), 1);
    }
}
