//! Footprint-based anomaly detection (paper §6, Figure 22).
//!
//! The learned network footprints say how many bytes a component pair
//! *should* exchange to serve the API traffic the application actually
//! received. Reconstructing the expected traffic from the per-API request
//! counts and comparing it with the observed counters exposes exfiltration:
//! a data breach shows up as observed traffic far above what the served
//! API requests can justify.

use serde::{Deserialize, Serialize};

use atlas_telemetry::{Direction, PairKey, TelemetryStore, Windowing};

use crate::footprint::NetworkFootprint;

/// One monitored window on one edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// Index of the window.
    pub window: usize,
    /// Bytes expected from the footprints and the API request counts.
    pub expected_bytes: f64,
    /// Bytes observed by the network metrics.
    pub observed_bytes: f64,
    /// Whether this window is flagged as anomalous.
    pub anomalous: bool,
}

/// Report of one breach check on one directed edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreachReport {
    /// The monitored edge.
    pub from: String,
    /// The monitored edge.
    pub to: String,
    /// Per-window comparison.
    pub windows: Vec<WindowObservation>,
}

impl BreachReport {
    /// Whether any window was flagged.
    pub fn breach_detected(&self) -> bool {
        self.windows.iter().any(|w| w.anomalous)
    }

    /// Indices of the flagged windows.
    pub fn anomalous_windows(&self) -> Vec<usize> {
        self.windows
            .iter()
            .filter(|w| w.anomalous)
            .map(|w| w.window)
            .collect()
    }

    /// Total unexplained bytes (observed − expected, clamped at zero).
    pub fn unexplained_bytes(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| (w.observed_bytes - w.expected_bytes).max(0.0))
            .sum()
    }
}

/// Detects traffic that the served API requests cannot justify.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreachDetector {
    /// Window length (seconds) used for the comparison.
    pub window_s: u64,
    /// Multiplicative tolerance: a window is anomalous when
    /// `observed > tolerance_factor · expected + absolute_slack_bytes`.
    pub tolerance_factor: f64,
    /// Absolute slack added to the expectation (absorbs keep-alive chatter).
    pub absolute_slack_bytes: f64,
}

impl Default for BreachDetector {
    fn default() -> Self {
        Self {
            window_s: 60,
            tolerance_factor: 1.5,
            absolute_slack_bytes: 10_000.0,
        }
    }
}

impl BreachDetector {
    /// Check one directed edge over `[0, horizon_s)` using the footprints
    /// and the API request counts recorded in the store.
    pub fn check_edge(
        &self,
        store: &TelemetryStore,
        footprint: &NetworkFootprint,
        from: &str,
        to: &str,
        horizon_s: u64,
    ) -> BreachReport {
        let windowing = Windowing::new(0, self.window_s);
        let window_count = windowing.count_until(horizon_s).max(1);
        let pair = PairKey::new(from, to);
        let observed_req =
            store.windowed_traffic(&pair, Direction::Request, &windowing, window_count);
        let observed_resp =
            store.windowed_traffic(&pair, Direction::Response, &windowing, window_count);

        let mut windows = Vec::with_capacity(window_count);
        for w in 0..window_count {
            let start_s = w as u64 * self.window_s;
            let end_s = start_s + self.window_s;
            let api_counts = store.api_request_counts_in(start_s, end_s);
            let mut expected = 0.0;
            for (api, count) in &api_counts {
                expected += footprint.expected_bytes_per_request(api, from, to) * *count as f64;
            }
            let observed = observed_req[w] + observed_resp[w];
            let anomalous = observed > self.tolerance_factor * expected + self.absolute_slack_bytes;
            windows.push(WindowObservation {
                window: w,
                expected_bytes: expected,
                observed_bytes: observed,
                anomalous,
            });
        }
        BreachReport {
            from: from.to_string(),
            to: to.to_string(),
            windows,
        }
    }

    /// Check every edge the footprint knows about and return the reports
    /// that flagged at least one window.
    pub fn scan(
        &self,
        store: &TelemetryStore,
        footprint: &NetworkFootprint,
        horizon_s: u64,
    ) -> Vec<BreachReport> {
        store
            .traffic_edges()
            .into_iter()
            .map(|edge| self.check_edge(store, footprint, &edge.from, &edge.to, horizon_s))
            .filter(BreachReport::breach_detected)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_telemetry::{Span, SpanId, Trace, TraceId};

    /// Store with a steady /read API (Service → MongoDB, ~1 KB per request)
    /// plus, in the breach scenario, a large unexplained transfer in the
    /// third minute.
    fn build_store(with_breach: bool) -> (TelemetryStore, NetworkFootprint) {
        let store = TelemetryStore::new();
        let mut id = 0u64;
        for minute in 0..5u64 {
            for i in 0..20u64 {
                id += 1;
                let start = (minute * 60 + i * 3) * 1_000_000;
                let t = TraceId(id);
                let spans = vec![
                    Span::new(t, SpanId(id * 10), None, "Service", "/read", start, 4_000),
                    Span::new(
                        t,
                        SpanId(id * 10 + 1),
                        Some(SpanId(id * 10)),
                        "MongoDB",
                        "find",
                        start + 500,
                        2_000,
                    ),
                ];
                store.ingest_trace(Trace::from_spans(spans).unwrap());
                store.record_traffic(
                    "Service",
                    "MongoDB",
                    Direction::Request,
                    minute * 60 + i * 3,
                    200.0,
                );
                store.record_traffic(
                    "Service",
                    "MongoDB",
                    Direction::Response,
                    minute * 60 + i * 3,
                    800.0,
                );
            }
            if with_breach && minute == 2 {
                // 50 MB copied out of the database, unrelated to any API.
                store.record_traffic(
                    "Service",
                    "MongoDB",
                    Direction::Response,
                    minute * 60 + 59,
                    5.0e7,
                );
            }
        }
        let mut footprint = NetworkFootprint::new();
        footprint.insert("/read", "Service", "MongoDB", 200.0, 800.0);
        (store, footprint)
    }

    #[test]
    fn normal_traffic_is_not_flagged() {
        let (store, footprint) = build_store(false);
        let report =
            BreachDetector::default().check_edge(&store, &footprint, "Service", "MongoDB", 300);
        assert!(!report.breach_detected(), "no breach expected: {report:?}");
        assert!(report.anomalous_windows().is_empty());
        // Expected and observed roughly agree per window.
        for w in &report.windows {
            assert!(w.observed_bytes <= 1.5 * w.expected_bytes + 10_000.0);
            assert!(w.expected_bytes > 0.0);
        }
    }

    #[test]
    fn exfiltration_is_flagged_in_the_right_window() {
        let (store, footprint) = build_store(true);
        let detector = BreachDetector::default();
        let report = detector.check_edge(&store, &footprint, "Service", "MongoDB", 300);
        assert!(report.breach_detected());
        assert_eq!(report.anomalous_windows(), vec![2]);
        assert!(report.unexplained_bytes() > 4.0e7);

        let flagged = detector.scan(&store, &footprint, 300);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].to, "MongoDB");
    }

    #[test]
    fn unknown_edges_have_zero_expectation_and_tolerate_slack() {
        let (store, footprint) = build_store(false);
        let detector = BreachDetector::default();
        let report = detector.check_edge(&store, &footprint, "Ghost", "MongoDB", 300);
        assert!(
            !report.breach_detected(),
            "no observed traffic, nothing to flag"
        );
        assert!(report.windows.iter().all(|w| w.expected_bytes == 0.0));
    }

    #[test]
    fn tolerance_parameters_control_sensitivity() {
        let (store, footprint) = build_store(true);
        let paranoid = BreachDetector {
            tolerance_factor: 1.01,
            absolute_slack_bytes: 0.0,
            ..BreachDetector::default()
        };
        // Paranoid settings may flag extra windows but must include the breach.
        assert!(paranoid
            .check_edge(&store, &footprint, "Service", "MongoDB", 300)
            .anomalous_windows()
            .contains(&2));
        let oblivious = BreachDetector {
            tolerance_factor: 1e6,
            ..BreachDetector::default()
        };
        assert!(!oblivious
            .check_edge(&store, &footprint, "Service", "MongoDB", 300)
            .breach_detected());
    }
}
