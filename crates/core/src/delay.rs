//! Delay injection: estimating post-migration API latency from existing
//! traces (paper §4.1.1, Figure 6).
//!
//! Given a trace collected under the current placement, a candidate plan and
//! the learned network footprint, the injector replays the trace's execution
//! workflow and shifts span timestamps by the extra (or saved) network delay
//! `Δ` (Eq. 2) on every caller→callee hop whose endpoints' relative location
//! changes. Downstream operations cascade: sequential successors start
//! later, parallel siblings shift independently, and background operations
//! never extend the end-to-end latency.

use atlas_sim::{NetworkModel, Placement, SiteId, SiteNetwork};
use atlas_telemetry::{Micros, Trace};

use crate::footprint::NetworkFootprint;

/// Estimates post-migration latencies by replaying traces with injected
/// delays.
///
/// The injector works over an N-site [`SiteNetwork`]; the paper's two-site
/// world is the [`DelayInjector::new`] constructor, whose 2×2 conversion
/// reproduces the binary [`NetworkModel`] arithmetic bit for bit.
#[derive(Debug, Clone)]
pub struct DelayInjector {
    network: SiteNetwork,
    /// Component name → index used by the placements.
    component_index: Vec<String>,
}

impl DelayInjector {
    /// Create a two-site injector for an application whose components are
    /// indexed by `component_index` (the same order used by [`Placement`]).
    pub fn new(network: NetworkModel, component_index: Vec<String>) -> Self {
        Self::with_site_network(SiteNetwork::two_site(network), component_index)
    }

    /// Create an injector over an N-site link matrix.
    pub fn with_site_network(network: SiteNetwork, component_index: Vec<String>) -> Self {
        Self {
            network,
            component_index,
        }
    }

    /// The per-ordered-pair link model delays are injected against (used by
    /// the compiled evaluation kernel to bake per-hop link costs at compile
    /// time).
    pub fn site_network(&self) -> &SiteNetwork {
        &self.network
    }

    /// The component index the injector resolves span names against.
    pub fn component_index(&self) -> &[String] {
        &self.component_index
    }

    fn site_of(&self, placement: &Placement, component: &str) -> SiteId {
        match self.component_index.iter().position(|c| c == component) {
            Some(i) => placement.site(atlas_sim::ComponentId(i)),
            // Unknown components (e.g. external clients) are treated as
            // collocated with the on-prem entry point.
            None => SiteId::ON_PREM,
        }
    }

    /// The delay delta Δ (µs) of one caller→callee exchange when moving from
    /// `current` to `candidate` placement (Eq. 2).
    fn delta_us(
        &self,
        api: &str,
        caller: &str,
        callee: &str,
        footprint: &NetworkFootprint,
        current: &Placement,
        candidate: &Placement,
    ) -> f64 {
        let (req, resp) = footprint.get_or_zero(api, caller, callee);
        self.network.delay_delta_us(
            self.site_of(current, caller),
            self.site_of(current, callee),
            self.site_of(candidate, caller),
            self.site_of(candidate, callee),
            req,
            resp,
        )
    }

    /// Estimate the end-to-end latency (ms) of one trace under `candidate`.
    pub fn estimate_trace_latency_ms(
        &self,
        trace: &Trace,
        footprint: &NetworkFootprint,
        current: &Placement,
        candidate: &Placement,
    ) -> f64 {
        let api = trace.api();
        let root_start = trace.root().start_us;
        let new_end = self.inject(
            trace,
            0,
            root_start as f64,
            api,
            footprint,
            current,
            candidate,
        );
        (new_end - root_start as f64).max(0.0) / 1_000.0
    }

    /// Estimate the mean post-migration latency (ms) of an API from a set of
    /// its traces (the paper repeats delay injection over ~100 traces and
    /// uses the average).
    pub fn estimate_api_latency_ms(
        &self,
        traces: &[Trace],
        footprint: &NetworkFootprint,
        current: &Placement,
        candidate: &Placement,
    ) -> f64 {
        if traces.is_empty() {
            return 0.0;
        }
        traces
            .iter()
            .map(|t| self.estimate_trace_latency_ms(t, footprint, current, candidate))
            .sum::<f64>()
            / traces.len() as f64
    }

    /// Weighted mean post-migration latency (ms) of an API: each trace is a
    /// clustered representative standing for `weights[i]` raw traces, so the
    /// mean is `Σ wᵢ·latᵢ / Σ wᵢ`. With an empty (or all-ones) weight slice
    /// this reproduces [`DelayInjector::estimate_api_latency_ms`] bit for
    /// bit, which is what keeps the compiled kernel and this interpretive
    /// oracle exactly aligned on unclustered profiles.
    pub fn estimate_api_latency_ms_weighted(
        &self,
        traces: &[Trace],
        weights: &[f64],
        footprint: &NetworkFootprint,
        current: &Placement,
        candidate: &Placement,
    ) -> f64 {
        if traces.is_empty() {
            return 0.0;
        }
        if weights.is_empty() {
            return self.estimate_api_latency_ms(traces, footprint, current, candidate);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, t) in traces.iter().enumerate() {
            let w = weights.get(i).copied().unwrap_or(1.0);
            num += w * self.estimate_trace_latency_ms(t, footprint, current, candidate);
            den += w;
        }
        num / den
    }

    /// The estimated latency distribution (ms, one sample per trace), used
    /// for the drift-detection baseline (Figure 7 / §4.3).
    pub fn estimate_latency_distribution_ms(
        &self,
        traces: &[Trace],
        footprint: &NetworkFootprint,
        current: &Placement,
        candidate: &Placement,
    ) -> Vec<f64> {
        traces
            .iter()
            .map(|t| self.estimate_trace_latency_ms(t, footprint, current, candidate))
            .collect()
    }

    /// Recursively re-time the subtree rooted at `node`, starting it at
    /// `new_start` (µs, fractional), and return the new end time of its
    /// foreground work.
    #[allow(clippy::too_many_arguments)]
    fn inject(
        &self,
        trace: &Trace,
        node: usize,
        new_start: f64,
        api: &str,
        footprint: &NetworkFootprint,
        current: &Placement,
        candidate: &Placement,
    ) -> f64 {
        let span = &trace.nodes[node].span;
        let orig_start = span.start_us as f64;
        let orig_end = span.end_us() as f64;

        // Partition children into foreground and background, keeping the
        // original start order (children are already sorted by start time).
        let children = &trace.nodes[node].children;
        let foreground: Vec<usize> = children
            .iter()
            .copied()
            .filter(|&c| !trace.is_background(c))
            .collect();
        let background: Vec<usize> = children
            .iter()
            .copied()
            .filter(|&c| trace.is_background(c))
            .collect();

        // Group foreground children into sequential "waves" of parallel
        // siblings: a child joins the current wave if it starts before the
        // wave's latest end so far (i.e. it overlaps the wave).
        let mut waves: Vec<Vec<usize>> = Vec::new();
        let mut wave_end = f64::NEG_INFINITY;
        for &c in &foreground {
            let cs = trace.nodes[c].span.start_us as f64;
            let ce = trace.nodes[c].span.end_us() as f64;
            if waves.is_empty() || cs >= wave_end {
                waves.push(vec![c]);
                wave_end = ce;
            } else {
                waves.last_mut().expect("non-empty").push(c);
                wave_end = wave_end.max(ce);
            }
        }

        let mut prev_end_orig = orig_start;
        let mut prev_end_new = new_start;

        for wave in &waves {
            let wave_orig_start = wave
                .iter()
                .map(|&c| trace.nodes[c].span.start_us as f64)
                .fold(f64::INFINITY, f64::min);
            // Time the parent spent before triggering this wave.
            let gap = (wave_orig_start - prev_end_orig).max(0.0);
            let wave_new_base = prev_end_new + gap;

            let mut wave_end_orig = prev_end_orig;
            let mut wave_end_new = prev_end_new;
            for &c in wave {
                let child_span = &trace.nodes[c].span;
                let child_orig_start = child_span.start_us as f64;
                let delta = self.delta_us(
                    api,
                    &span.component,
                    &child_span.component,
                    footprint,
                    current,
                    candidate,
                );
                let child_new_start = wave_new_base + (child_orig_start - wave_orig_start) + delta;
                let child_new_end = self.inject(
                    trace,
                    c,
                    child_new_start,
                    api,
                    footprint,
                    current,
                    candidate,
                );
                wave_end_orig = wave_end_orig.max(child_span.end_us() as f64);
                wave_end_new = wave_end_new.max(child_new_end);
            }
            prev_end_orig = wave_end_orig;
            prev_end_new = wave_end_new;
        }

        // Background children: re-timed for completeness (their own spans
        // shift) but they do not extend the parent's foreground end.
        for &c in &background {
            let child_span = &trace.nodes[c].span;
            let delta = self.delta_us(
                api,
                &span.component,
                &child_span.component,
                footprint,
                current,
                candidate,
            );
            let gap = (child_span.start_us as f64 - prev_end_orig).max(0.0);
            let child_new_start = prev_end_new + gap + delta;
            let _ = self.inject(
                trace,
                c,
                child_new_start,
                api,
                footprint,
                current,
                candidate,
            );
        }

        // The parent's trailing own-compute after its last foreground wave.
        prev_end_new + (orig_end - prev_end_orig).max(0.0)
    }

    /// Convenience: new latency (µs) of a single trace.
    pub fn estimate_trace_latency_us(
        &self,
        trace: &Trace,
        footprint: &NetworkFootprint,
        current: &Placement,
        candidate: &Placement,
    ) -> Micros {
        (self.estimate_trace_latency_ms(trace, footprint, current, candidate) * 1_000.0).round()
            as Micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_sim::ComponentId;
    use atlas_telemetry::{Span, SpanId, TraceId};

    /// The Figure 6 trace: Frontend(0..10000) with URLShorten(1000..3000) ∥
    /// Media(1200..4000), then PostStorage(4500..6500), then background
    /// WriteHomeTimeline(7000..15000); root ends at 10000.
    fn figure6_trace() -> Trace {
        let t = TraceId(1);
        let spans = vec![
            Span::new(t, SpanId(0), None, "Frontend", "/composeAPI", 0, 10_000),
            Span::new(
                t,
                SpanId(1),
                Some(SpanId(0)),
                "URLShorten",
                "shorten",
                1_000,
                2_000,
            ),
            Span::new(
                t,
                SpanId(2),
                Some(SpanId(0)),
                "Media",
                "filter",
                1_200,
                2_800,
            ),
            Span::new(
                t,
                SpanId(3),
                Some(SpanId(0)),
                "PostStorage",
                "store",
                4_500,
                2_000,
            ),
            Span::new(
                t,
                SpanId(4),
                Some(SpanId(0)),
                "WriteHomeTimeline",
                "fanout",
                7_000,
                8_000,
            ),
        ];
        Trace::from_spans(spans).unwrap()
    }

    fn injector() -> DelayInjector {
        DelayInjector::new(
            NetworkModel::default(),
            vec![
                "Frontend".to_string(),
                "URLShorten".to_string(),
                "Media".to_string(),
                "PostStorage".to_string(),
                "WriteHomeTimeline".to_string(),
            ],
        )
    }

    fn footprint() -> NetworkFootprint {
        let mut fp = NetworkFootprint::new();
        fp.insert("/composeAPI", "Frontend", "URLShorten", 300.0, 60.0);
        fp.insert("/composeAPI", "Frontend", "Media", 5_000.0, 100.0);
        fp.insert("/composeAPI", "Frontend", "PostStorage", 1_200.0, 80.0);
        fp.insert("/composeAPI", "Frontend", "WriteHomeTimeline", 900.0, 0.0);
        fp
    }

    #[test]
    fn identity_plan_preserves_latency() {
        let trace = figure6_trace();
        let inj = injector();
        let current = Placement::all_onprem(5);
        let est = inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &current);
        assert!(
            (est - 10.0).abs() < 1e-6,
            "identity injection must be exact, got {est}"
        );
    }

    #[test]
    fn offloading_background_component_does_not_change_latency() {
        let trace = figure6_trace();
        let inj = injector();
        let current = Placement::all_onprem(5);
        let candidate = Placement::all_onprem(5).with_cloud(ComponentId(4));
        let est = inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &candidate);
        assert!(
            (est - 10.0).abs() < 1e-6,
            "background offload must be free, got {est}"
        );
    }

    #[test]
    fn offloading_sequential_component_adds_a_round_trip() {
        let trace = figure6_trace();
        let inj = injector();
        let current = Placement::all_onprem(5);
        let candidate = Placement::all_onprem(5).with_cloud(ComponentId(3));
        let est = inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &candidate);
        // Inter-DC RTT ≈ 2 × 23.015 ms ≈ 46 ms on top of the original 10 ms.
        assert!(
            est > 50.0,
            "sequential offload must add ≈ one RTT, got {est}"
        );
        assert!(est < 70.0, "only one exchange crosses the WAN, got {est}");
    }

    #[test]
    fn offloading_the_shorter_parallel_branch_is_cheaper_than_the_critical_one() {
        let trace = figure6_trace();
        let inj = injector();
        let current = Placement::all_onprem(5);
        // URLShorten (ends at 3000) hides behind Media (ends at 4000):
        // offloading it only costs the delay exceeding the 1000 µs of slack.
        let offload_url = Placement::all_onprem(5).with_cloud(ComponentId(1));
        let offload_media = Placement::all_onprem(5).with_cloud(ComponentId(2));
        let est_url = inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &offload_url);
        let est_media =
            inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &offload_media);
        assert!(
            est_media > est_url,
            "offloading the critical parallel branch ({est_media}) must hurt more than the hidden one ({est_url})"
        );
    }

    #[test]
    fn moving_both_endpoints_to_the_cloud_keeps_them_collocated() {
        let trace = figure6_trace();
        let inj = injector();
        let current = Placement::all_onprem(5);
        // Moving the Frontend itself to the cloud keeps the Frontend→child
        // links fast only for children that also moved.
        let all_cloud = Placement::all_cloud(5);
        let est = inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &all_cloud);
        assert!(
            (est - 10.0).abs() < 1e-6,
            "fully-cloud placement has no WAN hop, got {est}"
        );
    }

    #[test]
    fn distribution_has_one_sample_per_trace() {
        let traces = vec![figure6_trace(), figure6_trace(), figure6_trace()];
        let inj = injector();
        let current = Placement::all_onprem(5);
        let candidate = Placement::all_onprem(5).with_cloud(ComponentId(3));
        let dist =
            inj.estimate_latency_distribution_ms(&traces, &footprint(), &current, &candidate);
        assert_eq!(dist.len(), 3);
        assert!(
            (dist[0] - dist[1]).abs() < 1e-9,
            "identical traces, identical estimates"
        );
        let mean = inj.estimate_api_latency_ms(&traces, &footprint(), &current, &candidate);
        assert!((mean - dist[0]).abs() < 1e-9);
        assert_eq!(
            inj.estimate_api_latency_ms(&[], &footprint(), &current, &candidate),
            0.0
        );
    }

    #[test]
    fn unknown_components_default_to_onprem() {
        let trace = figure6_trace();
        // The injector only knows about a subset of the components.
        let inj = DelayInjector::new(NetworkModel::default(), vec!["Frontend".to_string()]);
        let current = Placement::all_onprem(1);
        let est = inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &current);
        assert!((est - 10.0).abs() < 1e-6);
    }

    #[test]
    fn us_and_ms_estimates_agree() {
        let trace = figure6_trace();
        let inj = injector();
        let current = Placement::all_onprem(5);
        let candidate = Placement::all_onprem(5).with_cloud(ComponentId(3));
        let ms = inj.estimate_trace_latency_ms(&trace, &footprint(), &current, &candidate);
        let us = inj.estimate_trace_latency_us(&trace, &footprint(), &current, &candidate);
        assert!((ms * 1_000.0 - us as f64).abs() < 1.0);
    }
}
