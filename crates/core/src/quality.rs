//! Migration-quality modeling: `Q_Perf`, `Q_Avai`, `Q_Cost` and the
//! feasibility constraints of Eq. 4.
//!
//! Scoring is two-tier since PR 4: [`QualityModel::new`] compiles the
//! learned traces into a [`CompiledQuality`] kernel (see [`crate::kernel`]) and every hot entry point — `evaluate`,
//! `performance`, `availability`, `cost`, `is_feasible`,
//! `estimate_api_latency_ms` — scores through it, allocation-free. The
//! original interpretive implementations remain available as
//! `*_interpretive` reference oracles; property tests pin the two paths
//! bit-identical.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use atlas_cloud::{CompiledCost, CostModel, ResourceDemand, SiteCostModel};
use atlas_sim::{Placement, SiteCatalog, SiteId};

use crate::delay::DelayInjector;
use crate::footprint::NetworkFootprint;
use crate::kernel::{with_scratch, CompiledQuality, EvalScratch, ScoredTrace};
use crate::plan::MigrationPlan;
use crate::preferences::MigrationPreferences;
use crate::profile::ApplicationProfile;

/// The three quality indicators of one plan, plus its feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanQuality {
    /// `Q_Perf`: weighted mean latency ratio (new / current) across APIs;
    /// 1.0 means "as fast as today", larger is worse.
    pub performance: f64,
    /// `Q_Avai`: weighted number of APIs disrupted by the migration.
    pub availability: f64,
    /// `Q_Cost`: cloud hosting cost (dollars) over the demand horizon.
    pub cost: f64,
    /// Whether the plan satisfies all constraints of Eq. 4 (`λ(p)`).
    pub feasible: bool,
}

impl PlanQuality {
    /// The objective vector `[Q_Perf, Q_Avai, Q_Cost]` used by NSGA-II.
    ///
    /// Returns a fixed-size array (API change in PR 4: previously a
    /// `Vec<f64>`) so the O(N²) dominance loops of `atlas-ga` compare
    /// objectives without a heap allocation per population member; the GA
    /// entry points are generic over `AsRef<[f64]>` and accept it directly.
    pub fn objectives(&self) -> [f64; 3] {
        [self.performance, self.availability, self.cost]
    }
}

/// A fully evaluated plan with the per-trace state the delta path reuses:
/// the plan's site assignment, one retained [`ScoredTrace`] per compiled
/// trace, and the plan's [`PlanQuality`]. Produced by
/// [`QualityModel::evaluate_scored`] and advanced by
/// [`QualityModel::evaluate_delta`].
#[derive(Debug, Clone)]
pub struct ScoredPlan {
    sites: Vec<SiteId>,
    traces: Vec<ScoredTrace>,
    quality: PlanQuality,
}

impl ScoredPlan {
    /// A member without retained per-trace state: `traces` is empty, so
    /// this plan can anchor tournaments and fronts but never serve as a
    /// delta parent ([`QualityModel::evaluate_delta`] needs the full
    /// per-trace vector). Used for cache-hit offspring — their quality is
    /// known but the memo cache stores only [`PlanQuality`] — and for the
    /// delta-off search mode.
    pub fn quality_only(sites: Vec<SiteId>, quality: PlanQuality) -> Self {
        Self {
            sites,
            traces: Vec::new(),
            quality,
        }
    }

    /// The plan's site assignment, indexed like the component index.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// The retained per-trace latencies (flat, API-major in the kernel's
    /// compiled order).
    pub fn traces(&self) -> &[ScoredTrace] {
        &self.traces
    }

    /// The plan's quality indicators.
    pub fn quality(&self) -> PlanQuality {
        self.quality
    }
}

/// Models the quality of candidate plans without executing them.
#[derive(Debug, Clone)]
pub struct QualityModel {
    profile: ApplicationProfile,
    footprint: NetworkFootprint,
    injector: DelayInjector,
    cost_model: SiteCostModel,
    demand: ResourceDemand,
    preferences: MigrationPreferences,
    current: Placement,
    /// Component names in plan-index order.
    component_index: Vec<String>,
    /// Current mean latency per API (ms), the denominator of `Q_Perf`.
    baseline_latency_ms: HashMap<String, f64>,
    /// API endpoints in sorted order: the deterministic summation order of
    /// `Q_Perf`/`Q_Avai`, shared by the kernel and the interpretive path.
    api_order: Vec<String>,
    /// The compiled evaluation kernel (see [`crate::kernel`]).
    kernel: CompiledQuality,
    /// The cost model pre-bound to `demand` (edge totals and step-major
    /// resource columns hoisted); bit-identical to `cost_model`, used by
    /// every kernel scoring path. [`Self::cost_interpretive`] and
    /// [`Self::feasibility`] stay on the uncompiled oracle.
    cost_kernel: CompiledCost,
}

impl QualityModel {
    /// Assemble a two-site quality model (the paper's binary world): one
    /// cloud priced by `cost_model`, links from the injector's network.
    ///
    /// `component_index` defines the component ordering used by plans and by
    /// the demand; `current` is the placement the application runs under
    /// today (all on-prem in the paper's experiments). For an N-site model
    /// over a [`SiteCatalog`] use [`QualityModel::for_catalog`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        profile: ApplicationProfile,
        footprint: NetworkFootprint,
        injector: DelayInjector,
        cost_model: CostModel,
        demand: ResourceDemand,
        preferences: MigrationPreferences,
        current: Placement,
        component_index: Vec<String>,
    ) -> Self {
        Self::assemble(
            profile,
            footprint,
            injector,
            SiteCostModel::from_models(vec![None, Some(cost_model)]),
            demand,
            preferences,
            current,
            component_index,
        )
    }

    /// Assemble an N-site quality model over a [`SiteCatalog`]: the delay
    /// injector replays traces against the catalog's per-ordered-pair
    /// links, and `Q_Cost` bills every elastic site under its own pricing.
    ///
    /// A 2-entry catalog with default parameters
    /// ([`SiteCatalog::default`]) scores bit-identically to the two-site
    /// [`QualityModel::new`] constructor — pinned by regression test.
    #[allow(clippy::too_many_arguments)]
    pub fn for_catalog(
        profile: ApplicationProfile,
        footprint: NetworkFootprint,
        catalog: &SiteCatalog,
        demand: ResourceDemand,
        preferences: MigrationPreferences,
        current: Placement,
        component_index: Vec<String>,
    ) -> Self {
        let mut model = Self::assemble(
            profile,
            footprint,
            DelayInjector::with_site_network(catalog.network().clone(), component_index.clone()),
            catalog.cost_model(),
            demand,
            preferences,
            current,
            component_index,
        );
        model
            .kernel
            .set_owned_site_limits(catalog.owned_site_limits());
        model
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        profile: ApplicationProfile,
        footprint: NetworkFootprint,
        injector: DelayInjector,
        cost_model: SiteCostModel,
        demand: ResourceDemand,
        preferences: MigrationPreferences,
        current: Placement,
        component_index: Vec<String>,
    ) -> Self {
        assert_eq!(
            current.len(),
            component_index.len(),
            "current placement must cover every component"
        );
        assert_eq!(
            injector.component_index(),
            component_index,
            "the delay injector must resolve names against the same component \
             index as the model, or the compiled kernel and the interpretive \
             oracle would silently disagree"
        );
        assert_eq!(
            injector.site_network().site_count(),
            cost_model.site_count(),
            "the link matrix and the cost model must cover the same sites"
        );
        assert!(
            current
                .sites()
                .iter()
                .all(|s| s.index() < cost_model.site_count()),
            "the current placement names a site outside the catalog"
        );
        let baseline_latency_ms: HashMap<String, f64> = profile
            .apis
            .iter()
            .map(|(k, v)| (k.clone(), v.mean_latency_ms.max(1e-6)))
            .collect();
        let mut api_order: Vec<String> = profile.apis.keys().cloned().collect();
        api_order.sort();
        let kernel = CompiledQuality::compile(
            &profile,
            &footprint,
            injector.site_network(),
            &preferences,
            &current,
            &component_index,
            &api_order,
        );
        let cost_kernel = cost_model.compile(&demand);
        Self {
            profile,
            footprint,
            injector,
            cost_model,
            demand,
            preferences,
            current,
            component_index,
            baseline_latency_ms,
            api_order,
            kernel,
            cost_kernel,
        }
    }

    /// Incrementally refresh the model after the telemetry store reports
    /// `dirty` APIs: relearn only those APIs' profiles from the store's
    /// retained traces ([`ApplicationProfile::relearn_dirty`]) and recompile
    /// only their op arenas in place
    /// ([`CompiledQuality::recompile_apis`]). APIs whose retained traces
    /// were all evicted are dropped from the model.
    ///
    /// The network footprint, demand and cost model are deliberately held
    /// fixed: footprint learning regresses *jointly* across every API
    /// sharing an edge, so it has no per-API incremental form — refresh it
    /// with a full [`Atlas::learn`](crate::advisor::Atlas::learn) pass when
    /// the traffic mix shifts structurally. Under that fixed context the
    /// result is bit-identical to a cold model built from the same retained
    /// traces, footprint and demand (pinned by property test).
    pub fn relearn_dirty(
        &mut self,
        store: &atlas_telemetry::TelemetryStore,
        stateful_components: &[String],
        traces_per_api: usize,
        dirty: &[String],
    ) {
        self.profile
            .relearn_dirty(store, stateful_components, traces_per_api, dirty);
        for name in dirty {
            match self.profile.apis.get(name) {
                Some(api) => {
                    self.baseline_latency_ms
                        .insert(name.clone(), api.mean_latency_ms.max(1e-6));
                }
                None => {
                    self.baseline_latency_ms.remove(name);
                }
            }
        }
        let mut api_order: Vec<String> = self.profile.apis.keys().cloned().collect();
        api_order.sort();
        self.api_order = api_order;
        self.kernel.recompile_apis(
            &self.profile,
            &self.footprint,
            self.injector.site_network(),
            &self.preferences,
            &self.current,
            &self.component_index,
            &self.api_order,
            dirty,
        );
    }

    /// Number of components (the plan length this model expects).
    pub fn component_count(&self) -> usize {
        self.component_index.len()
    }

    /// Number of sites plans may place components at (2 in the paper's
    /// binary model).
    pub fn site_count(&self) -> usize {
        self.cost_model.site_count()
    }

    /// Debug guard on every scoring entry point: a plan naming a site
    /// outside the catalog would silently index a neighbouring hop's
    /// link-cost table (and price the component in no pool). Construct
    /// plans over a catalog with [`MigrationPlan::try_from_sites`] to get
    /// the checked error in every build.
    #[inline]
    fn debug_assert_in_catalog(&self, plan: &MigrationPlan) {
        debug_assert!(
            plan.sites().iter().all(|s| s.index() < self.site_count()),
            "plan names a site outside the {}-site catalog; build plans with \
             MigrationPlan::try_from_sites",
            self.site_count()
        );
    }

    /// The component names in plan-index order.
    pub fn component_index(&self) -> &[String] {
        &self.component_index
    }

    /// The preferences in effect.
    pub fn preferences(&self) -> &MigrationPreferences {
        &self.preferences
    }

    /// The learned application profile.
    pub fn profile(&self) -> &ApplicationProfile {
        &self.profile
    }

    /// The learned network footprint.
    pub fn footprint(&self) -> &NetworkFootprint {
        &self.footprint
    }

    /// The current placement.
    pub fn current_placement(&self) -> &Placement {
        &self.current
    }

    /// Milliseconds the construction-time kernel compile pass took
    /// (surfaced as `EvalStats::kernel_compile_ms`).
    pub fn kernel_compile_ms(&self) -> f64 {
        self.kernel.compile_ms()
    }

    /// The compiled evaluation kernel backing the hot scoring paths.
    pub fn kernel(&self) -> &CompiledQuality {
        &self.kernel
    }

    /// Estimated post-migration mean latency (ms) of one API under a plan
    /// (compiled kernel; bit-identical to
    /// [`Self::estimate_api_latency_ms_interpretive`]).
    pub fn estimate_api_latency_ms(&self, api: &str, plan: &MigrationPlan) -> f64 {
        self.debug_assert_in_catalog(plan);
        let Some(slot) = self.kernel.api_slot(api) else {
            return 0.0;
        };
        with_scratch(|s| {
            self.kernel
                .api_latency_ms(slot, plan.placement().sites(), &mut s.stack)
        })
    }

    /// Interpretive reference of [`Self::estimate_api_latency_ms`]: replays
    /// the retained traces through the recursive [`DelayInjector`].
    pub fn estimate_api_latency_ms_interpretive(&self, api: &str, plan: &MigrationPlan) -> f64 {
        let Some(profile) = self.profile.apis.get(api) else {
            return 0.0;
        };
        self.injector.estimate_api_latency_ms_weighted(
            &profile.traces,
            &profile.trace_weights,
            &self.footprint,
            &self.current,
            plan.placement(),
        )
    }

    /// `Q_Perf(p)`: weighted mean of per-API latency ratios (compiled
    /// kernel).
    pub fn performance(&self, plan: &MigrationPlan) -> f64 {
        self.debug_assert_in_catalog(plan);
        with_scratch(|s| {
            self.kernel
                .performance(plan.placement().sites(), &mut s.stack)
        })
    }

    /// Interpretive reference of [`Self::performance`], summing the APIs in
    /// the same sorted order as the kernel.
    pub fn performance_interpretive(&self, plan: &MigrationPlan) -> f64 {
        if self.api_order.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        let mut weight_sum = 0.0;
        for api in &self.api_order {
            let weight = self.preferences.api_weight(api);
            let baseline = self.baseline_latency_ms[api];
            let estimated = self
                .estimate_api_latency_ms_interpretive(api, plan)
                .max(1e-9);
            total += weight * estimated / baseline;
            weight_sum += weight;
        }
        total / weight_sum
    }

    /// `Q_Avai(p)`: weighted count of APIs whose stateful dependencies move
    /// (compiled kernel).
    pub fn availability(&self, plan: &MigrationPlan) -> f64 {
        self.debug_assert_in_catalog(plan);
        self.kernel
            .availability(plan.placement().sites(), self.current.sites())
    }

    /// Interpretive reference of [`Self::availability`], resolving stateful
    /// component names with the original index scan.
    pub fn availability_interpretive(&self, plan: &MigrationPlan) -> f64 {
        let mut disruption = 0.0;
        for api in &self.api_order {
            let profile = &self.profile.apis[api];
            let disrupted = profile.stateful_components.iter().any(|c| {
                self.component_index
                    .iter()
                    .position(|n| n == c)
                    .map(|i| {
                        plan.site(atlas_sim::ComponentId(i))
                            != self.current.site(atlas_sim::ComponentId(i))
                    })
                    .unwrap_or(false)
            });
            if disrupted {
                disruption += self.preferences.api_weight(api);
            }
        }
        disruption
    }

    /// `Q_Cost(p)`: hosting cost over the demand horizon (dollars), each
    /// elastic site billed under its own pricing, computed with the
    /// kernel's reusable scratch buffers.
    pub fn cost(&self, plan: &MigrationPlan) -> f64 {
        self.debug_assert_in_catalog(plan);
        with_scratch(|s| {
            fill_sites(&mut s.sites, plan, self.component_count());
            self.cost_kernel
                .evaluate_with_scratch(&s.sites, &mut s.cost)
                .total()
        })
    }

    /// Interpretive reference of [`Self::cost`] (allocating per call).
    pub fn cost_interpretive(&self, plan: &MigrationPlan) -> f64 {
        let sites: Vec<SiteId> = (0..self.component_count())
            .map(|i| plan.site(atlas_sim::ComponentId(i)))
            .collect();
        self.cost_model.evaluate(&self.demand, &sites).total()
    }

    /// Cost expressed per day, the unit the paper reports.
    pub fn cost_per_day(&self, plan: &MigrationPlan) -> f64 {
        let sites: Vec<SiteId> = (0..self.component_count())
            .map(|i| plan.site(atlas_sim::ComponentId(i)))
            .collect();
        self.cost_model
            .evaluate(&self.demand, &sites)
            .per_day(self.demand.duration_s())
            .total()
    }

    /// `λ(p)`: whether the plan satisfies every constraint of Eq. 4
    /// (compiled constraint kernel; same verdict as
    /// [`Self::feasibility`]`.is_none()`, without the diagnostics or their
    /// allocations).
    pub fn is_feasible(&self, plan: &MigrationPlan) -> bool {
        self.debug_assert_in_catalog(plan);
        if plan.len() != self.component_count() {
            return false;
        }
        with_scratch(|s| {
            fill_sites(&mut s.sites, plan, self.component_count());
            let (breakdown, peaks) = self.cost_kernel.evaluate_with_peaks(&s.sites, &mut s.cost);
            self.kernel.constraints().feasible_with_peaks(
                &s.sites,
                &peaks,
                |site| self.cost_kernel.site_peaks(&s.cost, site.index()),
                || breakdown.total(),
            )
        })
    }

    /// The first violated constraint, if any (useful for diagnostics).
    pub fn feasibility(&self, plan: &MigrationPlan) -> Option<String> {
        if plan.len() != self.component_count() {
            return Some("plan does not cover every component".to_string());
        }
        // Placement pins.
        if self.preferences.violates_pins(plan) {
            return Some("violates a placement constraint".to_string());
        }
        // On-prem resource limits: peak expected usage of on-prem components.
        let onprem: Vec<usize> = (0..self.component_count())
            .filter(|&i| plan.site(atlas_sim::ComponentId(i)).is_on_prem())
            .collect();
        let peak_cpu = self.demand.peak_cpu(&onprem);
        if peak_cpu > self.preferences.onprem_cpu_limit {
            return Some(format!(
                "on-prem CPU demand {peak_cpu:.1} exceeds limit {:.1}",
                self.preferences.onprem_cpu_limit
            ));
        }
        let peak_mem = self.demand.peak_memory_gb(&onprem);
        if peak_mem > self.preferences.onprem_memory_limit_gb {
            return Some(format!(
                "on-prem memory demand {peak_mem:.1} GB exceeds limit {:.1} GB",
                self.preferences.onprem_memory_limit_gb
            ));
        }
        let peak_storage = self.demand.peak_storage_gb(&onprem);
        if peak_storage > self.preferences.onprem_storage_limit_gb {
            return Some(format!(
                "on-prem storage demand {peak_storage:.1} GB exceeds limit {:.1} GB",
                self.preferences.onprem_storage_limit_gb
            ));
        }
        // Capacity limits of owned sites at index > 0 (catalog-declared;
        // empty in the two-site model, where site 1 is elastic).
        for limits in self.kernel.constraints().owned_site_limits() {
            let members: Vec<usize> = (0..self.component_count())
                .filter(|&i| plan.site(atlas_sim::ComponentId(i)) == limits.site)
                .collect();
            let site = limits.site.index();
            let cpu = self.demand.peak_cpu(&members);
            if limits.cpu_cores.is_finite() && cpu > limits.cpu_cores {
                return Some(format!(
                    "site {site} CPU demand {cpu:.1} exceeds capacity {:.1}",
                    limits.cpu_cores
                ));
            }
            let mem = self.demand.peak_memory_gb(&members);
            if limits.memory_gb.is_finite() && mem > limits.memory_gb {
                return Some(format!(
                    "site {site} memory demand {mem:.1} GB exceeds capacity {:.1} GB",
                    limits.memory_gb
                ));
            }
            let storage = self.demand.peak_storage_gb(&members);
            if limits.storage_gb.is_finite() && storage > limits.storage_gb {
                return Some(format!(
                    "site {site} storage demand {storage:.1} GB exceeds capacity {:.1} GB",
                    limits.storage_gb
                ));
            }
        }
        // Budget (interpretive cost, keeping this diagnostic an oracle
        // that shares nothing with the compiled kernels).
        if let Some(budget) = self.preferences.budget {
            let cost = self.cost_interpretive(plan);
            if cost > budget {
                return Some(format!("cost {cost:.2} exceeds budget {budget:.2}"));
            }
        }
        None
    }

    /// Evaluate all three qualities plus feasibility of a plan through the
    /// compiled kernel. `Q_Cost` is computed once and reused by the budget
    /// constraint (the interpretive path used to score it twice when a
    /// budget preference was set).
    pub fn evaluate(&self, plan: &MigrationPlan) -> PlanQuality {
        self.debug_assert_in_catalog(plan);
        with_scratch(|s| {
            let sites = plan.placement().sites();
            let performance = self.kernel.performance(sites, &mut s.stack);
            let availability = self.kernel.availability(sites, self.current.sites());
            fill_sites(&mut s.sites, plan, self.component_count());
            let (breakdown, peaks) = self.cost_kernel.evaluate_with_peaks(&s.sites, &mut s.cost);
            let cost = breakdown.total();
            let feasible = plan.len() == self.component_count()
                && self.kernel.constraints().feasible_with_peaks(
                    &s.sites,
                    &peaks,
                    |site| self.cost_kernel.site_peaks(&s.cost, site.index()),
                    || cost,
                );
            PlanQuality {
                performance,
                availability,
                cost,
                feasible,
            }
        })
    }

    /// Batched [`Self::evaluate`]: score one group of plans (the *lanes*)
    /// through a single structure-of-arrays walk of the compiled arenas.
    /// `Q_Perf` of all lanes is computed in one pass over the instruction
    /// streams; availability, cost and feasibility are then filled per lane
    /// with the usual scratch-backed kernels. Every returned quality is
    /// bit-identical to evaluating its plan alone.
    ///
    /// Groups of fewer than two plans, and groups containing a plan that
    /// does not cover every component, fall back to the scalar path.
    pub fn evaluate_lanes(&self, plans: &[&MigrationPlan]) -> Vec<PlanQuality> {
        let n = self.component_count();
        if plans.len() < 2 || plans.iter().any(|p| p.len() != n) {
            return plans.iter().map(|p| self.evaluate(p)).collect();
        }
        for plan in plans {
            self.debug_assert_in_catalog(plan);
        }
        let lanes = plans.len();
        with_scratch(|s| {
            let site_views: Vec<&[SiteId]> = plans.iter().map(|p| p.placement().sites()).collect();
            s.lanes.load(&site_views);
            let mut perf = Vec::with_capacity(lanes);
            self.kernel
                .performance_lanes(&mut s.lanes, lanes, &mut perf);
            plans
                .iter()
                .enumerate()
                .map(|(l, plan)| {
                    let availability = self
                        .kernel
                        .availability(site_views[l], self.current.sites());
                    fill_sites(&mut s.sites, plan, n);
                    let (breakdown, peaks) =
                        self.cost_kernel.evaluate_with_peaks(&s.sites, &mut s.cost);
                    let cost = breakdown.total();
                    let feasible = self.kernel.constraints().feasible_with_peaks(
                        &s.sites,
                        &peaks,
                        |site| self.cost_kernel.site_peaks(&s.cost, site.index()),
                        || cost,
                    );
                    PlanQuality {
                        performance: perf[l],
                        availability,
                        cost,
                        feasible,
                    }
                })
                .collect()
        })
    }

    /// [`Self::evaluate`] with the per-trace latencies retained: the parent
    /// state of the delta path. The returned quality is bit-identical to
    /// [`Self::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover every component (the delta path
    /// needs a full-length site assignment to mutate).
    pub fn evaluate_scored(&self, plan: &MigrationPlan) -> ScoredPlan {
        self.debug_assert_in_catalog(plan);
        assert_eq!(
            plan.len(),
            self.component_count(),
            "delta scoring needs a plan covering every component"
        );
        with_scratch(|s| {
            let sites = plan.placement().sites().to_vec();
            let mut traces = Vec::with_capacity(self.kernel.trace_count());
            let performance = self
                .kernel
                .performance_scored(&sites, &mut s.stack, &mut traces);
            let availability = self.kernel.availability(&sites, self.current.sites());
            let (breakdown, peaks) = self.cost_kernel.evaluate_with_peaks(&sites, &mut s.cost);
            let cost = breakdown.total();
            let feasible = self.kernel.constraints().feasible_with_peaks(
                &sites,
                &peaks,
                |site| self.cost_kernel.site_peaks(&s.cost, site.index()),
                || cost,
            );
            ScoredPlan {
                sites,
                traces,
                quality: PlanQuality {
                    performance,
                    availability,
                    cost,
                    feasible,
                },
            }
        })
    }

    /// Batched [`Self::evaluate_scored`]: score one group of plans through
    /// a single structure-of-arrays walk of the compiled arenas, retaining
    /// every lane's per-trace latencies. Each returned [`ScoredPlan`] —
    /// quality and retained state alike — is bit-identical to
    /// [`Self::evaluate_scored`] of the same plan.
    ///
    /// Groups of fewer than two plans fall back to the scalar scored path.
    ///
    /// # Panics
    ///
    /// Panics if any plan does not cover every component (like
    /// [`Self::evaluate_scored`]: the delta path needs full-length site
    /// assignments).
    pub fn evaluate_scored_lanes(&self, plans: &[&MigrationPlan]) -> Vec<ScoredPlan> {
        let n = self.component_count();
        for plan in plans {
            assert_eq!(
                plan.len(),
                n,
                "delta scoring needs a plan covering every component"
            );
        }
        if plans.len() < 2 {
            return plans.iter().map(|p| self.evaluate_scored(p)).collect();
        }
        for plan in plans {
            self.debug_assert_in_catalog(plan);
        }
        let lanes = plans.len();
        with_scratch(|s| {
            let site_views: Vec<&[SiteId]> = plans.iter().map(|p| p.placement().sites()).collect();
            s.lanes.load(&site_views);
            let mut perf = Vec::with_capacity(lanes);
            let mut scored: Vec<Vec<ScoredTrace>> = (0..lanes)
                .map(|_| Vec::with_capacity(self.kernel.trace_count()))
                .collect();
            self.kernel
                .performance_scored_lanes(&mut s.lanes, lanes, &mut perf, &mut scored);
            plans
                .iter()
                .zip(scored)
                .enumerate()
                .map(|(l, (plan, traces))| {
                    let availability = self
                        .kernel
                        .availability(site_views[l], self.current.sites());
                    fill_sites(&mut s.sites, plan, n);
                    let (breakdown, peaks) =
                        self.cost_kernel.evaluate_with_peaks(&s.sites, &mut s.cost);
                    let cost = breakdown.total();
                    let feasible = self.kernel.constraints().feasible_with_peaks(
                        &s.sites,
                        &peaks,
                        |site| self.cost_kernel.site_peaks(&s.cost, site.index()),
                        || cost,
                    );
                    ScoredPlan {
                        sites: site_views[l].to_vec(),
                        traces,
                        quality: PlanQuality {
                            performance: perf[l],
                            availability,
                            cost,
                            feasible,
                        },
                    }
                })
                .collect()
        })
    }

    /// Incrementally re-score a mutation of `parent`: apply `changes`
    /// (last write per component wins) and re-run only the traces that
    /// reference a component whose site actually changed — O(touched
    /// traces) instead of O(all traces) — inheriting every other per-trace
    /// latency from the parent. Availability, cost and feasibility are pure
    /// functions of the new assignment and are recomputed outright. The
    /// returned state (including its quality) is bit-identical to a cold
    /// [`Self::evaluate_scored`] of the mutated plan, so delta chains of
    /// any length — including reverts — stay exact.
    pub fn evaluate_delta(
        &self,
        parent: &ScoredPlan,
        changes: &[(atlas_sim::ComponentId, SiteId)],
    ) -> ScoredPlan {
        let mut sites = parent.sites.clone();
        with_scratch(|s| {
            let mask = apply_changes(&mut sites, changes, &mut s.changed, self.site_count());
            let mut traces = Vec::with_capacity(parent.traces.len());
            let performance = self.kernel.performance_delta(
                &sites,
                &s.changed,
                mask,
                &parent.traces,
                &mut traces,
                &mut s.stack,
            );
            let availability = self.kernel.availability(&sites, self.current.sites());
            let (breakdown, peaks) = self.cost_kernel.evaluate_with_peaks(&sites, &mut s.cost);
            let cost = breakdown.total();
            let feasible = self.kernel.constraints().feasible_with_peaks(
                &sites,
                &peaks,
                |site| self.cost_kernel.site_peaks(&s.cost, site.index()),
                || cost,
            );
            ScoredPlan {
                sites,
                traces,
                quality: PlanQuality {
                    performance,
                    availability,
                    cost,
                    feasible,
                },
            }
        })
    }

    /// Allocation-free probe of a mutation of `parent`: like
    /// [`Self::evaluate_delta`] but the new state is kept in thread-local
    /// scratch and discarded, returning only the quality. This is the shape
    /// local-search probes want — score a single-component move, usually
    /// reject it, never materialise the state.
    pub fn probe_delta(
        &self,
        parent: &ScoredPlan,
        changes: &[(atlas_sim::ComponentId, SiteId)],
    ) -> PlanQuality {
        with_scratch(|s| {
            let EvalScratch {
                stack,
                sites,
                cost,
                changed,
                scored,
                ..
            } = s;
            sites.clear();
            sites.extend_from_slice(&parent.sites);
            let mask = apply_changes(sites, changes, changed, self.site_count());
            let performance =
                self.kernel
                    .performance_delta(sites, changed, mask, &parent.traces, scored, stack);
            let availability = self.kernel.availability(sites, self.current.sites());
            let (breakdown, peaks) = self.cost_kernel.evaluate_with_peaks(sites, cost);
            let cost_total = breakdown.total();
            let feasible = self.kernel.constraints().feasible_with_peaks(
                sites,
                &peaks,
                |site| self.cost_kernel.site_peaks(cost, site.index()),
                || cost_total,
            );
            PlanQuality {
                performance,
                availability,
                cost: cost_total,
                feasible,
            }
        })
    }

    /// Interpretive reference of [`Self::evaluate`]: scores every indicator
    /// through the original recursive/allocating implementations. The
    /// compiled kernel is pinned bit-identical to this oracle by property
    /// tests; prefer [`Self::evaluate`] everywhere else.
    pub fn evaluate_interpretive(&self, plan: &MigrationPlan) -> PlanQuality {
        PlanQuality {
            performance: self.performance_interpretive(plan),
            availability: self.availability_interpretive(plan),
            cost: self.cost_interpretive(plan),
            feasible: self.feasibility(plan).is_none(),
        }
    }
}

/// Fill `sites` with the plan's site assignment for components `0..n`.
fn fill_sites(sites: &mut Vec<SiteId>, plan: &MigrationPlan, n: usize) {
    sites.clear();
    sites.extend((0..n).map(|i| plan.site(atlas_sim::ComponentId(i))));
}

/// Apply a change list to a site assignment in order, recording the sorted,
/// deduplicated ids of the components whose site differs from the parent's
/// at any point of the application, and return their bloom fingerprint. A
/// change that re-states a component's current site is a no-op and does not
/// mark the component as touched.
fn apply_changes(
    sites: &mut [SiteId],
    changes: &[(atlas_sim::ComponentId, SiteId)],
    changed: &mut Vec<u32>,
    site_count: usize,
) -> u64 {
    changed.clear();
    for &(component, site) in changes {
        assert!(
            component.0 < sites.len(),
            "delta change names component {} outside the {}-component model",
            component.0,
            sites.len()
        );
        assert!(
            site.index() < site_count,
            "delta change names a site outside the {site_count}-site catalog"
        );
        if sites[component.0] != site {
            sites[component.0] = site;
            changed.push(component.0 as u32);
        }
    }
    changed.sort_unstable();
    changed.dedup();
    changed.iter().fold(0u64, |m, &id| m | (1u64 << (id % 64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::FootprintLearner;
    use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
    use atlas_cloud::{PricingModel, ResourceEstimator, ScalingEstimator};
    use atlas_sim::{
        AppTopology, ClusterSpec, ComponentId, Location, OverloadModel, SimConfig, Simulator,
    };
    use atlas_telemetry::TelemetryStore;

    /// Build a fully-learned quality model from a short simulated run of the
    /// social network.
    fn build_model(preferences: MigrationPreferences) -> (QualityModel, AppTopology) {
        let app = social_network(SocialNetworkOptions::default());
        let n = app.component_count();
        let current = Placement::all_onprem(n);
        let sim = Simulator::new(
            app.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 3,
            },
        );
        let schedule =
            WorkloadGenerator::new(WorkloadOptions::social_network_default().with_seed(3))
                .generate(&app)
                .unwrap();
        let store = TelemetryStore::new();
        sim.run(&schedule, &store);

        let component_index: Vec<String> =
            app.components().iter().map(|c| c.name.clone()).collect();
        let stateful: Vec<String> = app
            .stateful_components()
            .into_iter()
            .map(|c| app.component_name(c).to_string())
            .collect();
        let profile = ApplicationProfile::learn(&store, &stateful, 40);
        let footprint = FootprintLearner::default().learn(&store);
        let injector = DelayInjector::new(ClusterSpec::default().network, component_index.clone());
        let demand = ScalingEstimator::with_scale(5.0).estimate(&store, &component_index, 12, 600);
        let model = QualityModel::new(
            profile,
            footprint,
            injector,
            CostModel::new(PricingModel::default()),
            demand,
            preferences,
            current,
            component_index,
        );
        (model, app)
    }

    #[test]
    fn identity_plan_is_neutral() {
        let (model, app) = build_model(MigrationPreferences::default());
        let identity = MigrationPlan::all_onprem(app.component_count());
        let q = model.evaluate(&identity);
        assert!(
            (q.performance - 1.0).abs() < 0.05,
            "Q_Perf ≈ 1.0, got {}",
            q.performance
        );
        assert_eq!(q.availability, 0.0);
        assert_eq!(q.cost, 0.0);
        assert!(q.feasible);
    }

    #[test]
    fn offloading_stateful_components_costs_availability() {
        let (model, app) = build_model(MigrationPreferences::default());
        let user_db = app.component_id("UserMongoDB").unwrap();
        let mut plan = MigrationPlan::all_onprem(app.component_count());
        plan.set(user_db, Location::Cloud);
        let q = model.evaluate(&plan);
        // UserMongoDB is used by several APIs → several disrupted APIs.
        assert!(
            q.availability >= 2.0,
            "expected multiple disrupted APIs, got {}",
            q.availability
        );
        assert!(q.cost > 0.0);
    }

    #[test]
    fn offloading_a_foreground_service_degrades_performance_more_than_a_background_one() {
        let (model, app) = build_model(MigrationPreferences::default());
        let post_storage = app.component_id("PostStorageService").unwrap();
        let write_ht = app.component_id("WriteHomeTimelineService").unwrap();
        let mut fg = MigrationPlan::all_onprem(app.component_count());
        fg.set(post_storage, Location::Cloud);
        let mut bg = MigrationPlan::all_onprem(app.component_count());
        bg.set(write_ht, Location::Cloud);
        let q_fg = model.performance(&fg);
        let q_bg = model.performance(&bg);
        assert!(
            q_fg > q_bg,
            "foreground offload ({q_fg}) should hurt more than background offload ({q_bg})"
        );
        assert!(
            q_bg < 1.3,
            "background offload should be nearly free, got {q_bg}"
        );
    }

    #[test]
    fn cpu_limit_makes_the_identity_plan_infeasible() {
        // The 5×-burst demand cannot fit in a tiny on-prem budget unless
        // enough components are offloaded.
        let (model, app) = build_model(MigrationPreferences::with_cpu_limit(2.0));
        let identity = MigrationPlan::all_onprem(app.component_count());
        assert!(!model.is_feasible(&identity));
        assert!(model.feasibility(&identity).unwrap().contains("CPU"));
        // Offloading everything trivially satisfies the on-prem limit.
        let all_cloud = MigrationPlan::new(Placement::all_cloud(app.component_count()));
        assert!(model.is_feasible(&all_cloud));
    }

    #[test]
    fn placement_pins_and_budget_are_enforced() {
        let (model, app) = build_model(
            MigrationPreferences::default()
                .pin(ComponentId(0), Location::OnPrem)
                .with_budget(0.000001),
        );
        let mut plan = MigrationPlan::all_onprem(app.component_count());
        plan.set(ComponentId(0), Location::Cloud);
        assert!(model.feasibility(&plan).unwrap().contains("placement"));

        let mut cheap_violation = MigrationPlan::all_onprem(app.component_count());
        cheap_violation.set(ComponentId(5), Location::Cloud);
        assert!(model
            .feasibility(&cheap_violation)
            .unwrap()
            .contains("budget"));
    }

    #[test]
    fn critical_apis_change_the_weighting() {
        let (plain, app) = build_model(MigrationPreferences::default());
        let (critical, _) =
            build_model(MigrationPreferences::default().critical("/homeTimelineAPI"));
        // Offload a component heavily used by /homeTimelineAPI.
        let ht_service = app.component_id("HomeTimelineService").unwrap();
        let mut plan = MigrationPlan::all_onprem(app.component_count());
        plan.set(ht_service, Location::Cloud);
        let q_plain = plain.performance(&plan);
        let q_critical = critical.performance(&plan);
        assert!(
            q_critical > q_plain,
            "weighting the affected API as critical must increase Q_Perf ({q_critical} vs {q_plain})"
        );
    }

    #[test]
    fn wrong_sized_plans_are_infeasible() {
        let (model, _) = build_model(MigrationPreferences::default());
        let tiny = MigrationPlan::all_onprem(3);
        assert!(!model.is_feasible(&tiny));
    }

    /// The 2-entry default [`SiteCatalog`] reproduces the paper's two-site
    /// quality model bit for bit: building the same learned model through
    /// [`QualityModel::for_catalog`] scores every indicator identically to
    /// the binary [`QualityModel::new`] constructor across the seed app's
    /// plan spectrum (identity, all-cloud, partial offloads, infeasible
    /// plans). This is the regression pinning the N-site generalisation to
    /// the historical behaviour.
    #[test]
    fn default_two_site_catalog_reproduces_the_binary_model_bitwise() {
        let preferences = MigrationPreferences::with_cpu_limit(12.0)
            .pin(ComponentId(0), Location::OnPrem)
            .with_budget(500.0);
        let (binary, app) = build_model(preferences.clone());
        let n = app.component_count();
        let catalog_model = QualityModel::for_catalog(
            binary.profile().clone(),
            binary.footprint().clone(),
            &SiteCatalog::default(),
            binary.demand.clone(),
            preferences,
            Placement::all_onprem(n),
            binary.component_index().to_vec(),
        );
        assert_eq!(catalog_model.site_count(), 2);

        let mut plans: Vec<MigrationPlan> = vec![
            MigrationPlan::all_onprem(n),
            MigrationPlan::new(Placement::all_cloud(n)),
        ];
        for salt in 0u64..8 {
            let bits: Vec<u8> = (0..n)
                .map(|i| {
                    ((salt
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(i as u64 * 0x85EB))
                        >> 5) as u8
                        & 1
                })
                .collect();
            plans.push(MigrationPlan::from_bits(&bits));
        }
        for plan in &plans {
            let a = binary.evaluate(plan);
            let b = catalog_model.evaluate(plan);
            assert_eq!(a.performance.to_bits(), b.performance.to_bits());
            assert_eq!(a.availability.to_bits(), b.availability.to_bits());
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(
                binary.cost_per_day(plan).to_bits(),
                catalog_model.cost_per_day(plan).to_bits()
            );
        }
    }
}
