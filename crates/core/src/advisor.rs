//! The end-to-end advisor: application learning → recommendation →
//! post-migration monitoring (paper Figure 5).
//!
//! # Example
//!
//! Learn the social-network application from simulated telemetry and ask
//! Atlas for Pareto-optimal migration plans under a CPU constraint (a
//! compressed version of `examples/quickstart.rs`):
//!
//! ```
//! use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
//! use atlas_core::{Atlas, AtlasConfig, MigrationPreferences, RecommenderConfig};
//! use atlas_sim::{ClusterSpec, OverloadModel, Placement, SimConfig, Simulator};
//! use atlas_telemetry::TelemetryStore;
//!
//! // Collect learning telemetry by simulating the current deployment.
//! let app = social_network(SocialNetworkOptions::default());
//! let current = Placement::all_onprem(app.component_count());
//! let mut options = WorkloadOptions::social_network_default().with_seed(7);
//! options.profile.day_seconds = 60; // compressed day keeps the example fast
//! let schedule = WorkloadGenerator::new(options).generate(&app).unwrap();
//! let store = TelemetryStore::new();
//! Simulator::new(
//!     app.clone(),
//!     current.clone(),
//!     SimConfig {
//!         overload: OverloadModel::disabled(),
//!         ..SimConfig::default()
//!     },
//! )
//! .run(&schedule, &store);
//!
//! // Stage 1 — application learning.
//! let component_index: Vec<String> =
//!     app.components().iter().map(|c| c.name.clone()).collect();
//! let stateful: Vec<String> = app
//!     .stateful_components()
//!     .into_iter()
//!     .map(|c| app.component_name(c).to_string())
//!     .collect();
//! let mut config = AtlasConfig::new(component_index, stateful);
//! config.recommender = RecommenderConfig::fast();
//! config.traces_per_api = 30;
//! config.horizon_steps = 8;
//! let mut atlas = Atlas::new(config);
//! atlas.learn(&store);
//!
//! // Stage 2 — recommendation under a 12-core on-prem CPU limit. All plan
//! // scoring runs through the shared cached/batched evaluation layer
//! // ([`crate::eval`]); the report carries its statistics.
//! let report = atlas.recommend(current, MigrationPreferences::with_cpu_limit(12.0));
//! assert!(!report.plans.is_empty());
//! assert!(report.plans.iter().all(|p| p.quality.feasible));
//! assert_eq!(report.visited, report.eval.unique_evaluations);
//! assert!(report.eval.cache_hits > 0);
//! ```

use atlas_cloud::{CostModel, PricingModel, ResourceDemand, ResourceEstimator, ScalingEstimator};
use atlas_sim::{NetworkModel, Placement, SiteCatalog};
use atlas_telemetry::TelemetryStore;

use crate::delay::DelayInjector;
use crate::footprint::{FootprintLearner, NetworkFootprint};
use crate::hierarchy::Dendrogram;
use crate::monitor::DriftDetector;
use crate::plan::MigrationPlan;
use crate::preferences::MigrationPreferences;
use crate::profile::ApplicationProfile;
use crate::quality::QualityModel;
use crate::recommender::{RecommendationReport, Recommender, RecommenderConfig};

/// Static configuration of an Atlas deployment.
#[derive(Debug, Clone)]
pub struct AtlasConfig {
    /// Component names in plan-index order (from the deployment manifest).
    pub component_index: Vec<String>,
    /// Names of the stateful components (those with persistent volumes).
    pub stateful_components: Vec<String>,
    /// Network model between and within the two locations (ignored when
    /// [`AtlasConfig::sites`] is set).
    pub network: NetworkModel,
    /// Cloud pricing (ignored when [`AtlasConfig::sites`] is set).
    pub pricing: PricingModel,
    /// N-site catalog for multi-region deployments: per-site capacity and
    /// pricing over per-ordered-pair links. `None` (the default) keeps the
    /// paper's two-site model built from [`AtlasConfig::network`] and
    /// [`AtlasConfig::pricing`].
    pub sites: Option<SiteCatalog>,
    /// Expected traffic growth relative to the learning period (the paper's
    /// burst scenario uses 5×).
    pub expected_traffic_scale: f64,
    /// Number of traces retained per API for delay injection.
    pub traces_per_api: usize,
    /// Steps and step length of the cost/constraint horizon.
    pub horizon_steps: usize,
    /// Length of one horizon step in seconds.
    pub horizon_step_s: u64,
    /// Recommender settings.
    pub recommender: RecommenderConfig,
}

impl AtlasConfig {
    /// A configuration for an application with the given component names and
    /// stateful subset, using defaults everywhere else.
    pub fn new(component_index: Vec<String>, stateful_components: Vec<String>) -> Self {
        Self {
            component_index,
            stateful_components,
            network: NetworkModel::default(),
            pricing: PricingModel::default(),
            sites: None,
            expected_traffic_scale: 5.0,
            traces_per_api: 100,
            horizon_steps: 24,
            horizon_step_s: 600,
            recommender: RecommenderConfig::default(),
        }
    }
}

/// The Atlas advisor.
pub struct Atlas {
    config: AtlasConfig,
    profile: Option<ApplicationProfile>,
    footprint: Option<NetworkFootprint>,
    demand: Option<ResourceDemand>,
}

impl Atlas {
    /// Create an advisor with the given configuration.
    pub fn new(config: AtlasConfig) -> Self {
        Self {
            config,
            profile: None,
            footprint: None,
            demand: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AtlasConfig {
        &self.config
    }

    /// **Stage 1 — application learning**: query the telemetry store and
    /// learn the API/component profiles, the network footprints and the
    /// expected resource demand.
    pub fn learn(&mut self, store: &TelemetryStore) {
        self.profile = Some(ApplicationProfile::learn(
            store,
            &self.config.stateful_components,
            self.config.traces_per_api,
        ));
        self.footprint = Some(FootprintLearner::default().learn(store));
        self.demand = Some(
            ScalingEstimator::with_scale(self.config.expected_traffic_scale).estimate(
                store,
                &self.config.component_index,
                self.config.horizon_steps,
                self.config.horizon_step_s,
            ),
        );
    }

    /// Whether [`Atlas::learn`] has been called.
    pub fn is_learned(&self) -> bool {
        self.profile.is_some()
    }

    /// The learned application profile.
    ///
    /// # Panics
    ///
    /// Panics if [`Atlas::learn`] has not been called.
    pub fn profile(&self) -> &ApplicationProfile {
        self.profile.as_ref().expect("call Atlas::learn first")
    }

    /// The learned network footprint.
    ///
    /// # Panics
    ///
    /// Panics if [`Atlas::learn`] has not been called.
    pub fn footprint(&self) -> &NetworkFootprint {
        self.footprint.as_ref().expect("call Atlas::learn first")
    }

    /// The expected resource demand over the horizon.
    ///
    /// # Panics
    ///
    /// Panics if [`Atlas::learn`] has not been called.
    pub fn demand(&self) -> &ResourceDemand {
        self.demand.as_ref().expect("call Atlas::learn first")
    }

    /// Build the quality model for a current placement and a set of owner
    /// preferences (reusable across recommendation rounds). With
    /// [`AtlasConfig::sites`] set this is an N-site model over the catalog;
    /// otherwise the paper's two-site model.
    pub fn quality_model(
        &self,
        current: Placement,
        preferences: MigrationPreferences,
    ) -> QualityModel {
        match &self.config.sites {
            Some(catalog) => QualityModel::for_catalog(
                self.profile().clone(),
                self.footprint().clone(),
                catalog,
                self.demand().clone(),
                preferences,
                current,
                self.config.component_index.clone(),
            ),
            None => QualityModel::new(
                self.profile().clone(),
                self.footprint().clone(),
                DelayInjector::new(self.config.network, self.config.component_index.clone()),
                CostModel::new(self.config.pricing.clone()),
                self.demand().clone(),
                preferences,
                current,
                self.config.component_index.clone(),
            ),
        }
    }

    /// **Stage 2 — migration recommendation**: run the DRL-based genetic
    /// algorithm and return the Pareto-optimal plans.
    ///
    /// All candidate scoring flows through the cached, batched,
    /// thread-parallel [`crate::eval::PlanEvaluator`]
    /// ([`RecommenderConfig::threads`](crate::recommender::RecommenderConfig)
    /// controls the fan-out); the returned report's `eval` field carries the
    /// evaluation statistics.
    pub fn recommend(
        &self,
        current: Placement,
        preferences: MigrationPreferences,
    ) -> RecommendationReport {
        let quality = self.quality_model(current, preferences);
        Recommender::new(&quality, self.config.recommender.clone()).recommend()
    }

    /// Organise a recommendation report as a dendrogram for hierarchical
    /// plan selection (§4.2.2).
    pub fn organize(&self, report: &RecommendationReport) -> Dendrogram {
        let points: Vec<Vec<f64>> = report
            .plans
            .iter()
            .map(|p| p.quality.objectives().to_vec())
            .collect();
        Dendrogram::build(&points)
    }

    /// **Stage 3 — post-migration monitoring**: build a drift detector for
    /// one API from the measured post-migration latencies and the estimate
    /// that was shown when the executed plan was selected.
    pub fn drift_detector(
        &self,
        api: &str,
        executed_plan: &MigrationPlan,
        current_before_migration: &Placement,
        measured_after_migration_ms: Vec<f64>,
    ) -> DriftDetector {
        let injector = match &self.config.sites {
            Some(catalog) => DelayInjector::with_site_network(
                catalog.network().clone(),
                self.config.component_index.clone(),
            ),
            None => DelayInjector::new(self.config.network, self.config.component_index.clone()),
        };
        let traces = self
            .profile()
            .apis
            .get(api)
            .map(|p| p.traces.clone())
            .unwrap_or_default();
        let approx = injector.estimate_latency_distribution_ms(
            &traces,
            self.footprint(),
            current_before_migration,
            executed_plan.placement(),
        );
        DriftDetector::new(measured_after_migration_ms, &approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
    use atlas_sim::{ClusterSpec, OverloadModel, SimConfig, Simulator};

    fn learned_atlas() -> (Atlas, Placement) {
        let app = social_network(SocialNetworkOptions::default());
        let n = app.component_count();
        let current = Placement::all_onprem(n);
        let sim = Simulator::new(
            app.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 12,
            },
        );
        let schedule =
            WorkloadGenerator::new(WorkloadOptions::social_network_default().with_seed(12))
                .generate(&app)
                .unwrap();
        let store = TelemetryStore::new();
        sim.run(&schedule, &store);

        let component_index: Vec<String> =
            app.components().iter().map(|c| c.name.clone()).collect();
        let stateful: Vec<String> = app
            .stateful_components()
            .into_iter()
            .map(|c| app.component_name(c).to_string())
            .collect();
        let mut config = AtlasConfig::new(component_index, stateful);
        config.recommender = RecommenderConfig::fast();
        config.traces_per_api = 30;
        config.horizon_steps = 8;
        let mut atlas = Atlas::new(config);
        atlas.learn(&store);
        (atlas, current)
    }

    #[test]
    fn learning_populates_all_stages() {
        let (atlas, _) = learned_atlas();
        assert!(atlas.is_learned());
        assert_eq!(atlas.profile().apis.len(), 9);
        assert!(!atlas.footprint().is_empty());
        assert_eq!(atlas.demand().component_count(), 29);
    }

    #[test]
    fn end_to_end_recommendation_produces_feasible_pareto_plans() {
        let (atlas, current) = learned_atlas();
        let preferences = MigrationPreferences::with_cpu_limit(12.0);
        let report = atlas.recommend(current, preferences);
        assert!(!report.plans.is_empty());
        assert!(report.plans.iter().all(|p| p.quality.feasible));
        let dendrogram = atlas.organize(&report);
        assert_eq!(dendrogram.len(), report.plans.len());
    }

    #[test]
    fn drift_detector_round_trip() {
        let (atlas, current) = learned_atlas();
        let plan = MigrationPlan::all_onprem(29);
        // Reality matches the approximation → low divergence, no drift.
        let approx_like: Vec<f64> = atlas.profile().apis["/composeAPI"].latency_samples_ms();
        let detector = atlas.drift_detector("/composeAPI", &plan, &current, approx_like.clone());
        assert!(!detector.check(&approx_like).drifted);
        // A large shift is flagged.
        let shifted: Vec<f64> = approx_like.iter().map(|l| l * 6.0 + 80.0).collect();
        assert!(detector.check(&shifted).drifted);
    }

    #[test]
    #[should_panic(expected = "call Atlas::learn first")]
    fn using_an_unlearned_advisor_panics() {
        let atlas = Atlas::new(AtlasConfig::new(vec!["A".to_string()], vec![]));
        let _ = atlas.profile();
    }
}
