//! The multi-tenant advisor hub: concurrent serving over lock-free model
//! snapshots.
//!
//! [`AdvisorService`] is a single-tenant event loop behind `&mut self`: one
//! application, one model, strictly serial rounds. A hosted advisor serves
//! *many* applications at once — concurrent recommendation requests must
//! not queue behind each other, and one tenant's ingest or relearn must not
//! stall another tenant's (or even its own) in-flight recommendations.
//! [`AdvisorHub`] provides that serving layer over N independent tenant
//! services:
//!
//! * **Epoch-stamped model snapshots** — whenever a tenant's model
//!   generation changes (bootstrap or drift-triggered relearn), the hub
//!   publishes the compiled [`QualityModel`] `Arc` plus a *fresh*
//!   [`MemoCache`] as one [`MEMO_SHARDS`](crate::eval::MEMO_SHARDS)-sharded,
//!   epoch-stamped snapshot behind an atomic pointer. Recommendation reads
//!   ([`AdvisorHub::recommend`]) take the snapshot lock-free: they never
//!   touch the tenant's service mutex, so ingest, drift detection and
//!   relearn proceed while any number of recommenders are in flight — and
//!   a recommender keeps scoring against the epoch it started with even if
//!   a relearn lands mid-search.
//! * **Per-epoch shared eval caches** — every request served at one epoch
//!   warms the same sharded memo cache (scores are pure, so sharing can
//!   only add cache hits, never change a result), and a new epoch starts
//!   from an empty cache *by construction*: a stale score cannot survive a
//!   relearn because the cache it lived in is retired with its epoch.
//! * **Determinism** — the recommender's search budget is request-local
//!   (see [`RecommenderConfig::max_visited`]), so a tenant's
//!   recommendation is bit-identical to running its `AdvisorService`
//!   serially, at any hub worker count, request-thread count and
//!   interleaving with other tenants.
//!
//! ```text
//!   feed_all ──┬── tenant A: Mutex<AdvisorService> ─ relearn ─┐ publish
//!              └── tenant B: Mutex<AdvisorService> ─ relearn ─┤ (epoch++)
//!                                                             ▼
//!                         SnapshotCell (atomic ptr) ──▶ { epoch, Arc<QualityModel>,
//!                                                          sharded MemoCache }
//!                                                             ▲  lock-free reads
//!   serve ────── worker pool ── recommend(tenant) ────────────┘
//! ```
//!
//! # Example
//!
//! Run two tenants through the hub and serve their recommendations
//! concurrently — each identical to what the tenant's own serial service
//! computed at bootstrap:
//!
//! ```
//! use atlas_apps::{synthesize, SynthOptions, WorkloadGenerator};
//! use atlas_core::hub::{AdvisorHub, TenantId};
//! use atlas_core::service::{AdvisorService, AdvisorServiceConfig};
//! use atlas_core::{AtlasConfig, MigrationPreferences, RecommenderConfig};
//! use atlas_sim::{OverloadModel, Placement, SimConfig, Simulator};
//! use atlas_telemetry::TelemetryStore;
//!
//! // One tiny synthetic tenant application with a compressed day.
//! fn tenant_service(seed: u64) -> AdvisorService {
//!     let options = SynthOptions {
//!         components: 10,
//!         apis: 2,
//!         call_depth: 3,
//!         seed,
//!         ..SynthOptions::default()
//!     };
//!     let scenario = synthesize(options).unwrap();
//!     let current = Placement::all_onprem(scenario.topology.component_count());
//!     let mut workload = scenario.workload.clone();
//!     workload.profile.day_seconds = 30;
//!     let schedule = WorkloadGenerator::new(workload)
//!         .generate(&scenario.topology)
//!         .unwrap();
//!     let scratch = TelemetryStore::new();
//!     Simulator::new(
//!         scenario.topology.clone(),
//!         current.clone(),
//!         SimConfig {
//!             overload: OverloadModel::disabled(),
//!             ..SimConfig::default()
//!         },
//!     )
//!     .run(&schedule, &scratch);
//!
//!     let mut atlas = AtlasConfig::new(scenario.component_index(), scenario.stateful_names());
//!     atlas.sites = Some(scenario.catalog.clone());
//!     atlas.traces_per_api = 10;
//!     atlas.horizon_steps = 4;
//!     atlas.recommender = RecommenderConfig {
//!         population: 6,
//!         max_visited: 30,
//!         ..RecommenderConfig::fast()
//!     };
//!     let config = AdvisorServiceConfig::new(atlas, MigrationPreferences::default());
//!     let mut service = AdvisorService::new(config, current);
//!     let mut corpus: Vec<_> = scratch
//!         .apis()
//!         .into_iter()
//!         .flat_map(|api| scratch.traces_for_api(&api))
//!         .collect();
//!     corpus.sort_by(|a, b| (a.root().start_us, a.trace_id).cmp(&(b.root().start_us, b.trace_id)));
//!     service.feed(corpus);
//!     service
//! }
//!
//! let mut hub = AdvisorHub::new();
//! let a = hub.add_tenant("checkout", tenant_service(3));
//! let b = hub.add_tenant("search", tenant_service(4));
//! hub.bootstrap(a);
//! hub.bootstrap(b);
//!
//! // Four concurrent requests across the two tenants...
//! let reports = hub.serve(&[a, b, a, b], 1);
//! assert_eq!(reports.len(), 4);
//! // ...are bit-identical to each tenant's own serial recommendation.
//! for report in &reports {
//!     let serial = hub.with_tenant(report.tenant, |service| {
//!         service.recommendation().unwrap().plans.clone()
//!     });
//!     assert_eq!(report.report.plans, serial);
//!     assert_eq!(report.epoch, 1);
//! }
//! ```

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use atlas_telemetry::Trace;

use crate::eval::{effective_threads, MemoCache, PlanEvaluator};
use crate::plan::MigrationPlan;
use crate::quality::{PlanQuality, QualityModel};
use crate::recommender::{RecommendationReport, Recommender, RecommenderConfig};
use crate::service::{AdvisorService, ServiceEvent};

/// Identifier of one tenant registered with an [`AdvisorHub`] (its
/// registration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub usize);

/// One published model generation of a tenant: the epoch stamp, the shared
/// compiled model and the epoch's own sharded eval cache. Retiring the
/// epoch retires the cache with it, so a score computed against an older
/// model can never answer a request at a newer one.
struct PublishedModel {
    epoch: u64,
    model: Arc<QualityModel>,
    cache: MemoCache<MigrationPlan, PlanQuality>,
}

/// Lock-free publication cell for a tenant's current [`PublishedModel`].
///
/// Readers ([`SnapshotCell::load`]) follow one atomic pointer — no lock, no
/// reference count traffic on the read path. Writers push the new snapshot
/// into the retention list *first*, then swing the pointer, so the pointer
/// always targets a retained allocation. Retired snapshots are kept until
/// [`SnapshotCell::prune`], which requires `&mut self` — exclusive access
/// proves no `load` borrow is alive, which is what makes the raw-pointer
/// dereference sound.
struct SnapshotCell {
    current: AtomicPtr<PublishedModel>,
    /// Every snapshot ever published and not yet pruned. Grows by one per
    /// model generation (relearns are rare events on a human timescale);
    /// [`AdvisorHub::prune_retired`] trims it to the live snapshot.
    history: Mutex<Vec<Arc<PublishedModel>>>,
}

impl SnapshotCell {
    fn empty() -> Self {
        Self {
            current: AtomicPtr::new(std::ptr::null_mut()),
            history: Mutex::new(Vec::new()),
        }
    }

    /// Publish a new snapshot: retain it, then swing the pointer.
    fn publish(&self, snapshot: Arc<PublishedModel>) {
        let ptr = Arc::as_ptr(&snapshot) as *mut PublishedModel;
        self.history.lock().push(snapshot);
        // Release pairs with the Acquire in `load`: a reader that sees the
        // new pointer sees the fully-initialised snapshot behind it.
        self.current.store(ptr, Ordering::Release);
    }

    /// The current snapshot, or `None` before the first publish. Lock-free.
    fn load(&self) -> Option<&PublishedModel> {
        let ptr = self.current.load(Ordering::Acquire);
        if ptr.is_null() {
            return None;
        }
        // SAFETY: `ptr` was derived from an `Arc` held in `history`, which
        // only ever shrinks in `prune(&mut self)` — impossible while the
        // `&self` borrow of this return value is alive.
        Some(unsafe { &*ptr })
    }

    /// Drop every retired snapshot, keeping only the live one. The `&mut`
    /// receiver guarantees no outstanding [`Self::load`] borrows.
    fn prune(&mut self) {
        let live = *self.current.get_mut();
        self.history
            .get_mut()
            .retain(|s| std::ptr::eq(Arc::as_ptr(s), live));
    }
}

/// One registered tenant: its serialised service state, its lock-free
/// snapshot cell, and the request-side configuration captured at
/// registration (reads never touch the service mutex).
struct TenantSlot {
    name: String,
    service: Mutex<AdvisorService>,
    snapshot: SnapshotCell,
    recommender: RecommenderConfig,
}

/// One answered recommendation request.
#[derive(Debug, Clone)]
pub struct HubReport {
    /// The tenant that was asked.
    pub tenant: TenantId,
    /// The model epoch the request was served at (the tenant's
    /// [`AdvisorService::model_generation`] when its snapshot was
    /// published).
    pub epoch: u64,
    /// Wall-clock latency of this request, in milliseconds.
    pub latency_ms: f64,
    /// The recommendation itself. `report.eval` is this request's own
    /// compute/hit accounting; `report.eval_lifetime` spans every request
    /// served from the same epoch's shared cache.
    pub report: RecommendationReport,
}

/// A multi-tenant serving layer over independent [`AdvisorService`]s. See
/// the [module docs](self) for the architecture and an end-to-end example.
pub struct AdvisorHub {
    tenants: Vec<TenantSlot>,
    threads: usize,
}

impl Default for AdvisorHub {
    fn default() -> Self {
        Self::new()
    }
}

impl AdvisorHub {
    /// An empty hub with one serving worker per available core.
    pub fn new() -> Self {
        Self {
            tenants: Vec::new(),
            threads: 0,
        }
    }

    /// Set the serving worker-pool size (builder style; `0` = one per
    /// available core). Like every concurrency knob in the evaluator
    /// stack, this never changes any recommendation, only throughput.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Retune the serving worker-pool size on a live hub (`0` = one per
    /// available core). Safe at any time: worker count never changes any
    /// recommendation.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Register a tenant. If the service is already bootstrapped its model
    /// is published immediately; otherwise the first
    /// [`Self::bootstrap`]/[`Self::feed`] that produces a model publishes
    /// it.
    pub fn add_tenant(&mut self, name: impl Into<String>, service: AdvisorService) -> TenantId {
        let slot = TenantSlot {
            name: name.into(),
            recommender: service.config().atlas.recommender.clone(),
            service: Mutex::new(service),
            snapshot: SnapshotCell::empty(),
        };
        Self::republish(&slot, &slot.service.lock());
        self.tenants.push(slot);
        TenantId(self.tenants.len() - 1)
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The name a tenant was registered under.
    pub fn tenant_name(&self, tenant: TenantId) -> &str {
        &self.tenants[tenant.0].name
    }

    /// The model epoch a tenant currently serves at, or `None` before its
    /// first publish.
    pub fn published_epoch(&self, tenant: TenantId) -> Option<u64> {
        self.tenants[tenant.0].snapshot.load().map(|s| s.epoch)
    }

    /// Run `f` against a tenant's service under its lock — the maintenance
    /// hatch for inspecting timelines, stores or recommendations. Reads on
    /// the serving path never come through here.
    pub fn with_tenant<R>(&self, tenant: TenantId, f: impl FnOnce(&AdvisorService) -> R) -> R {
        f(&self.tenants[tenant.0].service.lock())
    }

    /// Publish the service's model if its generation moved past the
    /// published epoch (or nothing is published yet). Called with the
    /// tenant's service lock held, so generations publish in order.
    fn republish(slot: &TenantSlot, service: &AdvisorService) {
        let generation = service.model_generation();
        let published = slot.snapshot.load().map(|s| s.epoch);
        if published == Some(generation) {
            return;
        }
        if let Some(model) = service.shared_model() {
            slot.snapshot.publish(Arc::new(PublishedModel {
                epoch: generation,
                model,
                // A fresh epoch starts from an empty cache: scores computed
                // against the previous model retire with its snapshot.
                cache: MemoCache::default(),
            }));
        }
    }

    /// Ingest one trace batch into one tenant: runs the tenant's full
    /// event loop (retention, drift, incremental relearn,
    /// re-recommendation) under its service lock, then republishes the
    /// model snapshot if the generation moved. Other tenants — and every
    /// in-flight [`Self::recommend`] — are unaffected.
    pub fn feed(&self, tenant: TenantId, traces: Vec<Trace>) -> Vec<ServiceEvent> {
        let slot = &self.tenants[tenant.0];
        let mut service = slot.service.lock();
        let events = service.feed(traces);
        Self::republish(slot, &service);
        events
    }

    /// Cold-start one tenant's model from everything its store retains and
    /// publish the first snapshot. See [`AdvisorService::bootstrap`].
    pub fn bootstrap(&self, tenant: TenantId) -> Vec<ServiceEvent> {
        let slot = &self.tenants[tenant.0];
        let mut service = slot.service.lock();
        let events = service.bootstrap();
        Self::republish(slot, &service);
        events
    }

    /// Ingest many `(tenant, batch)` pairs, different tenants in parallel:
    /// one scoped worker per tenant present in the input, each processing
    /// its tenant's batches in input order (so every tenant observes
    /// exactly the event sequence a serial replay would produce). Results
    /// come back in input order.
    pub fn feed_all(&self, batches: Vec<(TenantId, Vec<Trace>)>) -> Vec<Vec<ServiceEvent>> {
        let mut per_tenant: Vec<Vec<usize>> = vec![Vec::new(); self.tenants.len()];
        for (i, (tenant, _)) in batches.iter().enumerate() {
            per_tenant[tenant.0].push(i);
        }
        let slots: Vec<Mutex<Option<Vec<Trace>>>> = batches
            .into_iter()
            .map(|(_, traces)| Mutex::new(Some(traces)))
            .collect();
        let results: Vec<Mutex<Option<Vec<ServiceEvent>>>> =
            (0..slots.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for (tenant, indices) in per_tenant.iter().enumerate() {
                if indices.is_empty() {
                    continue;
                }
                let slots = &slots;
                let results = &results;
                scope.spawn(move || {
                    for &i in indices {
                        let traces = slots[i].lock().take().expect("each batch fed once");
                        let events = self.feed(TenantId(tenant), traces);
                        *results[i].lock() = Some(events);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every batch was fed"))
            .collect()
    }

    /// Answer one recommendation request lock-free: read the tenant's
    /// published snapshot, run the recommender over the epoch's shared
    /// sharded eval cache with `request_threads` evaluator workers (`0` =
    /// the tenant's configured count), and stamp the result with the epoch
    /// it was served at. Never touches the tenant's service mutex, so
    /// ingest and relearn proceed concurrently; a relearn landing
    /// mid-request is invisible (the request keeps its snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the tenant has never published a model (bootstrap it
    /// first).
    pub fn recommend(&self, tenant: TenantId, request_threads: usize) -> HubReport {
        let slot = &self.tenants[tenant.0];
        let snapshot = slot
            .snapshot
            .load()
            .expect("bootstrap the tenant before requesting recommendations");
        let start = Instant::now();
        let mut config = slot.recommender.clone();
        if request_threads != 0 {
            config.threads = request_threads;
        }
        let evaluator = PlanEvaluator::with_shared_cache(&snapshot.model, &snapshot.cache)
            .with_threads(config.threads)
            .with_lane_width(config.lane_width);
        let report = Recommender::new(&snapshot.model, config).recommend_with(&evaluator);
        HubReport {
            tenant,
            epoch: snapshot.epoch,
            latency_ms: start.elapsed().as_secs_f64() * 1_000.0,
            report,
        }
    }

    /// Answer a slice of recommendation requests from the hub's worker
    /// pool, each request with `request_threads` evaluator workers (`1` is
    /// the natural choice when the pool itself saturates the cores).
    /// Requests to the same tenant share that epoch's eval cache — pure
    /// scores, so sharing only adds hits. Results come back in input
    /// order, each bit-identical to a serial [`Self::recommend`] of the
    /// same tenant at the same epoch.
    pub fn serve(&self, requests: &[TenantId], request_threads: usize) -> Vec<HubReport> {
        let workers = effective_threads(self.threads).min(requests.len()).max(1);
        if workers <= 1 {
            return requests
                .iter()
                .map(|&tenant| self.recommend(tenant, request_threads))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut reports: Vec<Option<HubReport>> = Vec::with_capacity(requests.len());
        reports.resize_with(requests.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut answered = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= requests.len() {
                                break;
                            }
                            answered.push((i, self.recommend(requests[i], request_threads)));
                        }
                        answered
                    })
                })
                .collect();
            for handle in handles {
                for (i, report) in handle.join().expect("serving worker panicked") {
                    reports[i] = Some(report);
                }
            }
        });
        reports
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Drop every retired model snapshot (superseded epochs, their models
    /// and their eval caches), keeping each tenant's live one. Exclusive
    /// access proves no in-flight request still reads a retired snapshot,
    /// which is what makes the reclamation safe.
    pub fn prune_retired(&mut self) {
        for slot in &mut self.tenants {
            slot.snapshot.prune();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::AtlasConfig;
    use crate::preferences::MigrationPreferences;
    use crate::service::AdvisorServiceConfig;
    use atlas_apps::{synthesize, CallGraphShape, SynthOptions, WorkloadGenerator, WorkloadShape};
    use atlas_sim::{ClusterSpec, OverloadModel, Placement, SimConfig, Simulator};
    use atlas_telemetry::{TelemetryStore, TraceId};

    const DAY_S: u64 = 60;

    /// A small synthetic tenant: its fed (not yet bootstrapped) service
    /// plus the day-1 corpus for drift replays.
    fn tenant(seed: u64) -> (AdvisorService, Vec<Trace>) {
        let options = SynthOptions {
            components: 12,
            shape: CallGraphShape::Layered,
            stateful_fraction: 0.2,
            apis: 2,
            call_depth: 3,
            data_scale: 1.0,
            workload: WorkloadShape::Diurnal,
            volume_scale: 1.0,
            site_count: 2,
            seed,
        };
        let scenario = synthesize(options).unwrap();
        let current = Placement::all_onprem(scenario.topology.component_count());
        let scratch = TelemetryStore::new();
        let mut workload = scenario.workload.clone();
        workload.profile.day_seconds = DAY_S;
        let sim = Simulator::new(
            scenario.topology.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed,
            },
        );
        let schedule = WorkloadGenerator::new(workload)
            .generate(&scenario.topology)
            .unwrap();
        sim.run(&schedule, &scratch);
        let mut corpus: Vec<Trace> = scratch
            .apis()
            .into_iter()
            .flat_map(|api| scratch.traces_for_api(&api))
            .collect();
        corpus
            .sort_by(|a, b| (a.root().start_us, a.trace_id).cmp(&(b.root().start_us, b.trace_id)));

        let mut atlas = AtlasConfig::new(scenario.component_index(), scenario.stateful_names());
        atlas.sites = Some(scenario.catalog.clone());
        atlas.traces_per_api = 20;
        atlas.horizon_steps = 6;
        atlas.recommender = crate::recommender::RecommenderConfig {
            population: 8,
            max_visited: 40,
            ..crate::recommender::RecommenderConfig::fast()
        };
        let preferences = MigrationPreferences::with_cpu_limit(scenario.burst_cpu_limit(5.0, 0.6));
        let mut config = AdvisorServiceConfig::new(atlas, preferences);
        config.min_detector_samples = 30;
        config.drift_window = 20;
        let mut service = AdvisorService::new(config, current);
        service.feed(corpus.clone());
        (service, corpus)
    }

    /// Clone one API's traces as a later, slower day.
    fn slow_replay(corpus: &[Trace], api: &str, offset_us: u64, factor: u64) -> Vec<Trace> {
        corpus
            .iter()
            .filter(|t| t.root().operation == api)
            .cloned()
            .map(|mut t| {
                t.trace_id = TraceId(t.trace_id.0 ^ (1 << 62));
                for node in &mut t.nodes {
                    node.span.trace_id = t.trace_id;
                    node.span.start_us += offset_us;
                    node.span.duration_us *= factor;
                }
                t
            })
            .collect()
    }

    #[test]
    fn hub_is_send_and_sync() {
        fn require<T: Send + Sync>() {}
        require::<AdvisorHub>();
        require::<HubReport>();
    }

    #[test]
    fn concurrent_serving_is_bit_identical_to_serial() {
        let mut hub = AdvisorHub::new();
        let a = hub.add_tenant("a", tenant(11).0);
        let b = hub.add_tenant("b", tenant(12).0);
        hub.bootstrap(a);
        hub.bootstrap(b);
        let requests = [a, b, a, b, a, b];
        let serial: Vec<HubReport> = requests.iter().map(|&t| hub.recommend(t, 1)).collect();
        for threads in [2, 8] {
            hub.threads = threads;
            let concurrent = hub.serve(&requests, 1);
            for (s, c) in serial.iter().zip(&concurrent) {
                assert_eq!(s.report.plans, c.report.plans);
                assert_eq!(s.report.visited, c.report.visited);
                assert_eq!(s.epoch, c.epoch);
            }
        }
    }

    #[test]
    fn relearn_retires_the_epoch_cache() {
        let (service, corpus) = tenant(13);
        let mut hub = AdvisorHub::new().with_threads(2);
        let t = hub.add_tenant("drifty", service);
        hub.bootstrap(t);
        assert_eq!(hub.published_epoch(t), Some(1));

        // Warm the epoch-1 cache with a request.
        let before = hub.recommend(t, 1);
        assert_eq!(before.epoch, 1);
        let warm = hub.recommend(t, 1);
        assert_eq!(
            warm.report.eval.unique_evaluations, 0,
            "the second epoch-1 request replays entirely from the shared cache"
        );
        assert_eq!(warm.report.plans, before.report.plans);

        // Drift → relearn → new epoch with a *fresh* cache: the request
        // after the swap must recompute everything against the new model —
        // a stale epoch-1 score cannot survive into epoch 2.
        let api = corpus[0].root().operation.clone();
        hub.feed(t, slow_replay(&corpus, &api, (DAY_S + 1) * 1_000_000, 5));
        assert_eq!(hub.published_epoch(t), Some(2));
        let after = hub.recommend(t, 1);
        assert_eq!(after.epoch, 2);
        // The epoch-2 cache starts empty: this request computed every plan
        // it visited itself, and the cache's lifetime totals are exactly
        // this one request — nothing was inherited from epoch 1.
        assert_eq!(after.report.visited, after.report.eval.unique_evaluations);
        assert_eq!(
            after.report.eval_lifetime.unique_evaluations, after.report.eval.unique_evaluations,
            "a stale epoch-1 entry survived into the epoch-2 cache"
        );
        assert_eq!(
            after.report.eval_lifetime.cache_hits,
            after.report.eval.cache_hits
        );
        // And the answer matches the serial service's own post-drift run.
        let serial = hub.with_tenant(t, |s| s.recommendation().unwrap().plans.clone());
        assert_eq!(after.report.plans, serial);

        // Pruning reclaims the retired epoch-1 snapshot and leaves serving
        // intact.
        hub.prune_retired();
        let pruned = hub.recommend(t, 1);
        assert_eq!(pruned.report.plans, after.report.plans);
        assert_eq!(pruned.epoch, 2);
    }

    #[test]
    fn feed_all_ingests_tenants_in_parallel_and_in_order() {
        let (sa, corpus_a) = tenant(14);
        let (sb, corpus_b) = tenant(15);
        let mut hub = AdvisorHub::new();
        let a = hub.add_tenant("a", sa);
        let b = hub.add_tenant("b", sb);
        hub.bootstrap(a);
        hub.bootstrap(b);
        let api_a = corpus_a[0].root().operation.clone();
        let api_b = corpus_b[0].root().operation.clone();
        let results = hub.feed_all(vec![
            (
                a,
                slow_replay(&corpus_a, &api_a, (DAY_S + 1) * 1_000_000, 1),
            ),
            (
                b,
                slow_replay(&corpus_b, &api_b, (DAY_S + 1) * 1_000_000, 1),
            ),
            (
                a,
                slow_replay(&corpus_a, &api_a, (2 * DAY_S + 2) * 1_000_000, 1),
            ),
        ]);
        assert_eq!(results.len(), 3);
        for events in &results {
            assert!(matches!(events[0], ServiceEvent::Ingested { traces, .. } if traces > 0));
        }
        // Same-shape replays must not drift either tenant.
        assert_eq!(hub.published_epoch(a), Some(1));
        assert_eq!(hub.published_epoch(b), Some(1));
    }
}
