//! The DRL-based genetic algorithm producing migration recommendations
//! (paper §4.2.1, Figure 5 steps ①–⑤).
//!
//! The search keeps a small population of plans, evaluates their three
//! quality indicators, keeps the NSGA-II survivors, pairs parents with a
//! binary tournament, and creates offspring either with the learned
//! reward-driven crossover agent (Atlas) or with uniform crossover (the
//! affinity-style baseline ablation). The search budget is expressed as the
//! total number of plans visited (the paper caps all multi-plan approaches
//! at 10,000 ≈ 0.002 % of the space).
//!
//! The loop is *delta-native*: population members are retained
//! [`ScoredPlan`]s, each offspring is diffed against its nearer tournament
//! parent and re-scored incrementally
//! ([`PlanEvaluator::evaluate_offspring_batch`]) — bit-identical to cold
//! scoring, so [`RecommenderConfig::delta_search`] is purely a speed
//! toggle. Every feasible plan the search evaluates (initial population,
//! GA offspring, RL training rollouts) is offered to an external
//! [`ParetoArchive`], and the recommendation is that archive's front — a
//! Pareto-optimal plan discovered early can no longer be displaced from
//! the answer by later population churn.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use atlas_ga::nsga2::{survive, take_selected};
use atlas_ga::{
    alphabet_mutation, binary_tournament, pareto_front_indices, uniform_crossover, ParetoArchive,
};
use atlas_sim::SiteId;

use crate::eval::{EvalStats, PlanEvaluator, PlanKeySet};
use crate::plan::MigrationPlan;
use crate::quality::{PlanQuality, QualityModel, ScoredPlan};
use crate::rl_crossover::{CrossoverAgent, RlCrossoverConfig};

/// Capacity of the external non-dominated archive accumulating every
/// feasible plan the search evaluates. Beyond this many mutually
/// non-dominated plans, the most crowded archive entry is pruned
/// (NSGA-II crowding over the archive as one front), preserving spread.
pub const ARCHIVE_CAPACITY: usize = 256;

/// Which crossover operator the search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossoverStrategy {
    /// The reward-driven learned crossover (Atlas).
    ReinforcementLearning,
    /// Plain uniform crossover + mutation (NSGA-II baseline of Figure 21a).
    Uniform,
}

/// Configuration of the recommender.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommenderConfig {
    /// Population size (the paper uses 100).
    pub population: usize,
    /// Search budget: *distinct* candidate plans this run asks the
    /// evaluator to score, including the initial population and the RL
    /// training rollouts (the paper caps all multi-plan approaches at
    /// 10,000). Duplicates within the run do not burn budget. The count is
    /// request-local — it depends only on the run's own trajectory, never
    /// on how warm a shared evaluator cache happens to be — so a
    /// recommendation is bit-identical whether its evaluator is cold, warm
    /// or concurrently shared.
    pub max_visited: usize,
    /// Mutation rate applied to offspring (keeps diversity).
    pub mutation_rate: f64,
    /// Crossover operator.
    pub strategy: CrossoverStrategy,
    /// Configuration of the RL crossover agent (ignored for
    /// [`CrossoverStrategy::Uniform`]).
    pub rl: RlCrossoverConfig,
    /// Random seed.
    pub seed: u64,
    /// Worker threads of the plan evaluator (`0` = one per available core).
    /// The thread count never changes the recommendation, only its speed.
    pub threads: usize,
    /// Structure-of-arrays lane width of the plan evaluator (`0` = the
    /// default [`crate::eval::LANE_WIDTH`], `1` = the scalar per-plan
    /// path). Like the thread count, the lane width never changes the
    /// recommendation, only its speed.
    pub lane_width: usize,
    /// Whether offspring are scored incrementally against their nearer
    /// tournament parent ([`PlanEvaluator::evaluate_offspring_batch`],
    /// default) or always cold. Like the thread count and lane width this
    /// never changes the recommendation, only its speed: the delta kernel
    /// is bit-identical to cold scoring and the memo-cache accounting is
    /// the same on both paths.
    pub delta_search: bool,
}

impl Default for RecommenderConfig {
    fn default() -> Self {
        Self {
            population: 100,
            max_visited: 10_000,
            mutation_rate: 0.02,
            strategy: CrossoverStrategy::ReinforcementLearning,
            rl: RlCrossoverConfig::default(),
            seed: 23,
            threads: 0,
            lane_width: 0,
            delta_search: true,
        }
    }
}

impl RecommenderConfig {
    /// A light-weight configuration for unit tests and examples.
    pub fn fast() -> Self {
        Self {
            population: 24,
            max_visited: 600,
            mutation_rate: 0.03,
            strategy: CrossoverStrategy::ReinforcementLearning,
            rl: RlCrossoverConfig {
                iterations: 120,
                actor_hidden: vec![48, 48],
                ..RlCrossoverConfig::default()
            },
            seed: 23,
            threads: 0,
            lane_width: 0,
            delta_search: true,
        }
    }

    /// Switch to plain uniform crossover (builder style).
    pub fn with_uniform_crossover(mut self) -> Self {
        self.strategy = CrossoverStrategy::Uniform;
        self
    }

    /// Replace the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the evaluator thread count (builder style; `0` = one per
    /// available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replace the evaluator lane width (builder style; `0` = the default
    /// [`crate::eval::LANE_WIDTH`], `1` = the scalar per-plan path).
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width;
        self
    }

    /// Enable or disable delta offspring scoring (builder style; on by
    /// default). Never changes the recommendation, only its speed —
    /// pinned by the end-to-end toggle tests.
    pub fn with_delta_search(mut self, delta_search: bool) -> Self {
        self.delta_search = delta_search;
        self
    }
}

/// One recommended plan together with its predicted quality.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendedPlan {
    /// The plan itself.
    pub plan: MigrationPlan,
    /// Its predicted quality.
    pub quality: PlanQuality,
}

/// Summary of one recommendation run.
#[derive(Debug, Clone)]
pub struct RecommendationReport {
    /// The Pareto-optimal plans found, sorted by predicted performance.
    pub plans: Vec<RecommendedPlan>,
    /// Number of *distinct* candidate plans this run asked the evaluator to
    /// score — what the [`RecommenderConfig::max_visited`] budget counts.
    /// Request-local: independent of cache warmth or concurrent sharing.
    pub visited: usize,
    /// Reward progression of the crossover agent (empty for uniform
    /// crossover) — the curve of paper Figure 21b.
    pub reward_progression: Vec<f64>,
    /// Per-request evaluation statistics: the computes, cache hits and
    /// scoring wall time attributable to *this run alone*, exact even when
    /// the evaluator's cache is shared with other runs or tenants. On a
    /// fresh evaluator this coincides with [`Self::eval_lifetime`].
    pub eval: EvalStats,
    /// Cache-lifetime evaluation statistics of the evaluator that served
    /// this run: everything its memo cache has accumulated across every
    /// run that shared it. `eval_lifetime.cache_hits - eval.cache_hits` is
    /// the warmth inherited from (or contributed by) other requests.
    pub eval_lifetime: EvalStats,
}

impl RecommendationReport {
    /// The plan with the best (lowest) predicted performance impact.
    pub fn performance_optimized(&self) -> Option<&RecommendedPlan> {
        self.plans.iter().min_by(|a, b| {
            a.quality
                .performance
                .partial_cmp(&b.quality.performance)
                .expect("finite")
        })
    }

    /// The plan with the least predicted disruption, ties broken by
    /// performance.
    pub fn availability_optimized(&self) -> Option<&RecommendedPlan> {
        self.plans.iter().min_by(|a, b| {
            (a.quality.availability, a.quality.performance)
                .partial_cmp(&(b.quality.availability, b.quality.performance))
                .expect("finite")
        })
    }

    /// The cheapest plan, ties broken by performance.
    pub fn cost_optimized(&self) -> Option<&RecommendedPlan> {
        self.plans.iter().min_by(|a, b| {
            (a.quality.cost, a.quality.performance)
                .partial_cmp(&(b.quality.cost, b.quality.performance))
                .expect("finite")
        })
    }
}

/// The DRL-based genetic recommender.
pub struct Recommender<'a> {
    quality: &'a QualityModel,
    config: RecommenderConfig,
}

impl<'a> Recommender<'a> {
    /// Create a recommender over a quality model.
    pub fn new(quality: &'a QualityModel, config: RecommenderConfig) -> Self {
        Self { quality, config }
    }

    /// Run the search and return the Pareto-optimal recommendations.
    ///
    /// All scoring goes through a fresh [`PlanEvaluator`] with
    /// [`RecommenderConfig::threads`] workers; use [`Self::recommend_with`]
    /// to share a warm evaluator across runs.
    pub fn recommend(&self) -> RecommendationReport {
        let evaluator = PlanEvaluator::new(self.quality)
            .with_threads(self.config.threads)
            .with_lane_width(self.config.lane_width);
        self.recommend_with(&evaluator)
    }

    /// Run the search on a caller-supplied evaluator, sharing its memo cache
    /// (and accumulating into its statistics). The budget counts the
    /// *distinct plans this run requests* — tracked in a request-local set,
    /// not by watching the cache grow — so the search trajectory, the
    /// stopping point and therefore the recommendation are bit-identical
    /// whether the cache is cold, warm from earlier runs, or being filled
    /// concurrently by other requests (the multi-tenant hub relies on
    /// this). [`RecommendationReport::eval`] likewise reports only this
    /// run's computes and hits.
    pub fn recommend_with(&self, evaluator: &PlanEvaluator<'_>) -> RecommendationReport {
        let n = self.quality.component_count();
        let site_count = self.quality.site_count();
        let local_start = evaluator.local_stats();
        // The gene alphabet of the search: every site of the catalog. For
        // the paper's two-site model this is {on-prem, cloud} and the whole
        // search consumes the random stream exactly like the historical
        // binary encoding (uniform crossover draws one bool per gene either
        // way; the alphabet mutation degenerates to a bit flip).
        let site_alphabet: Vec<SiteId> = (0..site_count as u16).map(SiteId).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // The request-local visited set: every distinct plan this run asks
        // the evaluator to score, whether the (possibly shared) cache
        // answers it or not. Scoring is pure, so tracking requests instead
        // of cache growth keeps the trajectory — and the recommendation —
        // independent of cache warmth and of concurrent requests.
        let mut seen: PlanKeySet<MigrationPlan> = PlanKeySet::default();
        // The budget counts distinct plans, so a converged population
        // producing mostly repeated offspring could spin for a long time;
        // cap the total number of evaluation *requests* as a safety valve.
        let mut requested = 0usize;
        let request_cap = self.config.max_visited.saturating_mul(8).max(64);

        let delta = self.config.delta_search;
        // Every feasible plan the search evaluates is offered to the
        // external archive, so the final front survives population churn.
        let mut archive: ParetoArchive<MigrationPlan, [f64; 3]> =
            ParetoArchive::new(ARCHIVE_CAPACITY);

        // ① Population initialisation: random plans that respect the pins
        // (cheap to enforce up-front) with varying off-prem fractions.
        // Off-prem genes pick their site uniformly; in the two-site model
        // the site is forced (no extra draw), preserving the historical
        // random stream.
        let mut seeds: Vec<MigrationPlan> = Vec::with_capacity(self.config.population);
        while seeds.len() < self.config.population {
            let cloud_fraction = rng.gen_range(0.05..0.95);
            let sites: Vec<SiteId> = (0..n)
                .map(|_| random_site(&mut rng, cloud_fraction, site_count))
                .collect();
            let mut plan = MigrationPlan::from_sites(sites);
            self.apply_pins(&mut plan);
            seeds.push(plan);
        }
        // The population retains each member's per-trace scoring state
        // (ScoredPlan) so offspring can be re-scored incrementally against
        // their parents. With delta scoring off, members carry only their
        // quality — the cold path never reads the retained traces.
        let mut population: Vec<ScoredPlan> = if delta {
            evaluator.evaluate_scored_batch(&seeds)
        } else {
            let qualities = evaluator.evaluate_batch(&seeds);
            seeds
                .iter()
                .zip(qualities)
                .map(|(plan, quality)| ScoredPlan::quality_only(plan.to_sites(), quality))
                .collect()
        };
        requested += population.len();
        for (plan, member) in seeds.iter().zip(&population) {
            if !seen.contains(plan) {
                seen.insert(plan.clone());
            }
            if member.quality().feasible {
                archive.insert(plan, member.quality().objectives());
            }
        }

        // Train the RL crossover agent on the initial population (the paper
        // trains Λ_θ during the application-learning phase). Parent
        // qualities come from the retained population; each rollout child
        // is scored through the evaluator — incrementally against its
        // nearer parent when delta scoring is on — and unique ones count
        // against the budget.
        let mut agent = None;
        let mut reward_progression = Vec::new();
        if self.config.strategy == CrossoverStrategy::ReinforcementLearning {
            let mut rl_config = self.config.rl.clone();
            // Keep training within half of the remaining budget.
            let budget = (self.config.max_visited.saturating_sub(seen.len())) / 2;
            rl_config.iterations = rl_config.iterations.min(budget.max(1));
            let mut a = CrossoverAgent::new(n, rl_config).with_site_count(site_count);
            reward_progression = a.train_scored(&population, |pi, pj, child| {
                let quality = if delta {
                    let di = hamming(child.sites(), pi.sites());
                    let dj = hamming(child.sites(), pj.sites());
                    let parent = if dj < di { pj } else { pi };
                    evaluator.evaluate_offspring(parent, child)
                } else {
                    evaluator.evaluate(child)
                };
                if !seen.contains(child) {
                    seen.insert(child.clone());
                }
                if quality.feasible {
                    archive.insert(child, quality.objectives());
                }
                quality
            });
            requested += reward_progression.len();
            agent = Some(a);
        }

        // ②–⑤ Generations: evaluate, survive, pair, cross over. One fused
        // non-dominated sort per generation yields both the survivors and
        // the rank/crowding driving the tournaments. Survivors are moved
        // (not cloned) into the next generation by index permutation.
        while seen.len() < self.config.max_visited && requested < request_cap {
            let feasible: Vec<bool> = population.iter().map(|p| p.quality().feasible).collect();
            let objectives: Vec<[f64; 3]> = population
                .iter()
                .map(|p| p.quality().objectives())
                .collect();
            let survival = survive(&objectives, &feasible, self.config.population);
            population = take_selected(population, &survival.selected);
            let (rank, crowding) = (survival.rank, survival.crowding);

            let offspring_target = self
                .config
                .population
                .min(self.config.max_visited.saturating_sub(seen.len()))
                .max(1);
            let mut offspring: Vec<MigrationPlan> = Vec::with_capacity(offspring_target);
            // For each child, the population index of its nearer tournament
            // parent (by Hamming distance over the genomes, ties to the
            // first) — the anchor for incremental re-scoring.
            let mut parent_of: Vec<usize> = Vec::with_capacity(offspring_target);
            while offspring.len() < offspring_target {
                let a = binary_tournament(&mut rng, &rank, &crowding);
                let b = binary_tournament(&mut rng, &rank, &crowding);
                let mut sites = match (&mut agent, self.config.strategy) {
                    (Some(agent), CrossoverStrategy::ReinforcementLearning) => {
                        agent.crossover_sites(population[a].sites(), population[b].sites())
                    }
                    _ => uniform_crossover(&mut rng, population[a].sites(), population[b].sites()),
                };
                alphabet_mutation(
                    &mut rng,
                    &mut sites,
                    &site_alphabet,
                    self.config.mutation_rate,
                );
                let mut child = MigrationPlan::from_sites(sites);
                self.apply_pins(&mut child);
                let da = hamming(child.sites(), population[a].sites());
                let db = hamming(child.sites(), population[b].sites());
                parent_of.push(if db < da { b } else { a });
                offspring.push(child);
            }
            let scored: Vec<ScoredPlan> = if delta {
                let parents: Vec<&ScoredPlan> = parent_of.iter().map(|&i| &population[i]).collect();
                evaluator.evaluate_offspring_batch(&parents, &offspring)
            } else {
                let qualities = evaluator.evaluate_batch(&offspring);
                offspring
                    .iter()
                    .zip(qualities)
                    .map(|(plan, quality)| ScoredPlan::quality_only(plan.to_sites(), quality))
                    .collect()
            };
            requested += offspring.len();
            for (plan, child) in offspring.iter().zip(&scored) {
                if !seen.contains(plan) {
                    seen.insert(plan.clone());
                }
                if child.quality().feasible {
                    archive.insert(plan, child.quality().objectives());
                }
            }
            population.extend(scored);
        }

        // The recommendation is the archive: every feasible plan the search
        // ever evaluated, non-dominated and crowding-pruned. An empty
        // archive means no feasible plan exists within the budget — fall
        // back to the Pareto front of the final (infeasible) population so
        // the caller still sees the least-bad trade-offs.
        let mut plans: Vec<RecommendedPlan> = if archive.is_empty() {
            let objectives: Vec<[f64; 3]> = population
                .iter()
                .map(|p| p.quality().objectives())
                .collect();
            let front = pareto_front_indices(&objectives);
            // Dedupe by borrowed genome — no per-plan allocation.
            let mut seen: HashSet<&[SiteId]> = HashSet::new();
            front
                .into_iter()
                .filter(|&i| seen.insert(population[i].sites()))
                .map(|i| RecommendedPlan {
                    plan: MigrationPlan::from_sites(population[i].sites().to_vec()),
                    quality: population[i].quality(),
                })
                .collect()
        } else {
            archive
                .entries()
                .iter()
                .map(|(plan, objectives)| RecommendedPlan {
                    plan: plan.clone(),
                    quality: PlanQuality {
                        performance: objectives[0],
                        availability: objectives[1],
                        cost: objectives[2],
                        feasible: true,
                    },
                })
                .collect()
        };
        plans.sort_by(|a, b| {
            a.quality
                .performance
                .partial_cmp(&b.quality.performance)
                .expect("finite")
        });

        RecommendationReport {
            plans,
            visited: seen.len(),
            reward_progression,
            eval: evaluator.local_stats().since(&local_start),
            eval_lifetime: evaluator.stats(),
        }
    }

    fn apply_pins(&self, plan: &mut MigrationPlan) {
        for (&c, &site) in &self.quality.preferences().pinned {
            if c.0 < plan.len() {
                plan.set(c, site);
            }
        }
        // Site-set pins: snap a violating gene to the set's first site.
        for (&c, allowed) in &self.quality.preferences().allowed_sites {
            if c.0 < plan.len() && !allowed.contains(&plan.site(c)) {
                plan.set(c, allowed[0]);
            }
        }
    }
}

/// Hamming distance between two genomes (number of differing genes).
/// Used to pick the nearer tournament parent as the delta-scoring anchor.
fn hamming(a: &[SiteId], b: &[SiteId]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Draw one placement gene: off-prem with probability `cloud_fraction`,
/// and if so a uniformly chosen elastic site.
///
/// The two-site case spends exactly one `f64` draw per gene (the site is
/// forced, no second draw), matching the binary sampler this generalises —
/// the invariant that keeps 2-site searches bit-identical to the
/// historical random stream. Shared by the Atlas recommender and the
/// GA/random-search baselines so the two search families cannot drift
/// apart in sampling semantics.
pub fn random_site<R: Rng + ?Sized>(rng: &mut R, cloud_fraction: f64, site_count: usize) -> SiteId {
    if rng.gen::<f64>() < cloud_fraction {
        if site_count <= 2 {
            SiteId::CLOUD
        } else {
            SiteId(rng.gen_range(1..site_count as u16))
        }
    } else {
        SiteId::ON_PREM
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayInjector;
    use crate::footprint::FootprintLearner;
    use crate::preferences::MigrationPreferences;
    use crate::profile::ApplicationProfile;
    use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
    use atlas_cloud::{CostModel, PricingModel, ResourceEstimator, ScalingEstimator};
    use atlas_sim::{
        ClusterSpec, ComponentId, Location, OverloadModel, Placement, SimConfig, Simulator,
    };
    use atlas_telemetry::TelemetryStore;

    fn build_quality(preferences: MigrationPreferences) -> QualityModel {
        let app = social_network(SocialNetworkOptions::default());
        let n = app.component_count();
        let current = Placement::all_onprem(n);
        let sim = Simulator::new(
            app.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 8,
            },
        );
        let schedule =
            WorkloadGenerator::new(WorkloadOptions::social_network_default().with_seed(8))
                .generate(&app)
                .unwrap();
        let store = TelemetryStore::new();
        sim.run(&schedule, &store);

        let component_index: Vec<String> =
            app.components().iter().map(|c| c.name.clone()).collect();
        let stateful: Vec<String> = app
            .stateful_components()
            .into_iter()
            .map(|c| app.component_name(c).to_string())
            .collect();
        let profile = ApplicationProfile::learn(&store, &stateful, 25);
        let footprint = FootprintLearner::default().learn(&store);
        let injector = DelayInjector::new(ClusterSpec::default().network, component_index.clone());
        let demand = ScalingEstimator::with_scale(5.0).estimate(&store, &component_index, 8, 600);
        QualityModel::new(
            profile,
            footprint,
            injector,
            CostModel::new(PricingModel::default()),
            demand,
            preferences,
            current,
            component_index,
        )
    }

    /// Preferences forcing some offloading: on-prem CPU may not hold all of
    /// the burst demand, and user data must stay on-prem.
    fn burst_preferences(quality_cpu_limit: f64) -> MigrationPreferences {
        MigrationPreferences::with_cpu_limit(quality_cpu_limit)
    }

    #[test]
    fn recommendations_are_feasible_and_pareto_optimal() {
        let quality = build_quality(burst_preferences(12.0));
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        assert!(!report.plans.is_empty(), "should find at least one plan");
        assert!(report.visited <= RecommenderConfig::fast().max_visited);
        for plan in &report.plans {
            assert!(plan.quality.feasible, "recommended plans must be feasible");
        }
        // Pareto property: no recommended plan dominates another.
        for a in &report.plans {
            for b in &report.plans {
                if a.plan != b.plan {
                    assert!(!atlas_ga::dominates(
                        &a.quality.objectives(),
                        &b.quality.objectives()
                    ));
                }
            }
        }
    }

    #[test]
    fn pinned_components_are_never_offloaded() {
        let prefs = burst_preferences(12.0)
            .pin(ComponentId(23), Location::OnPrem) // UserMongoDB
            .pin(ComponentId(25), Location::OnPrem); // PostStorageMongoDB
        let quality = build_quality(prefs);
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        for plan in &report.plans {
            assert_eq!(plan.plan.location(ComponentId(23)), Location::OnPrem);
            assert_eq!(plan.plan.location(ComponentId(25)), Location::OnPrem);
        }
    }

    #[test]
    fn selector_helpers_pick_extremes() {
        let quality = build_quality(burst_preferences(12.0));
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        let perf = report.performance_optimized().unwrap();
        let cost = report.cost_optimized().unwrap();
        let avail = report.availability_optimized().unwrap();
        for p in &report.plans {
            assert!(perf.quality.performance <= p.quality.performance + 1e-12);
            assert!(cost.quality.cost <= p.quality.cost + 1e-12);
            assert!(avail.quality.availability <= p.quality.availability + 1e-12);
        }
    }

    #[test]
    fn delta_offspring_scoring_never_changes_the_recommendation() {
        let quality = build_quality(burst_preferences(12.0));
        let on = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        let off = Recommender::new(&quality, RecommenderConfig::fast().with_delta_search(false))
            .recommend();
        assert_eq!(on.plans, off.plans, "delta scoring must be invisible");
        assert_eq!(on.visited, off.visited);
        assert_eq!(on.reward_progression, off.reward_progression);
        assert_eq!(on.eval.unique_evaluations, off.eval.unique_evaluations);
        assert!(!on.plans.is_empty());
    }

    #[test]
    fn budget_counts_unique_evaluations_and_reports_cache_hits() {
        let quality = build_quality(burst_preferences(12.0));
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        assert!(report.visited <= RecommenderConfig::fast().max_visited);
        assert_eq!(report.visited, report.eval.unique_evaluations);
        // The RL trainer re-scores the just-evaluated initial population, so
        // cache hits are guaranteed and do not burn budget.
        assert!(report.eval.cache_hits >= RecommenderConfig::fast().population);
        assert!(report.eval.cache_hit_rate() > 0.0);
        assert!(report.eval.wall_time_ms > 0.0);
        assert!(report.eval.threads >= 1);
    }

    #[test]
    fn warm_evaluators_are_shared_across_runs() {
        let quality = build_quality(burst_preferences(12.0));
        let config = RecommenderConfig::fast();
        let recommender = Recommender::new(&quality, config.clone());
        let evaluator = crate::eval::PlanEvaluator::new(&quality);
        let cold = recommender.recommend_with(&evaluator);
        let warm = recommender.recommend_with(&evaluator);
        // The budget is request-local, so the warm run replays the cold
        // run's trajectory bit-for-bit — entirely from the shared cache.
        assert_eq!(warm.plans, cold.plans, "cache warmth never changes plans");
        assert_eq!(warm.visited, cold.visited);
        assert_eq!(
            warm.eval.unique_evaluations, 0,
            "the warm run computed nothing of its own"
        );
        assert!(warm.eval.cache_hits > 0);
        // The per-request view splits what the lifetime view aggregates.
        assert_eq!(cold.eval.unique_evaluations, cold.visited);
        assert!(warm.eval_lifetime.cache_hits >= cold.eval_lifetime.cache_hits);
        assert_eq!(evaluator.unique_evaluations(), cold.visited);
        assert!(!warm.plans.is_empty());
    }

    #[test]
    fn rl_strategy_records_reward_progression_and_uniform_does_not() {
        let quality = build_quality(burst_preferences(12.0));
        let rl = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        assert!(!rl.reward_progression.is_empty());
        let uniform =
            Recommender::new(&quality, RecommenderConfig::fast().with_uniform_crossover())
                .recommend();
        assert!(uniform.reward_progression.is_empty());
        assert!(!uniform.plans.is_empty());
    }
}
