//! The DRL-based genetic algorithm producing migration recommendations
//! (paper §4.2.1, Figure 5 steps ①–⑤).
//!
//! The search keeps a small population of plans, evaluates their three
//! quality indicators, keeps the NSGA-II survivors, pairs parents with a
//! binary tournament, and creates offspring either with the learned
//! reward-driven crossover agent (Atlas) or with uniform crossover (the
//! affinity-style baseline ablation). The search budget is expressed as the
//! total number of plans visited (the paper caps all multi-plan approaches
//! at 10,000 ≈ 0.002 % of the space).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use atlas_ga::nsga2::survive;
use atlas_ga::{alphabet_mutation, binary_tournament, pareto_front_indices, uniform_crossover};
use atlas_sim::SiteId;

use crate::eval::{EvalStats, PlanEvaluator};
use crate::plan::MigrationPlan;
use crate::quality::{PlanQuality, QualityModel};
use crate::rl_crossover::{CrossoverAgent, RlCrossoverConfig};

/// Which crossover operator the search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossoverStrategy {
    /// The reward-driven learned crossover (Atlas).
    ReinforcementLearning,
    /// Plain uniform crossover + mutation (NSGA-II baseline of Figure 21a).
    Uniform,
}

/// Configuration of the recommender.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommenderConfig {
    /// Population size (the paper uses 100).
    pub population: usize,
    /// Search budget: *unique* candidate plans evaluated, including the
    /// initial population and the RL training rollouts (the paper caps all
    /// multi-plan approaches at 10,000). Duplicate plans are served from the
    /// shared evaluation cache and do not burn budget.
    pub max_visited: usize,
    /// Mutation rate applied to offspring (keeps diversity).
    pub mutation_rate: f64,
    /// Crossover operator.
    pub strategy: CrossoverStrategy,
    /// Configuration of the RL crossover agent (ignored for
    /// [`CrossoverStrategy::Uniform`]).
    pub rl: RlCrossoverConfig,
    /// Random seed.
    pub seed: u64,
    /// Worker threads of the plan evaluator (`0` = one per available core).
    /// The thread count never changes the recommendation, only its speed.
    pub threads: usize,
    /// Structure-of-arrays lane width of the plan evaluator (`0` = the
    /// default [`crate::eval::LANE_WIDTH`], `1` = the scalar per-plan
    /// path). Like the thread count, the lane width never changes the
    /// recommendation, only its speed.
    pub lane_width: usize,
}

impl Default for RecommenderConfig {
    fn default() -> Self {
        Self {
            population: 100,
            max_visited: 10_000,
            mutation_rate: 0.02,
            strategy: CrossoverStrategy::ReinforcementLearning,
            rl: RlCrossoverConfig::default(),
            seed: 23,
            threads: 0,
            lane_width: 0,
        }
    }
}

impl RecommenderConfig {
    /// A light-weight configuration for unit tests and examples.
    pub fn fast() -> Self {
        Self {
            population: 24,
            max_visited: 600,
            mutation_rate: 0.03,
            strategy: CrossoverStrategy::ReinforcementLearning,
            rl: RlCrossoverConfig {
                iterations: 120,
                actor_hidden: vec![48, 48],
                ..RlCrossoverConfig::default()
            },
            seed: 23,
            threads: 0,
            lane_width: 0,
        }
    }

    /// Switch to plain uniform crossover (builder style).
    pub fn with_uniform_crossover(mut self) -> Self {
        self.strategy = CrossoverStrategy::Uniform;
        self
    }

    /// Replace the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the evaluator thread count (builder style; `0` = one per
    /// available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replace the evaluator lane width (builder style; `0` = the default
    /// [`crate::eval::LANE_WIDTH`], `1` = the scalar per-plan path).
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width;
        self
    }
}

/// One recommended plan together with its predicted quality.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendedPlan {
    /// The plan itself.
    pub plan: MigrationPlan,
    /// Its predicted quality.
    pub quality: PlanQuality,
}

/// Summary of one recommendation run.
#[derive(Debug, Clone)]
pub struct RecommendationReport {
    /// The Pareto-optimal plans found, sorted by predicted performance.
    pub plans: Vec<RecommendedPlan>,
    /// Number of *unique* candidate plans evaluated — what the
    /// [`RecommenderConfig::max_visited`] budget counts. Duplicates served
    /// from the evaluation cache appear in [`Self::eval`] as cache hits.
    pub visited: usize,
    /// Reward progression of the crossover agent (empty for uniform
    /// crossover) — the curve of paper Figure 21b.
    pub reward_progression: Vec<f64>,
    /// Evaluation statistics of the shared plan evaluator: unique
    /// evaluations, cache hits, scoring wall time and thread count.
    pub eval: EvalStats,
}

impl RecommendationReport {
    /// The plan with the best (lowest) predicted performance impact.
    pub fn performance_optimized(&self) -> Option<&RecommendedPlan> {
        self.plans.iter().min_by(|a, b| {
            a.quality
                .performance
                .partial_cmp(&b.quality.performance)
                .expect("finite")
        })
    }

    /// The plan with the least predicted disruption, ties broken by
    /// performance.
    pub fn availability_optimized(&self) -> Option<&RecommendedPlan> {
        self.plans.iter().min_by(|a, b| {
            (a.quality.availability, a.quality.performance)
                .partial_cmp(&(b.quality.availability, b.quality.performance))
                .expect("finite")
        })
    }

    /// The cheapest plan, ties broken by performance.
    pub fn cost_optimized(&self) -> Option<&RecommendedPlan> {
        self.plans.iter().min_by(|a, b| {
            (a.quality.cost, a.quality.performance)
                .partial_cmp(&(b.quality.cost, b.quality.performance))
                .expect("finite")
        })
    }
}

/// The DRL-based genetic recommender.
pub struct Recommender<'a> {
    quality: &'a QualityModel,
    config: RecommenderConfig,
}

impl<'a> Recommender<'a> {
    /// Create a recommender over a quality model.
    pub fn new(quality: &'a QualityModel, config: RecommenderConfig) -> Self {
        Self { quality, config }
    }

    /// Run the search and return the Pareto-optimal recommendations.
    ///
    /// All scoring goes through a fresh [`PlanEvaluator`] with
    /// [`RecommenderConfig::threads`] workers; use [`Self::recommend_with`]
    /// to share a warm evaluator across runs.
    pub fn recommend(&self) -> RecommendationReport {
        let evaluator = PlanEvaluator::new(self.quality)
            .with_threads(self.config.threads)
            .with_lane_width(self.config.lane_width);
        self.recommend_with(&evaluator)
    }

    /// Run the search on a caller-supplied evaluator, sharing its memo cache
    /// (and accumulating into its statistics). The budget counts unique
    /// evaluations performed *by this run*: plans already cached by previous
    /// runs are free.
    pub fn recommend_with(&self, evaluator: &PlanEvaluator<'_>) -> RecommendationReport {
        let n = self.quality.component_count();
        let site_count = self.quality.site_count();
        // The gene alphabet of the search: every site of the catalog. For
        // the paper's two-site model this is {on-prem, cloud} and the whole
        // search consumes the random stream exactly like the historical
        // binary encoding (uniform crossover draws one bool per gene either
        // way; the alphabet mutation degenerates to a bit flip).
        let site_alphabet: Vec<SiteId> = (0..site_count as u16).map(SiteId).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let already_cached = evaluator.unique_evaluations();
        let visited = |evaluator: &PlanEvaluator<'_>| {
            evaluator
                .unique_evaluations()
                .saturating_sub(already_cached)
        };
        // The budget counts unique evaluations, so a converged population
        // producing mostly cached offspring could spin for a long time; cap
        // the total number of evaluation *requests* as a safety valve.
        let mut requested = 0usize;
        let request_cap = self.config.max_visited.saturating_mul(8).max(64);

        // ① Population initialisation: random plans that respect the pins
        // (cheap to enforce up-front) with varying off-prem fractions.
        // Off-prem genes pick their site uniformly; in the two-site model
        // the site is forced (no extra draw), preserving the historical
        // random stream.
        let mut population: Vec<MigrationPlan> = Vec::with_capacity(self.config.population);
        while population.len() < self.config.population {
            let cloud_fraction = rng.gen_range(0.05..0.95);
            let sites: Vec<SiteId> = (0..n)
                .map(|_| random_site(&mut rng, cloud_fraction, site_count))
                .collect();
            let mut plan = MigrationPlan::from_sites(sites);
            self.apply_pins(&mut plan);
            population.push(plan);
        }
        let mut qualities: Vec<PlanQuality> = evaluator.evaluate_batch(&population);
        requested += population.len();

        // Train the RL crossover agent on the initial population (the paper
        // trains Λ_θ during the application-learning phase). Each training
        // rollout evaluates one child plan; unique ones count against the
        // budget.
        let mut agent = None;
        let mut reward_progression = Vec::new();
        if self.config.strategy == CrossoverStrategy::ReinforcementLearning {
            let mut rl_config = self.config.rl.clone();
            // Keep training within half of the remaining budget.
            let budget = (self.config.max_visited.saturating_sub(visited(evaluator))) / 2;
            rl_config.iterations = rl_config.iterations.min(budget.max(1));
            let mut a = CrossoverAgent::new(n, rl_config).with_site_count(site_count);
            reward_progression = a.train(evaluator, &population);
            requested += reward_progression.len() + population.len();
            agent = Some(a);
        }

        // ②–⑤ Generations: evaluate, survive, pair, cross over. One fused
        // non-dominated sort per generation yields both the survivors and
        // the rank/crowding driving the tournaments.
        while visited(evaluator) < self.config.max_visited && requested < request_cap {
            let feasible: Vec<bool> = qualities.iter().map(|q| q.feasible).collect();
            let objectives: Vec<[f64; 3]> = qualities.iter().map(|q| q.objectives()).collect();
            let survival = survive(&objectives, &feasible, self.config.population);
            population = survival
                .selected
                .iter()
                .map(|&i| population[i].clone())
                .collect();
            qualities = survival.selected.iter().map(|&i| qualities[i]).collect();
            let (rank, crowding) = (survival.rank, survival.crowding);

            // saturating: a concurrently shared evaluator can grow between
            // the loop guard and this read.
            let offspring_target = self
                .config
                .population
                .min(self.config.max_visited.saturating_sub(visited(evaluator)))
                .max(1);
            let mut offspring = Vec::with_capacity(offspring_target);
            while offspring.len() < offspring_target {
                let a = binary_tournament(&mut rng, &rank, &crowding);
                let b = binary_tournament(&mut rng, &rank, &crowding);
                let child = match (&mut agent, self.config.strategy) {
                    (Some(agent), CrossoverStrategy::ReinforcementLearning) => {
                        agent.crossover(&population[a], &population[b])
                    }
                    _ => {
                        let sites = uniform_crossover(
                            &mut rng,
                            population[a].sites(),
                            population[b].sites(),
                        );
                        MigrationPlan::from_sites(sites)
                    }
                };
                let mut sites = child.to_sites();
                alphabet_mutation(
                    &mut rng,
                    &mut sites,
                    &site_alphabet,
                    self.config.mutation_rate,
                );
                let mut child = MigrationPlan::from_sites(sites);
                self.apply_pins(&mut child);
                offspring.push(child);
            }
            let offspring_quality: Vec<PlanQuality> = evaluator.evaluate_batch(&offspring);
            requested += offspring.len();
            population.extend(offspring);
            qualities.extend(offspring_quality);
        }

        // Final survival + Pareto extraction over feasible plans only.
        let feasible_indices: Vec<usize> = (0..population.len())
            .filter(|&i| qualities[i].feasible)
            .collect();
        let candidate_indices: Vec<usize> = if feasible_indices.is_empty() {
            (0..population.len()).collect()
        } else {
            feasible_indices
        };
        let objectives: Vec<[f64; 3]> = candidate_indices
            .iter()
            .map(|&i| qualities[i].objectives())
            .collect();
        let front = pareto_front_indices(&objectives);
        let mut seen = HashSet::new();
        let mut plans: Vec<RecommendedPlan> = front
            .into_iter()
            .map(|k| candidate_indices[k])
            .filter(|&i| seen.insert(population[i].to_sites()))
            .map(|i| RecommendedPlan {
                plan: population[i].clone(),
                quality: qualities[i],
            })
            .collect();
        plans.sort_by(|a, b| {
            a.quality
                .performance
                .partial_cmp(&b.quality.performance)
                .expect("finite")
        });

        RecommendationReport {
            plans,
            visited: visited(evaluator),
            reward_progression,
            eval: evaluator.stats(),
        }
    }

    fn apply_pins(&self, plan: &mut MigrationPlan) {
        for (&c, &site) in &self.quality.preferences().pinned {
            if c.0 < plan.len() {
                plan.set(c, site);
            }
        }
        // Site-set pins: snap a violating gene to the set's first site.
        for (&c, allowed) in &self.quality.preferences().allowed_sites {
            if c.0 < plan.len() && !allowed.contains(&plan.site(c)) {
                plan.set(c, allowed[0]);
            }
        }
    }
}

/// Draw one placement gene: off-prem with probability `cloud_fraction`,
/// and if so a uniformly chosen elastic site.
///
/// The two-site case spends exactly one `f64` draw per gene (the site is
/// forced, no second draw), matching the binary sampler this generalises —
/// the invariant that keeps 2-site searches bit-identical to the
/// historical random stream. Shared by the Atlas recommender and the
/// GA/random-search baselines so the two search families cannot drift
/// apart in sampling semantics.
pub fn random_site<R: Rng + ?Sized>(rng: &mut R, cloud_fraction: f64, site_count: usize) -> SiteId {
    if rng.gen::<f64>() < cloud_fraction {
        if site_count <= 2 {
            SiteId::CLOUD
        } else {
            SiteId(rng.gen_range(1..site_count as u16))
        }
    } else {
        SiteId::ON_PREM
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayInjector;
    use crate::footprint::FootprintLearner;
    use crate::preferences::MigrationPreferences;
    use crate::profile::ApplicationProfile;
    use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
    use atlas_cloud::{CostModel, PricingModel, ResourceEstimator, ScalingEstimator};
    use atlas_sim::{
        ClusterSpec, ComponentId, Location, OverloadModel, Placement, SimConfig, Simulator,
    };
    use atlas_telemetry::TelemetryStore;

    fn build_quality(preferences: MigrationPreferences) -> QualityModel {
        let app = social_network(SocialNetworkOptions::default());
        let n = app.component_count();
        let current = Placement::all_onprem(n);
        let sim = Simulator::new(
            app.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 8,
            },
        );
        let schedule =
            WorkloadGenerator::new(WorkloadOptions::social_network_default().with_seed(8))
                .generate(&app)
                .unwrap();
        let store = TelemetryStore::new();
        sim.run(&schedule, &store);

        let component_index: Vec<String> =
            app.components().iter().map(|c| c.name.clone()).collect();
        let stateful: Vec<String> = app
            .stateful_components()
            .into_iter()
            .map(|c| app.component_name(c).to_string())
            .collect();
        let profile = ApplicationProfile::learn(&store, &stateful, 25);
        let footprint = FootprintLearner::default().learn(&store);
        let injector = DelayInjector::new(ClusterSpec::default().network, component_index.clone());
        let demand = ScalingEstimator::with_scale(5.0).estimate(&store, &component_index, 8, 600);
        QualityModel::new(
            profile,
            footprint,
            injector,
            CostModel::new(PricingModel::default()),
            demand,
            preferences,
            current,
            component_index,
        )
    }

    /// Preferences forcing some offloading: on-prem CPU may not hold all of
    /// the burst demand, and user data must stay on-prem.
    fn burst_preferences(quality_cpu_limit: f64) -> MigrationPreferences {
        MigrationPreferences::with_cpu_limit(quality_cpu_limit)
    }

    #[test]
    fn recommendations_are_feasible_and_pareto_optimal() {
        let quality = build_quality(burst_preferences(12.0));
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        assert!(!report.plans.is_empty(), "should find at least one plan");
        assert!(report.visited <= RecommenderConfig::fast().max_visited);
        for plan in &report.plans {
            assert!(plan.quality.feasible, "recommended plans must be feasible");
        }
        // Pareto property: no recommended plan dominates another.
        for a in &report.plans {
            for b in &report.plans {
                if a.plan != b.plan {
                    assert!(!atlas_ga::dominates(
                        &a.quality.objectives(),
                        &b.quality.objectives()
                    ));
                }
            }
        }
    }

    #[test]
    fn pinned_components_are_never_offloaded() {
        let prefs = burst_preferences(12.0)
            .pin(ComponentId(23), Location::OnPrem) // UserMongoDB
            .pin(ComponentId(25), Location::OnPrem); // PostStorageMongoDB
        let quality = build_quality(prefs);
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        for plan in &report.plans {
            assert_eq!(plan.plan.location(ComponentId(23)), Location::OnPrem);
            assert_eq!(plan.plan.location(ComponentId(25)), Location::OnPrem);
        }
    }

    #[test]
    fn selector_helpers_pick_extremes() {
        let quality = build_quality(burst_preferences(12.0));
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        let perf = report.performance_optimized().unwrap();
        let cost = report.cost_optimized().unwrap();
        let avail = report.availability_optimized().unwrap();
        for p in &report.plans {
            assert!(perf.quality.performance <= p.quality.performance + 1e-12);
            assert!(cost.quality.cost <= p.quality.cost + 1e-12);
            assert!(avail.quality.availability <= p.quality.availability + 1e-12);
        }
    }

    #[test]
    fn budget_counts_unique_evaluations_and_reports_cache_hits() {
        let quality = build_quality(burst_preferences(12.0));
        let report = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        assert!(report.visited <= RecommenderConfig::fast().max_visited);
        assert_eq!(report.visited, report.eval.unique_evaluations);
        // The RL trainer re-scores the just-evaluated initial population, so
        // cache hits are guaranteed and do not burn budget.
        assert!(report.eval.cache_hits >= RecommenderConfig::fast().population);
        assert!(report.eval.cache_hit_rate() > 0.0);
        assert!(report.eval.wall_time_ms > 0.0);
        assert!(report.eval.threads >= 1);
    }

    #[test]
    fn warm_evaluators_are_shared_across_runs() {
        let quality = build_quality(burst_preferences(12.0));
        let config = RecommenderConfig::fast();
        let recommender = Recommender::new(&quality, config.clone());
        let evaluator = crate::eval::PlanEvaluator::new(&quality);
        let cold = recommender.recommend_with(&evaluator);
        let warm = recommender.recommend_with(&evaluator);
        // The second run replays the first from the shared cache (its whole
        // trajectory is hits), then spends its own budget searching deeper.
        assert!(warm.eval.cache_hits > cold.eval.cache_hits);
        assert!(warm.visited <= config.max_visited);
        assert!(!warm.plans.is_empty());
        // Budgets are relative to each run: together the two runs evaluated
        // at most 2 × max_visited unique plans.
        assert!(evaluator.unique_evaluations() <= 2 * config.max_visited);
    }

    #[test]
    fn rl_strategy_records_reward_progression_and_uniform_does_not() {
        let quality = build_quality(burst_preferences(12.0));
        let rl = Recommender::new(&quality, RecommenderConfig::fast()).recommend();
        assert!(!rl.reward_progression.is_empty());
        let uniform =
            Recommender::new(&quality, RecommenderConfig::fast().with_uniform_crossover())
                .recommend();
        assert!(uniform.reward_progression.is_empty());
        assert!(!uniform.plans.is_empty());
    }
}
