//! Shared plan-evaluation layer: cached, batched, thread-parallel scoring.
//!
//! Every search path in Atlas — the DRL-GA recommender, the RL crossover
//! trainer, the baselines and the bench harness — ultimately spends its
//! budget in [`QualityModel::evaluate`]. This module wraps that hot path in
//! a [`PlanEvaluator`]:
//!
//! * **Memoisation** — results are cached keyed on [`MigrationPlan`]'s
//!   `Hash`, so duplicate plans (common after pin-application and low-rate
//!   mutation) are scored exactly once. The cache is sharded into
//!   [`MEMO_SHARDS`] independently-locked segments keyed by the top bits of
//!   the plan hash, so concurrent recommendation requests sharing one cache
//!   (the multi-tenant [`hub`](crate::hub)) never serialise on a single
//!   mutex;
//! * **Batching** — [`PlanEvaluator::evaluate_batch`] dedupes a whole
//!   generation and fans the uncached plans out across
//!   [`std::thread::scope`] workers ([`QualityModel`] is `Send + Sync`, so
//!   scoring needs no locks);
//! * **Statistics** — [`EvalStats`] reports unique evaluations, cache hits
//!   and scoring wall time, surfaced in
//!   [`RecommendationReport`](crate::recommender::RecommendationReport).
//!   Each evaluator handle additionally keeps *local* counters
//!   ([`PlanEvaluator::local_stats`]) accumulated off the shared path, so a
//!   request served over a shared cache can attribute its own hit rate.
//!
//! Evaluation is pure, so neither the cache nor the thread count changes any
//! score: a recommendation run is bit-identical at 1 or N worker threads.
//!
//! # Example
//!
//! Score a small batch of plans through the evaluator and observe that
//! duplicates hit the cache (the quality model is learned from a compressed
//! simulated run of the social network):
//!
//! ```
//! use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
//! use atlas_core::eval::PlanEvaluator;
//! use atlas_core::{Atlas, AtlasConfig, MigrationPlan, MigrationPreferences};
//! use atlas_sim::{OverloadModel, Placement, SimConfig, Simulator};
//! use atlas_telemetry::TelemetryStore;
//!
//! let app = social_network(SocialNetworkOptions::default());
//! let current = Placement::all_onprem(app.component_count());
//! let mut options = WorkloadOptions::social_network_default().with_seed(5);
//! options.profile.day_seconds = 60; // compressed day keeps the example fast
//! let schedule = WorkloadGenerator::new(options).generate(&app).unwrap();
//! let store = TelemetryStore::new();
//! Simulator::new(
//!     app.clone(),
//!     current.clone(),
//!     SimConfig {
//!         overload: OverloadModel::disabled(),
//!         ..SimConfig::default()
//!     },
//! )
//! .run(&schedule, &store);
//!
//! let component_index: Vec<String> =
//!     app.components().iter().map(|c| c.name.clone()).collect();
//! let mut config = AtlasConfig::new(component_index, vec![]);
//! config.traces_per_api = 20;
//! config.horizon_steps = 4;
//! let mut atlas = Atlas::new(config);
//! atlas.learn(&store);
//! let quality = atlas.quality_model(current, MigrationPreferences::default());
//!
//! let evaluator = PlanEvaluator::new(&quality);
//! let n = app.component_count();
//! let batch = vec![
//!     MigrationPlan::all_onprem(n),
//!     MigrationPlan::new(Placement::all_cloud(n)),
//!     MigrationPlan::all_onprem(n), // duplicate → cache hit
//! ];
//! let qualities = evaluator.evaluate_batch(&batch);
//! assert_eq!(qualities[0], qualities[2]);
//! assert_eq!(qualities[0], quality.evaluate(&batch[0]));
//! let stats = evaluator.stats();
//! assert_eq!(stats.unique_evaluations, 2);
//! assert_eq!(stats.cache_hits, 1);
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use atlas_sim::{ComponentId, SiteId};

use crate::plan::MigrationPlan;
use crate::quality::{PlanQuality, QualityModel, ScoredPlan};

/// Evaluation statistics of one [`PlanEvaluator`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Distinct plans scored by the underlying [`QualityModel`] (the cache
    /// size). This is the quantity the `max_visited` search budget counts.
    pub unique_evaluations: usize,
    /// Evaluation requests answered from the memo cache, including
    /// duplicates resolved inside a single batch.
    pub cache_hits: usize,
    /// Number of [`PlanEvaluator::evaluate_batch`] calls served.
    pub batches: usize,
    /// Wall-clock time spent scoring uncached plans, in milliseconds.
    /// Parallel batches count elapsed time once, not per worker.
    pub wall_time_ms: f64,
    /// Worker threads the evaluator fans batches out across.
    pub threads: usize,
    /// Milliseconds the quality model spent compiling its evaluation kernel
    /// at construction (see [`crate::kernel`]); `0.0` for scorers without a
    /// compiled kernel (e.g. the baselines' placement scorer).
    pub kernel_compile_ms: f64,
}

impl EvalStats {
    /// Total evaluation requests (unique evaluations + cache hits).
    pub fn requests(&self) -> usize {
        self.unique_evaluations + self.cache_hits
    }

    /// Fraction of requests answered from the cache (0.0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / requests as f64
        }
    }

    /// Unique plans scored per second of scoring wall time (0.0 when idle).
    pub fn evaluations_per_sec(&self) -> f64 {
        if self.wall_time_ms <= 0.0 {
            0.0
        } else {
            self.unique_evaluations as f64 * 1_000.0 / self.wall_time_ms
        }
    }

    /// The growth of this accounting stream since an `earlier` snapshot of
    /// it: the per-request view of a warm evaluator. Thread count and
    /// kernel compile time are properties of the evaluator, not of the
    /// interval, so they carry over from `self`.
    pub fn since(&self, earlier: &EvalStats) -> EvalStats {
        EvalStats {
            unique_evaluations: self
                .unique_evaluations
                .saturating_sub(earlier.unique_evaluations),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            batches: self.batches.saturating_sub(earlier.batches),
            wall_time_ms: (self.wall_time_ms - earlier.wall_time_ms).max(0.0),
            threads: self.threads,
            kernel_compile_ms: self.kernel_compile_ms,
        }
    }
}

/// Resolve a requested thread count: `0` means "one worker per available
/// core", anything else is used as given (minimum 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Minimum number of items each worker must receive before [`parallel_map`]
/// spawns a thread scope. Spawning scoped workers costs tens of
/// microseconds per batch; fanning out a generation-sized batch of cheap
/// kernel evaluations used to *lose* wall time (PR 3 measured a 0.91×
/// "speedup"), so small batches now run serially and large batches cap
/// their worker count at one worker per `MIN_ITEMS_PER_WORKER` items.
pub const MIN_ITEMS_PER_WORKER: usize = 16;

/// Fraction of components that may differ between an offspring and its
/// retained parent for the offspring to ride the incremental delta path in
/// [`PlanEvaluator::evaluate_offspring_batch`]. Above the threshold the
/// change set touches so many compiled traces that a delta re-score decays
/// into "scalar re-run plus bookkeeping" and loses to the lane-batched cold
/// path, so wide diffs (early-generation crossover between distant parents,
/// policy-decoded RL children) fall back to cold scoring. The routing is
/// purely a speed decision: the delta and cold paths are pinned
/// bit-identical, so the threshold never changes a score.
pub const DELTA_DIFF_THRESHOLD: f64 = 0.25;

/// Default number of plans scored per structure-of-arrays lane group by
/// [`PlanEvaluator::evaluate_batch`] (see
/// [`QualityModel::evaluate_lanes`]). Sixteen lanes amortise the op decode
/// and wave bookkeeping of the compiled kernel without spilling the
/// per-lane cursor/stack working set out of cache (measured on a
/// 250-component scenario: 16 lanes ≈ 1.5× the throughput of 8, and 32
/// adds only a few percent more).
pub const LANE_WIDTH: usize = 16;

/// Number of independently-locked segments a [`MemoCache`] splits its
/// entries across (a power of two; the shard is the top bits of the
/// [`PlanKeyHasher`] key hash). One global mutex made the memo cache the
/// serialisation point of multi-tenant serving: every concurrent
/// recommendation request funnelled its probes and inserts through the same
/// lock. Sixteen shards spread a uniform hash across sixteen locks, so the
/// expected contention at N concurrent requests drops by 16× while the
/// aggregate accounting stays exact (per-shard counters merge on read).
pub const MEMO_SHARDS: usize = 16;

/// Deterministically map a pure function over a slice with up to `threads`
/// scoped workers. Results come back in input order regardless of the thread
/// count. Batches smaller than 2 × [`MIN_ITEMS_PER_WORKER`] run serially on
/// the calling thread (no scope is spawned); larger batches are distributed
/// in contiguous chunks across at most `items.len() /
/// MIN_ITEMS_PER_WORKER` workers, so every spawned thread has enough work
/// to amortise its start-up cost.
///
/// This is the fan-out primitive shared by [`PlanEvaluator`] and the cached
/// baseline scorer in `atlas-baselines`.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_threads(threads)
        .min(items.len() / MIN_ITEMS_PER_WORKER)
        .max(1);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every worker fills its chunk"))
        .collect()
}

/// Like [`parallel_map`], but `f` maps whole *groups* of up to `group`
/// consecutive items to one result per item (the shape of the lane-batched
/// kernel). Worker chunks are rounded to whole groups so no group straddles
/// a thread boundary; results come back in input order, and the serial
/// fall-back applies the same [`MIN_ITEMS_PER_WORKER`] rule in items (not
/// groups). `f` must return exactly as many results as it was given items.
pub fn parallel_map_grouped<T, R, F>(items: &[T], threads: usize, group: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let group = group.max(1);
    let workers = effective_threads(threads)
        .min(items.len() / MIN_ITEMS_PER_WORKER)
        .max(1);
    if workers <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(group) {
            let values = f(chunk);
            debug_assert_eq!(values.len(), chunk.len(), "one result per item");
            out.extend(values);
        }
        return out;
    }
    let groups = items.len().div_ceil(group);
    let chunk = groups.div_ceil(workers) * group;
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (in_group, out_group) in in_chunk.chunks(group).zip(out_chunk.chunks_mut(group))
                {
                    let values = f(in_group);
                    debug_assert_eq!(values.len(), in_group.len(), "one result per item");
                    for (slot, value) in out_group.iter_mut().zip(values) {
                        *slot = Some(value);
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every worker fills its chunk"))
        .collect()
}

/// Deterministic word-folding hasher for plan-keyed tables (the memo cache,
/// its shard selector, the batch dedupe maps and the recommender's
/// request-local visited set). A plan key hashes as hundreds of site ids,
/// and the standard library's DoS-resistant SipHash spends more time on
/// that than the delta re-score the lookup guards; these tables are
/// process-local and never fed attacker-chosen keys, so a multiply-xor
/// fold (one rotate + xor + multiply per 8-byte word) is safe and several
/// times cheaper. Only lookup speed changes: nothing iterates these maps,
/// so bucket order — the only thing a hasher can influence — is
/// unobservable.
#[derive(Debug, Default)]
pub struct PlanKeyHasher(u64);

impl Hasher for PlanKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        let fold = |state: u64, word: u64| {
            (state.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95)
        };
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.0 = fold(self.0, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.0 = fold(self.0, u64::from_le_bytes(word));
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` keyed through [`PlanKeyHasher`].
type PlanKeyMap<K, V> = HashMap<K, V, BuildHasherDefault<PlanKeyHasher>>;

/// A `HashSet` keyed through [`PlanKeyHasher`] — the recommender's
/// request-local visited-budget tracker.
pub type PlanKeySet<K> = HashSet<K, BuildHasherDefault<PlanKeyHasher>>;

/// The [`PlanKeyHasher`] hash of one key (shared by the shard selector and
/// the shard maps — the [`std::borrow::Borrow`] contract keeps borrowed and
/// owned forms agreeing).
fn plan_key_hash<Q: Hash + ?Sized>(key: &Q) -> u64 {
    let mut hasher = PlanKeyHasher::default();
    key.hash(&mut hasher);
    hasher.finish()
}

/// The shard index of one key hash: the top bits, so the shard selector and
/// the in-shard bucket index (which hashbrown takes from the low bits) stay
/// independent.
fn shard_of(hash: u64) -> usize {
    (hash >> (64 - MEMO_SHARDS.trailing_zeros())) as usize & (MEMO_SHARDS - 1)
}

/// One independently-locked segment of a [`MemoCache`]: its slice of the
/// entries plus the hit counter for probes that landed here. Keeping the
/// counter inside the shard means hit accounting rides the lock the probe
/// already holds — no shared atomic on the hot path.
#[derive(Debug)]
struct MemoShard<K, V> {
    cache: PlanKeyMap<K, V>,
    cache_hits: usize,
}

/// Outcome counters of one batched cache lookup, as seen by the caller that
/// issued it: how many requests the cache answered, how many unique keys
/// the batch computed, and the batch wall time. [`PlanEvaluator`] folds
/// these into its evaluator-local statistics so per-request accounting
/// stays exact even when many evaluators share one cache.
#[derive(Debug, Clone, Copy)]
pub struct BatchOutcome {
    /// Requests answered from the cache, including in-batch duplicates.
    pub hits: usize,
    /// Unique keys computed by this batch.
    pub computed: usize,
    /// Wall time of the whole batch (probe + compute + insert).
    pub elapsed: Duration,
}

/// The memoisation + batching core shared by [`PlanEvaluator`] and the
/// baselines' placement scorer: a result cache sharded into [`MEMO_SHARDS`]
/// independently-locked segments (shard = top bits of the
/// [`PlanKeyHasher`] key hash) with hit/batch/wall-time accounting and a
/// deduplicated, thread-parallel batch path. The compute function is
/// supplied per call, so one cache can serve any pure scoring function over
/// its key type — and one cache can serve many concurrent callers without
/// funnelling them through a single mutex.
///
/// Batch-level counters (`batches`, in-batch duplicate hits, wall time) are
/// plain atomics bumped once per batch, not per key; per-key hit counters
/// live inside the shard the probe already locked.
#[derive(Debug)]
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<MemoShard<K, V>>>,
    batches: AtomicUsize,
    /// Requests served by in-batch duplicates of keys being computed (they
    /// hit no shard, so they are accounted once per batch here).
    dup_hits: AtomicUsize,
    wall_time_nanos: AtomicU64,
}

impl<K, V> Default for MemoCache<K, V> {
    fn default() -> Self {
        Self {
            shards: (0..MEMO_SHARDS)
                .map(|_| {
                    Mutex::new(MemoShard {
                        cache: PlanKeyMap::default(),
                        cache_hits: 0,
                    })
                })
                .collect(),
            batches: AtomicUsize::new(0),
            dup_hits: AtomicUsize::new(0),
            wall_time_nanos: AtomicU64::new(0),
        }
    }
}

impl<K, V> MemoCache<K, V>
where
    K: Hash + Eq + Clone,
    V: Copy,
{
    /// Probe one key, counting a cache hit on success. The caller computes
    /// and [`Self::insert`]s on a miss — the split keeps the (possibly
    /// expensive) compute outside every lock.
    pub fn probe(&self, key: &K) -> Option<V> {
        let mut shard = self.shards[shard_of(plan_key_hash(key))].lock();
        match shard.cache.get(key) {
            Some(&value) => {
                shard.cache_hits += 1;
                Some(value)
            }
            None => None,
        }
    }

    /// Record one computed value and the wall time its computation took.
    /// Two callers racing to compute the same key both insert the same
    /// value (computation is pure), so last-write-wins is benign.
    pub fn insert(&self, key: &K, value: V, elapsed: Duration) {
        self.wall_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        let mut shard = self.shards[shard_of(plan_key_hash(key))].lock();
        shard.cache.insert(key.clone(), value);
    }

    /// Probe a whole batch, returning the cached value per input position.
    /// Positions map to shards up front, then each shard is locked exactly
    /// once — a batch touches at most [`MEMO_SHARDS`] locks regardless of
    /// its size, and hits are counted in the shard that served them.
    pub fn probe_batch(&self, keys: &[K]) -> Vec<Option<V>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); MEMO_SHARDS];
        for (i, key) in keys.iter().enumerate() {
            by_shard[shard_of(plan_key_hash(key))].push(i);
        }
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        for (s, positions) in by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].lock();
            let mut hits = 0usize;
            for &i in positions {
                if let Some(&value) = shard.cache.get(&keys[i]) {
                    out[i] = Some(value);
                    hits += 1;
                }
            }
            shard.cache_hits += hits;
        }
        out
    }

    /// Record one batch's computed entries plus its accounting: the batch
    /// counter, the requests served by in-batch duplicates (`dup_hits`) and
    /// the batch wall time. Entries are grouped so each shard is locked
    /// once.
    pub fn insert_batch(&self, entries: &[(&K, V)], dup_hits: usize, elapsed: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.dup_hits.fetch_add(dup_hits, Ordering::Relaxed);
        self.wall_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); MEMO_SHARDS];
        for (i, (key, _)) in entries.iter().enumerate() {
            by_shard[shard_of(plan_key_hash(*key))].push(i);
        }
        for (s, positions) in by_shard.iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].lock();
            for &i in positions {
                let (key, value) = entries[i];
                shard.cache.insert(key.clone(), value);
            }
        }
    }

    /// Look up one key, computing and caching its value on a miss.
    pub fn get_or_compute(&self, key: &K, compute: impl FnOnce(&K) -> V) -> V {
        if let Some(value) = self.probe(key) {
            return value;
        }
        let start = Instant::now();
        let value = compute(key);
        self.insert(key, value, start.elapsed());
        value
    }

    /// The batched lookup core: dedupe the batch against the cache and
    /// against itself, compute the remaining unique keys with `compute_all`
    /// (one value per key, in first-appearance order), insert, and return
    /// the values in input order together with the [`BatchOutcome`]
    /// counters of this call.
    pub fn get_or_compute_batch_outcome<F>(
        &self,
        keys: &[K],
        compute_all: F,
    ) -> (Vec<V>, BatchOutcome)
    where
        F: FnOnce(&[&K]) -> Vec<V>,
    {
        let start = Instant::now();
        // Which cache/batch slot serves each input position.
        enum Slot<V> {
            Hit(V),
            Pending(usize),
        }
        let probed = self.probe_batch(keys);
        let mut uncached: Vec<&K> = Vec::new();
        let mut pending_of: PlanKeyMap<&K, usize> = PlanKeyMap::default();
        let mut slots: Vec<Slot<V>> = Vec::with_capacity(keys.len());
        let mut probe_hits = 0usize;
        let mut dup_hits = 0usize;
        for (key, cached) in keys.iter().zip(&probed) {
            if let Some(value) = cached {
                probe_hits += 1;
                slots.push(Slot::Hit(*value));
            } else if let Some(&k) = pending_of.get(key) {
                dup_hits += 1;
                slots.push(Slot::Pending(k));
            } else {
                let k = uncached.len();
                uncached.push(key);
                pending_of.insert(key, k);
                slots.push(Slot::Pending(k));
            }
        }
        let computed = compute_all(&uncached);
        debug_assert_eq!(computed.len(), uncached.len(), "one value per unique key");
        let elapsed = start.elapsed();
        let entries: Vec<(&K, V)> = uncached
            .iter()
            .copied()
            .zip(computed.iter().copied())
            .collect();
        self.insert_batch(&entries, dup_hits, elapsed);
        let values = slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Hit(value) => value,
                Slot::Pending(k) => computed[k],
            })
            .collect();
        (
            values,
            BatchOutcome {
                hits: probe_hits + dup_hits,
                computed: uncached.len(),
                elapsed,
            },
        )
    }

    /// Look up a batch of keys, returning values in input order. Cached and
    /// in-batch duplicate keys are computed once; the remaining unique keys
    /// fan out across up to `threads` scoped workers.
    pub fn get_or_compute_batch<F>(&self, keys: &[K], threads: usize, compute: F) -> Vec<V>
    where
        K: Sync,
        V: Send,
        F: Fn(&K) -> V + Sync,
    {
        self.get_or_compute_batch_outcome(keys, |uncached| {
            parallel_map(uncached, threads, |key| compute(key))
        })
        .0
    }

    /// Like [`Self::get_or_compute`], but looked up through a borrowed form
    /// of the key (e.g. `&[SiteId]` for a `Vec<SiteId>` cache), so probes
    /// that hit the cache never allocate an owned key. On a miss, `own`
    /// materialises the owned key for insertion and `compute` scores it.
    /// Accounting (hits, wall time) is identical to the owned entry point;
    /// the [`std::borrow::Borrow`] contract keeps the borrowed and owned
    /// hashes — and therefore the shard — in agreement.
    pub fn get_or_compute_with<Q>(
        &self,
        key: &Q,
        own: impl FnOnce(&Q) -> K,
        compute: impl FnOnce(&Q) -> V,
    ) -> V
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        {
            let mut shard = self.shards[shard_of(plan_key_hash(key))].lock();
            if let Some(&value) = shard.cache.get(key) {
                shard.cache_hits += 1;
                return value;
            }
        }
        let start = Instant::now();
        let value = compute(key);
        self.wall_time_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let mut shard = self.shards[shard_of(plan_key_hash(key))].lock();
        shard.cache.insert(own(key), value);
        value
    }

    /// Like [`Self::get_or_compute_batch`], but the uncached unique keys are
    /// computed in *groups* of up to `group` keys by `compute_group` (one
    /// value per key, in group order) — the entry point of the lane-batched
    /// kernel. Deduplication, ordering and accounting are identical to the
    /// per-key batch path.
    pub fn get_or_compute_batch_grouped<F>(
        &self,
        keys: &[K],
        threads: usize,
        group: usize,
        compute_group: F,
    ) -> Vec<V>
    where
        K: Sync,
        V: Send,
        F: Fn(&[&K]) -> Vec<V> + Sync,
    {
        self.get_or_compute_batch_outcome(keys, |uncached| {
            parallel_map_grouped(uncached, threads, group, |group_keys| {
                compute_group(group_keys)
            })
        })
        .0
    }

    /// Distinct keys computed so far (the cache size).
    pub fn unique(&self) -> usize {
        self.shards.iter().map(|s| s.lock().cache.len()).sum()
    }

    /// Requests answered from the cache so far.
    pub fn cache_hits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().cache_hits)
            .sum::<usize>()
            + self.dup_hits.load(Ordering::Relaxed)
    }

    /// Snapshot of the accounting as [`EvalStats`], stamped with the worker
    /// count the owner fans batches out across. Shard counters are merged
    /// on read, so the totals are exact.
    pub fn stats(&self, threads: usize) -> EvalStats {
        let mut unique_evaluations = 0usize;
        let mut cache_hits = 0usize;
        for shard in &self.shards {
            let shard = shard.lock();
            unique_evaluations += shard.cache.len();
            cache_hits += shard.cache_hits;
        }
        EvalStats {
            unique_evaluations,
            cache_hits: cache_hits + self.dup_hits.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            wall_time_ms: self.wall_time_nanos.load(Ordering::Relaxed) as f64 / 1e6,
            threads,
            kernel_compile_ms: 0.0,
        }
    }
}

/// Which cache/batch slot serves one input position of a scored batch:
/// either a memo-cache hit (quality only — the cache stores no per-trace
/// state) or the `k`-th freshly computed [`ScoredPlan`].
enum ScoredSlot {
    Hit(PlanQuality),
    Pending(usize),
}

/// The ascending change set turning `parent` into `child`: one
/// `(component, new site)` entry per differing position.
fn diff_changes(parent: &[SiteId], child: &[SiteId]) -> Vec<(ComponentId, SiteId)> {
    parent
        .iter()
        .zip(child)
        .enumerate()
        .filter(|&(_, (a, b))| a != b)
        .map(|(c, (_, &to))| (ComponentId(c), to))
        .collect()
}

/// Where a [`PlanEvaluator`]'s memo cache lives: owned by the evaluator
/// (the default, one cache per evaluator lifetime) or borrowed from a
/// longer-lived holder — the multi-tenant hub publishes one cache per model
/// epoch and every request served at that epoch shares it, so a relearn
/// (which publishes a fresh epoch, and with it a fresh cache) can never
/// leak a stale score into a request.
#[derive(Debug)]
enum CacheRef<'a> {
    Owned(MemoCache<MigrationPlan, PlanQuality>),
    Shared(&'a MemoCache<MigrationPlan, PlanQuality>),
}

/// Per-evaluator accounting, accumulated off the shared cache path: what
/// *this handle* computed and what the cache answered for it. Atomics keep
/// the evaluator `Sync`; they are only ever touched by the evaluator's own
/// calls, so they never contend.
#[derive(Debug, Default)]
struct LocalCounters {
    computed: AtomicUsize,
    hits: AtomicUsize,
    batches: AtomicUsize,
    wall_time_nanos: AtomicU64,
}

/// Cached, batched, thread-parallel front end to a [`QualityModel`].
///
/// The evaluator is `Sync`: it can be shared by reference across the search,
/// the RL trainer and bench code, accumulating one cache and one set of
/// statistics. See the [module docs](self) for an end-to-end example.
///
/// The memo cache is either owned (the default) or shared
/// ([`Self::with_shared_cache`]) — the multi-tenant hub gives each
/// concurrent request its own evaluator handle over the tenant's
/// epoch-stamped cache, so [`Self::stats`] reports the cache lifetime while
/// [`Self::local_stats`] reports just this handle's requests.
#[derive(Debug)]
pub struct PlanEvaluator<'a> {
    quality: &'a QualityModel,
    threads: usize,
    lane_width: usize,
    cache: CacheRef<'a>,
    local: LocalCounters,
}

impl<'a> PlanEvaluator<'a> {
    /// Wrap a quality model with one worker per available core and the
    /// default [`LANE_WIDTH`] batch lanes.
    pub fn new(quality: &'a QualityModel) -> Self {
        Self {
            quality,
            threads: effective_threads(0),
            lane_width: LANE_WIDTH,
            cache: CacheRef::Owned(MemoCache::default()),
            local: LocalCounters::default(),
        }
    }

    /// Wrap a quality model over a caller-owned memo cache, shared with
    /// other evaluators of the *same model*: the multi-tenant serving path,
    /// where every request at one model epoch warms the same cache.
    /// Scores are pure, so sharing never changes a result — only the hit
    /// rate. The caller must pair the cache with the model it was filled
    /// from (the hub re-publishes cache + model together per epoch).
    pub fn with_shared_cache(
        quality: &'a QualityModel,
        cache: &'a MemoCache<MigrationPlan, PlanQuality>,
    ) -> Self {
        Self {
            quality,
            threads: effective_threads(0),
            lane_width: LANE_WIDTH,
            cache: CacheRef::Shared(cache),
            local: LocalCounters::default(),
        }
    }

    /// Set the worker-thread count (builder style); `0` restores the
    /// one-per-core default. Thread count never changes scores, only speed.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = effective_threads(threads);
        self
    }

    /// Set how many plans [`Self::evaluate_batch`] scores per
    /// structure-of-arrays lane group (builder style): `1` disables the
    /// lane path entirely (every plan walks the arenas alone, the pre-batch
    /// behaviour), `0` restores the default [`LANE_WIDTH`]. Like the thread
    /// count, the lane width never changes scores, only speed — pinned by
    /// the end-to-end regression tests.
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = if lane_width == 0 {
            LANE_WIDTH
        } else {
            lane_width
        };
        self
    }

    /// The lane-group width of [`Self::evaluate_batch`] (1 = scalar path).
    pub fn lane_width(&self) -> usize {
        self.lane_width
    }

    /// The worker-thread count batches fan out across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wrapped quality model.
    pub fn quality(&self) -> &'a QualityModel {
        self.quality
    }

    /// The memo cache (owned or shared).
    fn memo(&self) -> &MemoCache<MigrationPlan, PlanQuality> {
        match &self.cache {
            CacheRef::Owned(cache) => cache,
            CacheRef::Shared(cache) => cache,
        }
    }

    /// Fold one batch's outcome into the evaluator-local counters.
    fn absorb(&self, outcome: BatchOutcome) {
        self.local
            .computed
            .fetch_add(outcome.computed, Ordering::Relaxed);
        self.local.hits.fetch_add(outcome.hits, Ordering::Relaxed);
        self.local.batches.fetch_add(1, Ordering::Relaxed);
        self.local
            .wall_time_nanos
            .fetch_add(outcome.elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Evaluate one plan, serving duplicates from the cache.
    pub fn evaluate(&self, plan: &MigrationPlan) -> PlanQuality {
        if let Some(quality) = self.memo().probe(plan) {
            self.local.hits.fetch_add(1, Ordering::Relaxed);
            return quality;
        }
        let start = Instant::now();
        let quality = self.quality.evaluate(plan);
        let elapsed = start.elapsed();
        self.memo().insert(plan, quality, elapsed);
        self.local.computed.fetch_add(1, Ordering::Relaxed);
        self.local
            .wall_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        quality
    }

    /// Evaluate a batch of plans, returning qualities in input order.
    ///
    /// Plans already cached (or repeated within the batch) are scored once;
    /// the remaining unique plans are scored in structure-of-arrays lane
    /// groups of [`Self::lane_width`] plans (see
    /// [`QualityModel::evaluate_lanes`]) fanned out across the evaluator's
    /// worker threads. The result is bit-identical to calling
    /// [`QualityModel::evaluate`] on each plan directly, at any lane width
    /// or thread count.
    pub fn evaluate_batch(&self, plans: &[MigrationPlan]) -> Vec<PlanQuality> {
        let (values, outcome) = if self.lane_width <= 1 {
            self.memo().get_or_compute_batch_outcome(plans, |uncached| {
                parallel_map(uncached, self.threads, |p| self.quality.evaluate(p))
            })
        } else {
            self.memo().get_or_compute_batch_outcome(plans, |uncached| {
                parallel_map_grouped(uncached, self.threads, self.lane_width, |group| {
                    self.quality.evaluate_lanes(group)
                })
            })
        };
        self.absorb(outcome);
        values
    }

    /// [`Self::evaluate_batch`] with the per-trace state retained: every
    /// returned member is a [`ScoredPlan`] ready to serve as a delta parent
    /// in [`Self::evaluate_offspring_batch`]. Uncached plans are scored
    /// through the lane-batched scored kernel
    /// ([`QualityModel::evaluate_scored_lanes`]); plans already in the memo
    /// cache come back as [`ScoredPlan::quality_only`] members (the cache
    /// stores only qualities), which simply fall back to cold scoring when
    /// later used as parents. Qualities are bit-identical to
    /// [`Self::evaluate_batch`], and the cache accounting (hits, batches,
    /// wall time) follows the same rules.
    ///
    /// # Panics
    ///
    /// Panics if any plan does not cover every component of the wrapped
    /// model (the retained state needs full-length site assignments).
    pub fn evaluate_scored_batch(&self, plans: &[MigrationPlan]) -> Vec<ScoredPlan> {
        let start = Instant::now();
        let probed = self.memo().probe_batch(plans);
        let mut uncached: Vec<&MigrationPlan> = Vec::new();
        let mut pending_of: PlanKeyMap<&MigrationPlan, usize> = PlanKeyMap::default();
        let mut slots: Vec<ScoredSlot> = Vec::with_capacity(plans.len());
        let mut probe_hits = 0usize;
        let mut dup_hits = 0usize;
        for (plan, cached) in plans.iter().zip(&probed) {
            if let Some(value) = cached {
                probe_hits += 1;
                slots.push(ScoredSlot::Hit(*value));
            } else if let Some(&k) = pending_of.get(plan) {
                dup_hits += 1;
                slots.push(ScoredSlot::Pending(k));
            } else {
                let k = uncached.len();
                uncached.push(plan);
                pending_of.insert(plan, k);
                slots.push(ScoredSlot::Pending(k));
            }
        }
        let computed: Vec<ScoredPlan> = if self.lane_width <= 1 {
            parallel_map(&uncached, self.threads, |p| self.quality.evaluate_scored(p))
        } else {
            parallel_map_grouped(&uncached, self.threads, self.lane_width, |group| {
                self.quality.evaluate_scored_lanes(group)
            })
        };
        let elapsed = start.elapsed();
        let entries: Vec<(&MigrationPlan, PlanQuality)> = uncached
            .iter()
            .copied()
            .zip(computed.iter().map(ScoredPlan::quality))
            .collect();
        self.memo().insert_batch(&entries, dup_hits, elapsed);
        self.absorb(BatchOutcome {
            hits: probe_hits + dup_hits,
            computed: uncached.len(),
            elapsed,
        });
        self.assemble_scored(slots, plans, computed)
    }

    /// Score one generation of GA offspring against their retained parents:
    /// the delta-native heart of the evolutionary search.
    ///
    /// For each `(parents[i], children[i])` pair the memo cache is
    /// consulted first (hits — including in-batch duplicates — are free and
    /// come back as [`ScoredPlan::quality_only`] members). Each uncached
    /// child is then diffed against its parent's site assignment: when the
    /// parent carries retained per-trace state and the diff touches at most
    /// [`DELTA_DIFF_THRESHOLD`] of the components, the child is re-scored
    /// incrementally through [`QualityModel::evaluate_delta`] (only the
    /// traces referencing a changed component re-run); otherwise it cold-
    /// scores through the lane-batched scored kernel. Both routes fan out
    /// across the evaluator's worker threads.
    ///
    /// **Bit-identity contract**: the delta path inherits untouched trace
    /// latencies bit-for-bit and re-sums in the cold path's order, so every
    /// returned quality — and the retained state itself — is bit-identical
    /// to cold-scoring the child, at any threshold, lane width or thread
    /// count. The routing decision is pure speed; pinned by the end-to-end
    /// delta-on/off tests.
    pub fn evaluate_offspring_batch(
        &self,
        parents: &[&ScoredPlan],
        children: &[MigrationPlan],
    ) -> Vec<ScoredPlan> {
        assert_eq!(
            parents.len(),
            children.len(),
            "one retained parent per child"
        );
        let start = Instant::now();
        let probed = self.memo().probe_batch(children);
        let mut uncached: Vec<usize> = Vec::new();
        let mut pending_of: PlanKeyMap<&MigrationPlan, usize> = PlanKeyMap::default();
        let mut slots: Vec<ScoredSlot> = Vec::with_capacity(children.len());
        let mut probe_hits = 0usize;
        let mut dup_hits = 0usize;
        for (i, (child, cached)) in children.iter().zip(&probed).enumerate() {
            if let Some(value) = cached {
                probe_hits += 1;
                slots.push(ScoredSlot::Hit(*value));
            } else if let Some(&k) = pending_of.get(child) {
                dup_hits += 1;
                slots.push(ScoredSlot::Pending(k));
            } else {
                let k = uncached.len();
                uncached.push(i);
                pending_of.insert(child, k);
                slots.push(ScoredSlot::Pending(k));
            }
        }
        // Route each uncached child: small diff against a state-carrying
        // parent → incremental; everything else → lane-batched cold.
        let cap = self.delta_change_cap();
        let kernel_traces = self.quality.kernel().trace_count();
        let mut delta_jobs: Vec<(usize, &ScoredPlan, Vec<(ComponentId, SiteId)>)> = Vec::new();
        let mut cold_jobs: Vec<(usize, &MigrationPlan)> = Vec::new();
        for (k, &i) in uncached.iter().enumerate() {
            let (parent, child) = (parents[i], &children[i]);
            if parent.traces().len() == kernel_traces
                && child.len() == parent.sites().len()
                && child.len() == self.quality.component_count()
            {
                let changes = diff_changes(parent.sites(), child.sites());
                if changes.len() <= cap {
                    delta_jobs.push((k, parent, changes));
                    continue;
                }
            }
            cold_jobs.push((k, child));
        }
        let delta_results = parallel_map(&delta_jobs, self.threads, |(_, parent, changes)| {
            self.quality.evaluate_delta(parent, changes)
        });
        let cold_refs: Vec<&MigrationPlan> = cold_jobs.iter().map(|&(_, p)| p).collect();
        let cold_results: Vec<ScoredPlan> = if self.lane_width <= 1 {
            parallel_map(&cold_refs, self.threads, |p| {
                self.quality.evaluate_scored(p)
            })
        } else {
            parallel_map_grouped(&cold_refs, self.threads, self.lane_width, |group| {
                self.quality.evaluate_scored_lanes(group)
            })
        };
        let mut computed: Vec<Option<ScoredPlan>> = Vec::with_capacity(uncached.len());
        computed.resize_with(uncached.len(), || None);
        for ((k, _, _), scored) in delta_jobs.iter().zip(delta_results) {
            computed[*k] = Some(scored);
        }
        for ((k, _), scored) in cold_jobs.iter().zip(cold_results) {
            computed[*k] = Some(scored);
        }
        let computed: Vec<ScoredPlan> = computed
            .into_iter()
            .map(|s| s.expect("every uncached child is routed exactly once"))
            .collect();
        let elapsed = start.elapsed();
        let entries: Vec<(&MigrationPlan, PlanQuality)> = uncached
            .iter()
            .map(|&i| &children[i])
            .zip(computed.iter().map(ScoredPlan::quality))
            .collect();
        self.memo().insert_batch(&entries, dup_hits, elapsed);
        self.absorb(BatchOutcome {
            hits: probe_hits + dup_hits,
            computed: uncached.len(),
            elapsed,
        });
        self.assemble_scored(slots, children, computed)
    }

    /// Single-offspring companion of [`Self::evaluate_offspring_batch`] —
    /// the shape of an RL training rollout, which scores one child per
    /// policy sample. Cache first; a small diff against a state-carrying
    /// parent rides the allocation-free [`QualityModel::probe_delta`];
    /// anything else cold-scores. Bit-identical to [`Self::evaluate`] by
    /// the same contract as the batch path.
    pub fn evaluate_offspring(&self, parent: &ScoredPlan, child: &MigrationPlan) -> PlanQuality {
        if let Some(quality) = self.memo().probe(child) {
            self.local.hits.fetch_add(1, Ordering::Relaxed);
            return quality;
        }
        let start = Instant::now();
        let quality = 'compute: {
            if parent.traces().len() == self.quality.kernel().trace_count()
                && child.len() == parent.sites().len()
                && child.len() == self.quality.component_count()
            {
                let changes = diff_changes(parent.sites(), child.sites());
                if changes.len() <= self.delta_change_cap() {
                    break 'compute self.quality.probe_delta(parent, &changes);
                }
            }
            self.quality.evaluate(child)
        };
        let elapsed = start.elapsed();
        self.memo().insert(child, quality, elapsed);
        self.local.computed.fetch_add(1, Ordering::Relaxed);
        self.local
            .wall_time_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        quality
    }

    /// Largest change-set size the delta route accepts:
    /// `max(1, component_count × DELTA_DIFF_THRESHOLD)`.
    fn delta_change_cap(&self) -> usize {
        ((self.quality.component_count() as f64 * DELTA_DIFF_THRESHOLD) as usize).max(1)
    }

    /// Hand each computed [`ScoredPlan`] to its slot in input order,
    /// cloning only for in-batch duplicates; cache hits materialise as
    /// [`ScoredPlan::quality_only`] members.
    fn assemble_scored(
        &self,
        slots: Vec<ScoredSlot>,
        plans: &[MigrationPlan],
        computed: Vec<ScoredPlan>,
    ) -> Vec<ScoredPlan> {
        let mut uses = vec![0usize; computed.len()];
        for slot in &slots {
            if let ScoredSlot::Pending(k) = slot {
                uses[*k] += 1;
            }
        }
        let mut computed: Vec<Option<ScoredPlan>> = computed.into_iter().map(Some).collect();
        slots
            .into_iter()
            .zip(plans)
            .map(|(slot, plan)| match slot {
                ScoredSlot::Hit(quality) => ScoredPlan::quality_only(plan.to_sites(), quality),
                ScoredSlot::Pending(k) => {
                    uses[k] -= 1;
                    if uses[k] == 0 {
                        computed[k].take().expect("each pending slot taken once")
                    } else {
                        computed[k]
                            .as_ref()
                            .expect("pending slots are filled")
                            .clone()
                    }
                }
            })
            .collect()
    }

    /// Distinct plans scored so far by *anyone* using this evaluator's
    /// cache (the cache size). On a shared cache this spans every
    /// evaluator; the recommender's `max_visited` budget instead counts
    /// request-locally, so concurrent sharing never changes a search.
    pub fn unique_evaluations(&self) -> usize {
        self.memo().unique()
    }

    /// Requests answered from the cache so far (cache-wide).
    pub fn cache_hits(&self) -> usize {
        self.memo().cache_hits()
    }

    /// Snapshot of the cache-lifetime evaluation statistics, stamped with
    /// the wrapped model's kernel compile time. On a shared cache this is
    /// the *lifetime* view across every evaluator of the epoch; pair it
    /// with [`Self::local_stats`] for the per-request view.
    pub fn stats(&self) -> EvalStats {
        let mut stats = self.memo().stats(self.threads);
        stats.kernel_compile_ms = self.quality.kernel_compile_ms();
        stats
    }

    /// Snapshot of the evaluator-local statistics: only the requests issued
    /// *through this handle*. On an owned cache this coincides with
    /// [`Self::stats`]; on a shared cache it is the per-request
    /// attribution (this request's computes, this request's hits), exact
    /// under any interleaving because the counters live in the handle, not
    /// the cache.
    pub fn local_stats(&self) -> EvalStats {
        EvalStats {
            unique_evaluations: self.local.computed.load(Ordering::Relaxed),
            cache_hits: self.local.hits.load(Ordering::Relaxed),
            batches: self.local.batches.load(Ordering::Relaxed),
            wall_time_ms: self.local.wall_time_nanos.load(Ordering::Relaxed) as f64 / 1e6,
            threads: self.threads,
            kernel_compile_ms: self.quality.kernel_compile_ms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::FootprintLearner;
    use crate::preferences::MigrationPreferences;
    use crate::profile::ApplicationProfile;
    use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
    use atlas_cloud::{CostModel, PricingModel, ResourceEstimator, ScalingEstimator};
    use atlas_sim::{ClusterSpec, OverloadModel, Placement, SimConfig, Simulator};
    use atlas_telemetry::TelemetryStore;

    fn build_quality() -> QualityModel {
        let app = social_network(SocialNetworkOptions::default());
        let n = app.component_count();
        let current = Placement::all_onprem(n);
        let sim = Simulator::new(
            app.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 6,
            },
        );
        let schedule =
            WorkloadGenerator::new(WorkloadOptions::social_network_default().with_seed(6))
                .generate(&app)
                .unwrap();
        let store = TelemetryStore::new();
        sim.run(&schedule, &store);
        let component_index: Vec<String> =
            app.components().iter().map(|c| c.name.clone()).collect();
        let stateful: Vec<String> = app
            .stateful_components()
            .into_iter()
            .map(|c| app.component_name(c).to_string())
            .collect();
        let profile = ApplicationProfile::learn(&store, &stateful, 20);
        let footprint = FootprintLearner::default().learn(&store);
        let injector = crate::delay::DelayInjector::new(
            ClusterSpec::default().network,
            component_index.clone(),
        );
        let demand = ScalingEstimator::with_scale(5.0).estimate(&store, &component_index, 6, 600);
        QualityModel::new(
            profile,
            footprint,
            injector,
            CostModel::new(PricingModel::default()),
            demand,
            MigrationPreferences::with_cpu_limit(12.0),
            current,
            component_index,
        )
    }

    /// `count` pairwise-distinct plans: plan `k` encodes `k` in binary.
    fn plans(n: usize, count: usize) -> Vec<MigrationPlan> {
        assert!(count < (1 << n));
        (0..count)
            .map(|k| {
                MigrationPlan::from_bits(&(0..n).map(|i| ((k >> i) & 1) as u8).collect::<Vec<u8>>())
            })
            .collect()
    }

    #[test]
    fn quality_model_and_evaluator_are_send_and_sync() {
        fn require<T: Send + Sync>() {}
        require::<QualityModel>();
        require::<PlanEvaluator<'_>>();
        require::<EvalStats>();
        require::<MemoCache<MigrationPlan, PlanQuality>>();
    }

    #[test]
    fn cache_serves_duplicates_once() {
        let quality = build_quality();
        let evaluator = PlanEvaluator::new(&quality);
        let n = quality.component_count();
        let plan = MigrationPlan::all_onprem(n);
        let first = evaluator.evaluate(&plan);
        let second = evaluator.evaluate(&plan);
        assert_eq!(first, second);
        assert_eq!(evaluator.unique_evaluations(), 1);
        assert_eq!(evaluator.cache_hits(), 1);
        // On an owned cache, local and lifetime views coincide.
        let local = evaluator.local_stats();
        assert_eq!(local.unique_evaluations, 1);
        assert_eq!(local.cache_hits, 1);
    }

    #[test]
    fn batches_dedupe_within_and_across_calls() {
        let quality = build_quality();
        let evaluator = PlanEvaluator::new(&quality);
        let n = quality.component_count();
        let mut batch = plans(n, 5);
        batch.push(batch[0].clone()); // in-batch duplicate
        let qualities = evaluator.evaluate_batch(&batch);
        assert_eq!(qualities.len(), 6);
        assert_eq!(qualities[0], qualities[5]);
        assert_eq!(evaluator.unique_evaluations(), 5);
        assert_eq!(evaluator.cache_hits(), 1);
        // Re-submitting the same batch is all hits.
        let again = evaluator.evaluate_batch(&batch);
        assert_eq!(again, qualities);
        assert_eq!(evaluator.unique_evaluations(), 5);
        assert_eq!(evaluator.cache_hits(), 7);
        let stats = evaluator.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.requests(), 12);
        assert!(stats.cache_hit_rate() > 0.5);
        // The local view agrees with the lifetime view (sole user).
        let local = evaluator.local_stats();
        assert_eq!(local.unique_evaluations, 5);
        assert_eq!(local.cache_hits, 7);
        assert_eq!(local.batches, 2);
    }

    #[test]
    fn thread_count_does_not_change_scores() {
        let quality = build_quality();
        let n = quality.component_count();
        // 80 distinct plans: enough to cross the serial-fallback threshold,
        // so 2 and 8 threads genuinely exercise the parallel path while 1
        // thread stays serial — the scores must be bit-identical anyway.
        let batch = plans(n, 80);
        let direct: Vec<PlanQuality> = batch.iter().map(|p| quality.evaluate(p)).collect();
        for threads in [1, 2, 8] {
            let evaluator = PlanEvaluator::new(&quality).with_threads(threads);
            let scored = evaluator.evaluate_batch(&batch);
            for (a, b) in direct.iter().zip(&scored) {
                assert_eq!(a.performance.to_bits(), b.performance.to_bits());
                assert_eq!(a.availability.to_bits(), b.availability.to_bits());
                assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                assert_eq!(a.feasible, b.feasible);
            }
            assert_eq!(evaluator.threads(), effective_threads(threads));
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 3, 7, 0] {
            let doubled = parallel_map(&items, threads, |&x| x * 2);
            assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &usize| x).is_empty());
    }

    #[test]
    fn small_batches_fall_back_to_the_calling_thread() {
        // Below the per-worker work threshold no scope is spawned: every
        // item is computed on the calling thread.
        let caller = std::thread::current().id();
        let items: Vec<usize> = (0..MIN_ITEMS_PER_WORKER * 2 - 1).collect();
        let seen = parallel_map(&items, 8, |&x| (x, std::thread::current().id()));
        assert!(seen.iter().all(|&(_, id)| id == caller));
        // At and beyond 2 × the threshold, with >1 requested workers, at
        // least one item runs off-thread.
        let items: Vec<usize> = (0..MIN_ITEMS_PER_WORKER * 4).collect();
        let seen = parallel_map(&items, 4, |&x| (x, std::thread::current().id()));
        assert!(seen.iter().any(|&(_, id)| id != caller));
        assert_eq!(
            seen.iter().map(|&(x, _)| x).collect::<Vec<_>>(),
            items,
            "order preserved across the fan-out"
        );
    }

    #[test]
    fn stats_track_wall_time_and_threads() {
        let quality = build_quality();
        let evaluator = PlanEvaluator::new(&quality).with_threads(2);
        evaluator.evaluate_batch(&plans(quality.component_count(), 4));
        let stats = evaluator.stats();
        assert_eq!(stats.unique_evaluations, 4);
        assert_eq!(stats.threads, 2);
        assert!(stats.wall_time_ms > 0.0);
        assert!(stats.evaluations_per_sec() > 0.0);
        assert!(
            stats.kernel_compile_ms > 0.0,
            "the quality model's kernel compile time is surfaced"
        );
    }

    /// Two evaluator handles over one shared cache: the cache-wide view
    /// aggregates both, while each handle's local view attributes exactly
    /// its own computes and hits — the accounting the multi-tenant hub
    /// reports per request.
    #[test]
    fn shared_cache_splits_local_and_lifetime_stats() {
        let quality = build_quality();
        let cache: MemoCache<MigrationPlan, PlanQuality> = MemoCache::default();
        let batch = plans(quality.component_count(), 12);

        let first = PlanEvaluator::with_shared_cache(&quality, &cache).with_threads(1);
        let cold = first.evaluate_batch(&batch);
        assert_eq!(first.local_stats().unique_evaluations, 12);
        assert_eq!(first.local_stats().cache_hits, 0);

        let second = PlanEvaluator::with_shared_cache(&quality, &cache).with_threads(1);
        let warm = second.evaluate_batch(&batch);
        assert_eq!(warm, cold, "a shared cache never changes scores");
        assert_eq!(
            second.local_stats().unique_evaluations,
            0,
            "the second handle computed nothing"
        );
        assert_eq!(second.local_stats().cache_hits, 12);

        // The cache-wide lifetime view aggregates both handles.
        let lifetime = second.stats();
        assert_eq!(lifetime.unique_evaluations, 12);
        assert_eq!(lifetime.cache_hits, 12);
        assert_eq!(lifetime.batches, 2);

        // The per-request delta of a lifetime stream subtracts cleanly.
        let delta = lifetime.since(&first.stats());
        assert_eq!(delta.unique_evaluations, 0);
    }

    /// Hammer one sharded cache from many threads: every value is correct
    /// and the merged accounting is exact (requests = hits + uniques).
    #[test]
    fn sharded_cache_is_consistent_under_concurrent_batches() {
        let quality = build_quality();
        let cache: MemoCache<MigrationPlan, PlanQuality> = MemoCache::default();
        let n = quality.component_count();
        let batch = plans(n, 40);
        let direct: Vec<PlanQuality> = batch.iter().map(|p| quality.evaluate(p)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let evaluator =
                        PlanEvaluator::with_shared_cache(&quality, &cache).with_threads(1);
                    let scored = evaluator.evaluate_batch(&batch);
                    assert_eq!(scored, direct);
                    let local = evaluator.local_stats();
                    assert_eq!(local.unique_evaluations + local.cache_hits, batch.len());
                });
            }
        });
        assert_eq!(cache.unique(), 40, "racing computes insert equal values");
        let stats = cache.stats(1);
        // Racing threads may each compute a plan the others also computed
        // (benign — the values are equal), so the hit count is only bounded
        // by the requests the cache did not have to answer cold: at least
        // one thread computed each plan, at most all four did.
        assert!(stats.cache_hits <= 3 * batch.len());
        assert_eq!(stats.batches, 4);
    }
}
