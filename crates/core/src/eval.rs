//! Shared plan-evaluation layer: cached, batched, thread-parallel scoring.
//!
//! Every search path in Atlas — the DRL-GA recommender, the RL crossover
//! trainer, the baselines and the bench harness — ultimately spends its
//! budget in [`QualityModel::evaluate`]. This module wraps that hot path in
//! a [`PlanEvaluator`]:
//!
//! * **Memoisation** — results are cached keyed on [`MigrationPlan`]'s
//!   `Hash`, so duplicate plans (common after pin-application and low-rate
//!   mutation) are scored exactly once;
//! * **Batching** — [`PlanEvaluator::evaluate_batch`] dedupes a whole
//!   generation and fans the uncached plans out across
//!   [`std::thread::scope`] workers ([`QualityModel`] is `Send + Sync`, so
//!   scoring needs no locks);
//! * **Statistics** — [`EvalStats`] reports unique evaluations, cache hits
//!   and scoring wall time, surfaced in
//!   [`RecommendationReport`](crate::recommender::RecommendationReport).
//!
//! Evaluation is pure, so neither the cache nor the thread count changes any
//! score: a recommendation run is bit-identical at 1 or N worker threads.
//!
//! # Example
//!
//! Score a small batch of plans through the evaluator and observe that
//! duplicates hit the cache (the quality model is learned from a compressed
//! simulated run of the social network):
//!
//! ```
//! use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
//! use atlas_core::eval::PlanEvaluator;
//! use atlas_core::{Atlas, AtlasConfig, MigrationPlan, MigrationPreferences};
//! use atlas_sim::{OverloadModel, Placement, SimConfig, Simulator};
//! use atlas_telemetry::TelemetryStore;
//!
//! let app = social_network(SocialNetworkOptions::default());
//! let current = Placement::all_onprem(app.component_count());
//! let mut options = WorkloadOptions::social_network_default().with_seed(5);
//! options.profile.day_seconds = 60; // compressed day keeps the example fast
//! let schedule = WorkloadGenerator::new(options).generate(&app).unwrap();
//! let store = TelemetryStore::new();
//! Simulator::new(
//!     app.clone(),
//!     current.clone(),
//!     SimConfig {
//!         overload: OverloadModel::disabled(),
//!         ..SimConfig::default()
//!     },
//! )
//! .run(&schedule, &store);
//!
//! let component_index: Vec<String> =
//!     app.components().iter().map(|c| c.name.clone()).collect();
//! let mut config = AtlasConfig::new(component_index, vec![]);
//! config.traces_per_api = 20;
//! config.horizon_steps = 4;
//! let mut atlas = Atlas::new(config);
//! atlas.learn(&store);
//! let quality = atlas.quality_model(current, MigrationPreferences::default());
//!
//! let evaluator = PlanEvaluator::new(&quality);
//! let n = app.component_count();
//! let batch = vec![
//!     MigrationPlan::all_onprem(n),
//!     MigrationPlan::new(Placement::all_cloud(n)),
//!     MigrationPlan::all_onprem(n), // duplicate → cache hit
//! ];
//! let qualities = evaluator.evaluate_batch(&batch);
//! assert_eq!(qualities[0], qualities[2]);
//! assert_eq!(qualities[0], quality.evaluate(&batch[0]));
//! let stats = evaluator.stats();
//! assert_eq!(stats.unique_evaluations, 2);
//! assert_eq!(stats.cache_hits, 1);
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use atlas_sim::{ComponentId, SiteId};

use crate::plan::MigrationPlan;
use crate::quality::{PlanQuality, QualityModel, ScoredPlan};

/// Evaluation statistics of one [`PlanEvaluator`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Distinct plans scored by the underlying [`QualityModel`] (the cache
    /// size). This is the quantity the `max_visited` search budget counts.
    pub unique_evaluations: usize,
    /// Evaluation requests answered from the memo cache, including
    /// duplicates resolved inside a single batch.
    pub cache_hits: usize,
    /// Number of [`PlanEvaluator::evaluate_batch`] calls served.
    pub batches: usize,
    /// Wall-clock time spent scoring uncached plans, in milliseconds.
    /// Parallel batches count elapsed time once, not per worker.
    pub wall_time_ms: f64,
    /// Worker threads the evaluator fans batches out across.
    pub threads: usize,
    /// Milliseconds the quality model spent compiling its evaluation kernel
    /// at construction (see [`crate::kernel`]); `0.0` for scorers without a
    /// compiled kernel (e.g. the baselines' placement scorer).
    pub kernel_compile_ms: f64,
}

impl EvalStats {
    /// Total evaluation requests (unique evaluations + cache hits).
    pub fn requests(&self) -> usize {
        self.unique_evaluations + self.cache_hits
    }

    /// Fraction of requests answered from the cache (0.0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / requests as f64
        }
    }

    /// Unique plans scored per second of scoring wall time (0.0 when idle).
    pub fn evaluations_per_sec(&self) -> f64 {
        if self.wall_time_ms <= 0.0 {
            0.0
        } else {
            self.unique_evaluations as f64 * 1_000.0 / self.wall_time_ms
        }
    }
}

/// Resolve a requested thread count: `0` means "one worker per available
/// core", anything else is used as given (minimum 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Minimum number of items each worker must receive before [`parallel_map`]
/// spawns a thread scope. Spawning scoped workers costs tens of
/// microseconds per batch; fanning out a generation-sized batch of cheap
/// kernel evaluations used to *lose* wall time (PR 3 measured a 0.91×
/// "speedup"), so small batches now run serially and large batches cap
/// their worker count at one worker per `MIN_ITEMS_PER_WORKER` items.
pub const MIN_ITEMS_PER_WORKER: usize = 16;

/// Fraction of components that may differ between an offspring and its
/// retained parent for the offspring to ride the incremental delta path in
/// [`PlanEvaluator::evaluate_offspring_batch`]. Above the threshold the
/// change set touches so many compiled traces that a delta re-score decays
/// into "scalar re-run plus bookkeeping" and loses to the lane-batched cold
/// path, so wide diffs (early-generation crossover between distant parents,
/// policy-decoded RL children) fall back to cold scoring. The routing is
/// purely a speed decision: the delta and cold paths are pinned
/// bit-identical, so the threshold never changes a score.
pub const DELTA_DIFF_THRESHOLD: f64 = 0.25;

/// Default number of plans scored per structure-of-arrays lane group by
/// [`PlanEvaluator::evaluate_batch`] (see
/// [`QualityModel::evaluate_lanes`]). Sixteen lanes amortise the op decode
/// and wave bookkeeping of the compiled kernel without spilling the
/// per-lane cursor/stack working set out of cache (measured on a
/// 250-component scenario: 16 lanes ≈ 1.5× the throughput of 8, and 32
/// adds only a few percent more).
pub const LANE_WIDTH: usize = 16;

/// Deterministically map a pure function over a slice with up to `threads`
/// scoped workers. Results come back in input order regardless of the thread
/// count. Batches smaller than 2 × [`MIN_ITEMS_PER_WORKER`] run serially on
/// the calling thread (no scope is spawned); larger batches are distributed
/// in contiguous chunks across at most `items.len() /
/// MIN_ITEMS_PER_WORKER` workers, so every spawned thread has enough work
/// to amortise its start-up cost.
///
/// This is the fan-out primitive shared by [`PlanEvaluator`] and the cached
/// baseline scorer in `atlas-baselines`.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_threads(threads)
        .min(items.len() / MIN_ITEMS_PER_WORKER)
        .max(1);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every worker fills its chunk"))
        .collect()
}

/// Like [`parallel_map`], but `f` maps whole *groups* of up to `group`
/// consecutive items to one result per item (the shape of the lane-batched
/// kernel). Worker chunks are rounded to whole groups so no group straddles
/// a thread boundary; results come back in input order, and the serial
/// fall-back applies the same [`MIN_ITEMS_PER_WORKER`] rule in items (not
/// groups). `f` must return exactly as many results as it was given items.
pub fn parallel_map_grouped<T, R, F>(items: &[T], threads: usize, group: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let group = group.max(1);
    let workers = effective_threads(threads)
        .min(items.len() / MIN_ITEMS_PER_WORKER)
        .max(1);
    if workers <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(group) {
            let values = f(chunk);
            debug_assert_eq!(values.len(), chunk.len(), "one result per item");
            out.extend(values);
        }
        return out;
    }
    let groups = items.len().div_ceil(group);
    let chunk = groups.div_ceil(workers) * group;
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (in_group, out_group) in in_chunk.chunks(group).zip(out_chunk.chunks_mut(group))
                {
                    let values = f(in_group);
                    debug_assert_eq!(values.len(), in_group.len(), "one result per item");
                    for (slot, value) in out_group.iter_mut().zip(values) {
                        *slot = Some(value);
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every worker fills its chunk"))
        .collect()
}

/// Deterministic word-folding hasher for plan-keyed tables (the memo cache
/// and the batch dedupe maps). A plan key hashes as hundreds of site ids,
/// and the standard library's DoS-resistant SipHash spends more time on
/// that than the delta re-score the lookup guards; these tables are
/// process-local and never fed attacker-chosen keys, so a multiply-xor
/// fold (one rotate + xor + multiply per 8-byte word) is safe and several
/// times cheaper. Only lookup speed changes: nothing iterates these maps,
/// so bucket order — the only thing a hasher can influence — is
/// unobservable.
#[derive(Debug, Default)]
struct PlanKeyHasher(u64);

impl Hasher for PlanKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        let fold = |state: u64, word: u64| {
            (state.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95)
        };
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.0 = fold(self.0, u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.0 = fold(self.0, u64::from_le_bytes(word));
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` keyed through [`PlanKeyHasher`].
type PlanKeyMap<K, V> = HashMap<K, V, BuildHasherDefault<PlanKeyHasher>>;

/// Mutable interior of a [`MemoCache`], behind one mutex.
#[derive(Debug)]
struct MemoState<K, V> {
    cache: PlanKeyMap<K, V>,
    cache_hits: usize,
    batches: usize,
    wall_time: Duration,
}

/// The memoisation + batching core shared by [`PlanEvaluator`] and the
/// baselines' placement scorer: a mutex-guarded result cache with
/// hit/batch/wall-time accounting and a deduplicated, thread-parallel batch
/// path. The compute function is supplied per call, so one cache can serve
/// any pure scoring function over its key type.
#[derive(Debug)]
pub struct MemoCache<K, V> {
    state: Mutex<MemoState<K, V>>,
}

impl<K, V> Default for MemoCache<K, V> {
    fn default() -> Self {
        Self {
            state: Mutex::new(MemoState {
                cache: PlanKeyMap::default(),
                cache_hits: 0,
                batches: 0,
                wall_time: Duration::ZERO,
            }),
        }
    }
}

impl<K, V> MemoCache<K, V>
where
    K: std::hash::Hash + Eq + Clone,
    V: Copy,
{
    /// Look up one key, computing and caching its value on a miss.
    pub fn get_or_compute(&self, key: &K, compute: impl FnOnce(&K) -> V) -> V {
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&value) = state.cache.get(key) {
                state.cache_hits += 1;
                return value;
            }
        }
        let start = Instant::now();
        let value = compute(key);
        let elapsed = start.elapsed();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.wall_time += elapsed;
        state.cache.insert(key.clone(), value);
        value
    }

    /// Look up a batch of keys, returning values in input order. Cached and
    /// in-batch duplicate keys are computed once; the remaining unique keys
    /// fan out across up to `threads` scoped workers.
    pub fn get_or_compute_batch<F>(&self, keys: &[K], threads: usize, compute: F) -> Vec<V>
    where
        K: Sync,
        V: Send,
        F: Fn(&K) -> V + Sync,
    {
        let start = Instant::now();
        // Which cache/batch slot serves each input position.
        enum Slot<V> {
            Hit(V),
            Pending(usize),
        }
        let mut uncached: Vec<&K> = Vec::new();
        let mut pending_of: PlanKeyMap<&K, usize> = PlanKeyMap::default();
        let mut slots: Vec<Slot<V>> = Vec::with_capacity(keys.len());
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            for key in keys {
                if let Some(&value) = state.cache.get(key) {
                    state.cache_hits += 1;
                    slots.push(Slot::Hit(value));
                } else if let Some(&k) = pending_of.get(key) {
                    state.cache_hits += 1;
                    slots.push(Slot::Pending(k));
                } else {
                    let k = uncached.len();
                    uncached.push(key);
                    pending_of.insert(key, k);
                    slots.push(Slot::Pending(k));
                }
            }
        }
        let computed = parallel_map(&uncached, threads, |key| compute(key));
        let elapsed = start.elapsed();
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            for (&key, &value) in uncached.iter().zip(&computed) {
                state.cache.insert(key.clone(), value);
            }
            state.batches += 1;
            state.wall_time += elapsed;
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Hit(value) => value,
                Slot::Pending(k) => computed[k],
            })
            .collect()
    }

    /// Like [`Self::get_or_compute`], but looked up through a borrowed form
    /// of the key (e.g. `&[SiteId]` for a `Vec<SiteId>` cache), so probes
    /// that hit the cache never allocate an owned key. On a miss, `own`
    /// materialises the owned key for insertion and `compute` scores it.
    /// Accounting (hits, wall time) is identical to the owned entry point.
    pub fn get_or_compute_with<Q>(
        &self,
        key: &Q,
        own: impl FnOnce(&Q) -> K,
        compute: impl FnOnce(&Q) -> V,
    ) -> V
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&value) = state.cache.get(key) {
                state.cache_hits += 1;
                return value;
            }
        }
        let start = Instant::now();
        let value = compute(key);
        let elapsed = start.elapsed();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.wall_time += elapsed;
        state.cache.insert(own(key), value);
        value
    }

    /// Like [`Self::get_or_compute_batch`], but the uncached unique keys are
    /// computed in *groups* of up to `group` keys by `compute_group` (one
    /// value per key, in group order) — the entry point of the lane-batched
    /// kernel. Deduplication, ordering and accounting are identical to the
    /// per-key batch path.
    pub fn get_or_compute_batch_grouped<F>(
        &self,
        keys: &[K],
        threads: usize,
        group: usize,
        compute_group: F,
    ) -> Vec<V>
    where
        K: Sync,
        V: Send,
        F: Fn(&[&K]) -> Vec<V> + Sync,
    {
        let start = Instant::now();
        enum Slot<V> {
            Hit(V),
            Pending(usize),
        }
        let mut uncached: Vec<&K> = Vec::new();
        let mut pending_of: PlanKeyMap<&K, usize> = PlanKeyMap::default();
        let mut slots: Vec<Slot<V>> = Vec::with_capacity(keys.len());
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            for key in keys {
                if let Some(&value) = state.cache.get(key) {
                    state.cache_hits += 1;
                    slots.push(Slot::Hit(value));
                } else if let Some(&k) = pending_of.get(key) {
                    state.cache_hits += 1;
                    slots.push(Slot::Pending(k));
                } else {
                    let k = uncached.len();
                    uncached.push(key);
                    pending_of.insert(key, k);
                    slots.push(Slot::Pending(k));
                }
            }
        }
        let computed = parallel_map_grouped(&uncached, threads, group, |group_keys| {
            compute_group(group_keys)
        });
        let elapsed = start.elapsed();
        {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            for (&key, &value) in uncached.iter().zip(&computed) {
                state.cache.insert(key.clone(), value);
            }
            state.batches += 1;
            state.wall_time += elapsed;
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Hit(value) => value,
                Slot::Pending(k) => computed[k],
            })
            .collect()
    }

    /// Distinct keys computed so far (the cache size).
    pub fn unique(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cache
            .len()
    }

    /// Requests answered from the cache so far.
    pub fn cache_hits(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cache_hits
    }

    /// Snapshot of the accounting as [`EvalStats`], stamped with the worker
    /// count the owner fans batches out across.
    pub fn stats(&self, threads: usize) -> EvalStats {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        EvalStats {
            unique_evaluations: state.cache.len(),
            cache_hits: state.cache_hits,
            batches: state.batches,
            wall_time_ms: state.wall_time.as_secs_f64() * 1_000.0,
            threads,
            kernel_compile_ms: 0.0,
        }
    }
}

/// Which cache/batch slot serves one input position of a scored batch:
/// either a memo-cache hit (quality only — the cache stores no per-trace
/// state) or the `k`-th freshly computed [`ScoredPlan`].
enum ScoredSlot {
    Hit(PlanQuality),
    Pending(usize),
}

/// The ascending change set turning `parent` into `child`: one
/// `(component, new site)` entry per differing position.
fn diff_changes(parent: &[SiteId], child: &[SiteId]) -> Vec<(ComponentId, SiteId)> {
    parent
        .iter()
        .zip(child)
        .enumerate()
        .filter(|&(_, (a, b))| a != b)
        .map(|(c, (_, &to))| (ComponentId(c), to))
        .collect()
}

/// Cached, batched, thread-parallel front end to a [`QualityModel`].
///
/// The evaluator is `Sync`: it can be shared by reference across the search,
/// the RL trainer and bench code, accumulating one cache and one set of
/// statistics. See the [module docs](self) for an end-to-end example.
#[derive(Debug)]
pub struct PlanEvaluator<'a> {
    quality: &'a QualityModel,
    threads: usize,
    lane_width: usize,
    cache: MemoCache<MigrationPlan, PlanQuality>,
}

impl<'a> PlanEvaluator<'a> {
    /// Wrap a quality model with one worker per available core and the
    /// default [`LANE_WIDTH`] batch lanes.
    pub fn new(quality: &'a QualityModel) -> Self {
        Self {
            quality,
            threads: effective_threads(0),
            lane_width: LANE_WIDTH,
            cache: MemoCache::default(),
        }
    }

    /// Set the worker-thread count (builder style); `0` restores the
    /// one-per-core default. Thread count never changes scores, only speed.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = effective_threads(threads);
        self
    }

    /// Set how many plans [`Self::evaluate_batch`] scores per
    /// structure-of-arrays lane group (builder style): `1` disables the
    /// lane path entirely (every plan walks the arenas alone, the pre-batch
    /// behaviour), `0` restores the default [`LANE_WIDTH`]. Like the thread
    /// count, the lane width never changes scores, only speed — pinned by
    /// the end-to-end regression tests.
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = if lane_width == 0 {
            LANE_WIDTH
        } else {
            lane_width
        };
        self
    }

    /// The lane-group width of [`Self::evaluate_batch`] (1 = scalar path).
    pub fn lane_width(&self) -> usize {
        self.lane_width
    }

    /// The worker-thread count batches fan out across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The wrapped quality model.
    pub fn quality(&self) -> &'a QualityModel {
        self.quality
    }

    /// Evaluate one plan, serving duplicates from the cache.
    pub fn evaluate(&self, plan: &MigrationPlan) -> PlanQuality {
        self.cache
            .get_or_compute(plan, |p| self.quality.evaluate(p))
    }

    /// Evaluate a batch of plans, returning qualities in input order.
    ///
    /// Plans already cached (or repeated within the batch) are scored once;
    /// the remaining unique plans are scored in structure-of-arrays lane
    /// groups of [`Self::lane_width`] plans (see
    /// [`QualityModel::evaluate_lanes`]) fanned out across the evaluator's
    /// worker threads. The result is bit-identical to calling
    /// [`QualityModel::evaluate`] on each plan directly, at any lane width
    /// or thread count.
    pub fn evaluate_batch(&self, plans: &[MigrationPlan]) -> Vec<PlanQuality> {
        if self.lane_width <= 1 {
            return self
                .cache
                .get_or_compute_batch(plans, self.threads, |p| self.quality.evaluate(p));
        }
        self.cache
            .get_or_compute_batch_grouped(plans, self.threads, self.lane_width, |group| {
                self.quality.evaluate_lanes(group)
            })
    }

    /// [`Self::evaluate_batch`] with the per-trace state retained: every
    /// returned member is a [`ScoredPlan`] ready to serve as a delta parent
    /// in [`Self::evaluate_offspring_batch`]. Uncached plans are scored
    /// through the lane-batched scored kernel
    /// ([`QualityModel::evaluate_scored_lanes`]); plans already in the memo
    /// cache come back as [`ScoredPlan::quality_only`] members (the cache
    /// stores only qualities), which simply fall back to cold scoring when
    /// later used as parents. Qualities are bit-identical to
    /// [`Self::evaluate_batch`], and the cache accounting (hits, batches,
    /// wall time) follows the same rules.
    ///
    /// # Panics
    ///
    /// Panics if any plan does not cover every component of the wrapped
    /// model (the retained state needs full-length site assignments).
    pub fn evaluate_scored_batch(&self, plans: &[MigrationPlan]) -> Vec<ScoredPlan> {
        let start = Instant::now();
        let mut uncached: Vec<&MigrationPlan> = Vec::new();
        let mut pending_of: PlanKeyMap<&MigrationPlan, usize> = PlanKeyMap::default();
        let mut slots: Vec<ScoredSlot> = Vec::with_capacity(plans.len());
        {
            let mut state = self.cache.state.lock().unwrap_or_else(|e| e.into_inner());
            for plan in plans {
                if let Some(&value) = state.cache.get(plan) {
                    state.cache_hits += 1;
                    slots.push(ScoredSlot::Hit(value));
                } else if let Some(&k) = pending_of.get(plan) {
                    state.cache_hits += 1;
                    slots.push(ScoredSlot::Pending(k));
                } else {
                    let k = uncached.len();
                    uncached.push(plan);
                    pending_of.insert(plan, k);
                    slots.push(ScoredSlot::Pending(k));
                }
            }
        }
        let computed: Vec<ScoredPlan> = if self.lane_width <= 1 {
            parallel_map(&uncached, self.threads, |p| self.quality.evaluate_scored(p))
        } else {
            parallel_map_grouped(&uncached, self.threads, self.lane_width, |group| {
                self.quality.evaluate_scored_lanes(group)
            })
        };
        let elapsed = start.elapsed();
        {
            let mut state = self.cache.state.lock().unwrap_or_else(|e| e.into_inner());
            for (&plan, scored) in uncached.iter().zip(&computed) {
                state.cache.insert(plan.clone(), scored.quality());
            }
            state.batches += 1;
            state.wall_time += elapsed;
        }
        self.assemble_scored(slots, plans, computed)
    }

    /// Score one generation of GA offspring against their retained parents:
    /// the delta-native heart of the evolutionary search.
    ///
    /// For each `(parents[i], children[i])` pair the memo cache is
    /// consulted first (hits — including in-batch duplicates — are free and
    /// come back as [`ScoredPlan::quality_only`] members). Each uncached
    /// child is then diffed against its parent's site assignment: when the
    /// parent carries retained per-trace state and the diff touches at most
    /// [`DELTA_DIFF_THRESHOLD`] of the components, the child is re-scored
    /// incrementally through [`QualityModel::evaluate_delta`] (only the
    /// traces referencing a changed component re-run); otherwise it cold-
    /// scores through the lane-batched scored kernel. Both routes fan out
    /// across the evaluator's worker threads.
    ///
    /// **Bit-identity contract**: the delta path inherits untouched trace
    /// latencies bit-for-bit and re-sums in the cold path's order, so every
    /// returned quality — and the retained state itself — is bit-identical
    /// to cold-scoring the child, at any threshold, lane width or thread
    /// count. The routing decision is pure speed; pinned by the end-to-end
    /// delta-on/off tests.
    pub fn evaluate_offspring_batch(
        &self,
        parents: &[&ScoredPlan],
        children: &[MigrationPlan],
    ) -> Vec<ScoredPlan> {
        assert_eq!(
            parents.len(),
            children.len(),
            "one retained parent per child"
        );
        let start = Instant::now();
        let mut uncached: Vec<usize> = Vec::new();
        let mut pending_of: PlanKeyMap<&MigrationPlan, usize> = PlanKeyMap::default();
        let mut slots: Vec<ScoredSlot> = Vec::with_capacity(children.len());
        {
            let mut state = self.cache.state.lock().unwrap_or_else(|e| e.into_inner());
            for (i, child) in children.iter().enumerate() {
                if let Some(&value) = state.cache.get(child) {
                    state.cache_hits += 1;
                    slots.push(ScoredSlot::Hit(value));
                } else if let Some(&k) = pending_of.get(child) {
                    state.cache_hits += 1;
                    slots.push(ScoredSlot::Pending(k));
                } else {
                    let k = uncached.len();
                    uncached.push(i);
                    pending_of.insert(child, k);
                    slots.push(ScoredSlot::Pending(k));
                }
            }
        }
        // Route each uncached child: small diff against a state-carrying
        // parent → incremental; everything else → lane-batched cold.
        let cap = self.delta_change_cap();
        let kernel_traces = self.quality.kernel().trace_count();
        let mut delta_jobs: Vec<(usize, &ScoredPlan, Vec<(ComponentId, SiteId)>)> = Vec::new();
        let mut cold_jobs: Vec<(usize, &MigrationPlan)> = Vec::new();
        for (k, &i) in uncached.iter().enumerate() {
            let (parent, child) = (parents[i], &children[i]);
            if parent.traces().len() == kernel_traces
                && child.len() == parent.sites().len()
                && child.len() == self.quality.component_count()
            {
                let changes = diff_changes(parent.sites(), child.sites());
                if changes.len() <= cap {
                    delta_jobs.push((k, parent, changes));
                    continue;
                }
            }
            cold_jobs.push((k, child));
        }
        let delta_results = parallel_map(&delta_jobs, self.threads, |(_, parent, changes)| {
            self.quality.evaluate_delta(parent, changes)
        });
        let cold_refs: Vec<&MigrationPlan> = cold_jobs.iter().map(|&(_, p)| p).collect();
        let cold_results: Vec<ScoredPlan> = if self.lane_width <= 1 {
            parallel_map(&cold_refs, self.threads, |p| {
                self.quality.evaluate_scored(p)
            })
        } else {
            parallel_map_grouped(&cold_refs, self.threads, self.lane_width, |group| {
                self.quality.evaluate_scored_lanes(group)
            })
        };
        let mut computed: Vec<Option<ScoredPlan>> = Vec::with_capacity(uncached.len());
        computed.resize_with(uncached.len(), || None);
        for ((k, _, _), scored) in delta_jobs.iter().zip(delta_results) {
            computed[*k] = Some(scored);
        }
        for ((k, _), scored) in cold_jobs.iter().zip(cold_results) {
            computed[*k] = Some(scored);
        }
        let computed: Vec<ScoredPlan> = computed
            .into_iter()
            .map(|s| s.expect("every uncached child is routed exactly once"))
            .collect();
        let elapsed = start.elapsed();
        {
            let mut state = self.cache.state.lock().unwrap_or_else(|e| e.into_inner());
            for (&i, scored) in uncached.iter().zip(&computed) {
                state.cache.insert(children[i].clone(), scored.quality());
            }
            state.batches += 1;
            state.wall_time += elapsed;
        }
        self.assemble_scored(slots, children, computed)
    }

    /// Single-offspring companion of [`Self::evaluate_offspring_batch`] —
    /// the shape of an RL training rollout, which scores one child per
    /// policy sample. Cache first; a small diff against a state-carrying
    /// parent rides the allocation-free [`QualityModel::probe_delta`];
    /// anything else cold-scores. Bit-identical to [`Self::evaluate`] by
    /// the same contract as the batch path.
    pub fn evaluate_offspring(&self, parent: &ScoredPlan, child: &MigrationPlan) -> PlanQuality {
        self.cache.get_or_compute(child, |p| {
            if parent.traces().len() == self.quality.kernel().trace_count()
                && p.len() == parent.sites().len()
                && p.len() == self.quality.component_count()
            {
                let changes = diff_changes(parent.sites(), p.sites());
                if changes.len() <= self.delta_change_cap() {
                    return self.quality.probe_delta(parent, &changes);
                }
            }
            self.quality.evaluate(p)
        })
    }

    /// Largest change-set size the delta route accepts:
    /// `max(1, component_count × DELTA_DIFF_THRESHOLD)`.
    fn delta_change_cap(&self) -> usize {
        ((self.quality.component_count() as f64 * DELTA_DIFF_THRESHOLD) as usize).max(1)
    }

    /// Hand each computed [`ScoredPlan`] to its slot in input order,
    /// cloning only for in-batch duplicates; cache hits materialise as
    /// [`ScoredPlan::quality_only`] members.
    fn assemble_scored(
        &self,
        slots: Vec<ScoredSlot>,
        plans: &[MigrationPlan],
        computed: Vec<ScoredPlan>,
    ) -> Vec<ScoredPlan> {
        let mut uses = vec![0usize; computed.len()];
        for slot in &slots {
            if let ScoredSlot::Pending(k) = slot {
                uses[*k] += 1;
            }
        }
        let mut computed: Vec<Option<ScoredPlan>> = computed.into_iter().map(Some).collect();
        slots
            .into_iter()
            .zip(plans)
            .map(|(slot, plan)| match slot {
                ScoredSlot::Hit(quality) => ScoredPlan::quality_only(plan.to_sites(), quality),
                ScoredSlot::Pending(k) => {
                    uses[k] -= 1;
                    if uses[k] == 0 {
                        computed[k].take().expect("each pending slot taken once")
                    } else {
                        computed[k]
                            .as_ref()
                            .expect("pending slots are filled")
                            .clone()
                    }
                }
            })
            .collect()
    }

    /// Distinct plans scored so far (the cache size). This is what the
    /// recommender's `max_visited` budget counts — cache hits are free.
    pub fn unique_evaluations(&self) -> usize {
        self.cache.unique()
    }

    /// Requests answered from the cache so far.
    pub fn cache_hits(&self) -> usize {
        self.cache.cache_hits()
    }

    /// Snapshot of the evaluation statistics, stamped with the wrapped
    /// model's kernel compile time.
    pub fn stats(&self) -> EvalStats {
        let mut stats = self.cache.stats(self.threads);
        stats.kernel_compile_ms = self.quality.kernel_compile_ms();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::FootprintLearner;
    use crate::preferences::MigrationPreferences;
    use crate::profile::ApplicationProfile;
    use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
    use atlas_cloud::{CostModel, PricingModel, ResourceEstimator, ScalingEstimator};
    use atlas_sim::{ClusterSpec, OverloadModel, Placement, SimConfig, Simulator};
    use atlas_telemetry::TelemetryStore;

    fn build_quality() -> QualityModel {
        let app = social_network(SocialNetworkOptions::default());
        let n = app.component_count();
        let current = Placement::all_onprem(n);
        let sim = Simulator::new(
            app.clone(),
            current.clone(),
            SimConfig {
                cluster: ClusterSpec::default(),
                overload: OverloadModel::disabled(),
                metric_window_s: 5,
                seed: 6,
            },
        );
        let schedule =
            WorkloadGenerator::new(WorkloadOptions::social_network_default().with_seed(6))
                .generate(&app)
                .unwrap();
        let store = TelemetryStore::new();
        sim.run(&schedule, &store);
        let component_index: Vec<String> =
            app.components().iter().map(|c| c.name.clone()).collect();
        let stateful: Vec<String> = app
            .stateful_components()
            .into_iter()
            .map(|c| app.component_name(c).to_string())
            .collect();
        let profile = ApplicationProfile::learn(&store, &stateful, 20);
        let footprint = FootprintLearner::default().learn(&store);
        let injector = crate::delay::DelayInjector::new(
            ClusterSpec::default().network,
            component_index.clone(),
        );
        let demand = ScalingEstimator::with_scale(5.0).estimate(&store, &component_index, 6, 600);
        QualityModel::new(
            profile,
            footprint,
            injector,
            CostModel::new(PricingModel::default()),
            demand,
            MigrationPreferences::with_cpu_limit(12.0),
            current,
            component_index,
        )
    }

    /// `count` pairwise-distinct plans: plan `k` encodes `k` in binary.
    fn plans(n: usize, count: usize) -> Vec<MigrationPlan> {
        assert!(count < (1 << n));
        (0..count)
            .map(|k| {
                MigrationPlan::from_bits(&(0..n).map(|i| ((k >> i) & 1) as u8).collect::<Vec<u8>>())
            })
            .collect()
    }

    #[test]
    fn quality_model_and_evaluator_are_send_and_sync() {
        fn require<T: Send + Sync>() {}
        require::<QualityModel>();
        require::<PlanEvaluator<'_>>();
        require::<EvalStats>();
    }

    #[test]
    fn cache_serves_duplicates_once() {
        let quality = build_quality();
        let evaluator = PlanEvaluator::new(&quality);
        let n = quality.component_count();
        let plan = MigrationPlan::all_onprem(n);
        let first = evaluator.evaluate(&plan);
        let second = evaluator.evaluate(&plan);
        assert_eq!(first, second);
        assert_eq!(evaluator.unique_evaluations(), 1);
        assert_eq!(evaluator.cache_hits(), 1);
    }

    #[test]
    fn batches_dedupe_within_and_across_calls() {
        let quality = build_quality();
        let evaluator = PlanEvaluator::new(&quality);
        let n = quality.component_count();
        let mut batch = plans(n, 5);
        batch.push(batch[0].clone()); // in-batch duplicate
        let qualities = evaluator.evaluate_batch(&batch);
        assert_eq!(qualities.len(), 6);
        assert_eq!(qualities[0], qualities[5]);
        assert_eq!(evaluator.unique_evaluations(), 5);
        assert_eq!(evaluator.cache_hits(), 1);
        // Re-submitting the same batch is all hits.
        let again = evaluator.evaluate_batch(&batch);
        assert_eq!(again, qualities);
        assert_eq!(evaluator.unique_evaluations(), 5);
        assert_eq!(evaluator.cache_hits(), 7);
        let stats = evaluator.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.requests(), 12);
        assert!(stats.cache_hit_rate() > 0.5);
    }

    #[test]
    fn thread_count_does_not_change_scores() {
        let quality = build_quality();
        let n = quality.component_count();
        // 80 distinct plans: enough to cross the serial-fallback threshold,
        // so 2 and 8 threads genuinely exercise the parallel path while 1
        // thread stays serial — the scores must be bit-identical anyway.
        let batch = plans(n, 80);
        let direct: Vec<PlanQuality> = batch.iter().map(|p| quality.evaluate(p)).collect();
        for threads in [1, 2, 8] {
            let evaluator = PlanEvaluator::new(&quality).with_threads(threads);
            let scored = evaluator.evaluate_batch(&batch);
            for (a, b) in direct.iter().zip(&scored) {
                assert_eq!(a.performance.to_bits(), b.performance.to_bits());
                assert_eq!(a.availability.to_bits(), b.availability.to_bits());
                assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                assert_eq!(a.feasible, b.feasible);
            }
            assert_eq!(evaluator.threads(), effective_threads(threads));
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 3, 7, 0] {
            let doubled = parallel_map(&items, threads, |&x| x * 2);
            assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &usize| x).is_empty());
    }

    #[test]
    fn small_batches_fall_back_to_the_calling_thread() {
        // Below the per-worker work threshold no scope is spawned: every
        // item is computed on the calling thread.
        let caller = std::thread::current().id();
        let items: Vec<usize> = (0..MIN_ITEMS_PER_WORKER * 2 - 1).collect();
        let seen = parallel_map(&items, 8, |&x| (x, std::thread::current().id()));
        assert!(seen.iter().all(|&(_, id)| id == caller));
        // At and beyond 2 × the threshold, with >1 requested workers, at
        // least one item runs off-thread.
        let items: Vec<usize> = (0..MIN_ITEMS_PER_WORKER * 4).collect();
        let seen = parallel_map(&items, 4, |&x| (x, std::thread::current().id()));
        assert!(seen.iter().any(|&(_, id)| id != caller));
        assert_eq!(
            seen.iter().map(|&(x, _)| x).collect::<Vec<_>>(),
            items,
            "order preserved across the fan-out"
        );
    }

    #[test]
    fn stats_track_wall_time_and_threads() {
        let quality = build_quality();
        let evaluator = PlanEvaluator::new(&quality).with_threads(2);
        evaluator.evaluate_batch(&plans(quality.component_count(), 4));
        let stats = evaluator.stats();
        assert_eq!(stats.unique_evaluations, 4);
        assert_eq!(stats.threads, 2);
        assert!(stats.wall_time_ms > 0.0);
        assert!(stats.evaluations_per_sec() > 0.0);
        assert!(
            stats.kernel_compile_ms > 0.0,
            "the quality model's kernel compile time is surfaced"
        );
    }
}
