//! The compiled plan-evaluation kernel: compile once, score many.
//!
//! Delay injection over retained traces (paper §4.1.1, Figure 6) is the
//! inner loop of every search path in the workspace, and the interpretive
//! implementation in [`crate::delay`] pays for its generality on every call:
//! each caller→callee hop resolves component names with an O(n) scan over
//! `component_index`, looks payload sizes up in a `(String, String, String)`
//! hash map (allocating three `String` keys per probe), and walks the trace
//! tree with a recursion that re-derives the sequential-wave / parallel-
//! sibling / background structure from span timestamps — all of which is
//! invariant across the thousands of candidate plans a search scores.
//!
//! # Compile/score contract
//!
//! [`CompiledQuality::compile`] runs once at [`QualityModel`] construction
//! and bakes everything that does not depend on the candidate plan:
//!
//! * component names are resolved to `u32` indices (unknown/external
//!   components — e.g. clients — get a sentinel that always reads as
//!   [`SiteId::ON_PREM`], matching the interpretive injector);
//! * per-hop request/response bytes from the learned
//!   [`NetworkFootprint`] are folded into a precomputed `N×N` exchange-cost
//!   table over the site catalog (the two-site model compiles the familiar
//!   `[collocated, split]` pair as a 2×2 table), so the paper's Δ of Eq. 2
//!   becomes `delta = cost_table[caller_site × N + callee_site] −
//!   before_cost` — still a table lookup and one subtraction,
//!   zero-allocation per evaluation;
//! * because the **`current` placement is fixed per model** (it is the
//!   deployment the traces were collected under), `before_cost` is a baked
//!   constant per hop — this is why a `CompiledQuality` cannot be reused
//!   across different current placements and is rebuilt by
//!   [`QualityModel::new`];
//! * the wave grouping, inter-wave gaps and each node's trailing
//!   own-compute time are placement-independent functions of the span
//!   timestamps, so each trace compiles to a flat, recursion-free
//!   instruction arena (an `Op` stream) whose evaluation is driven only by
//!   the candidate [`Placement`] and a reusable wave-frame stack.
//!
//! Scoring a plan is then an iterative, zero-allocation pass: thread-local
//! [`EvalScratch`] buffers hold the wave stack, the in-cloud flags, the
//! on-prem index subset and the cost model's scratch, so concurrent
//! evaluator workers never contend on the allocator.
//!
//! # Bit-identity and the interpretive fallback
//!
//! The kernel performs the *same floating-point operations in the same
//! order* as the interpretive path, so its scores are bit-identical to
//! [`QualityModel::evaluate_interpretive`] — property tests pin this on
//! generated scenarios. The interpretive
//! [`DelayInjector`](crate::delay::DelayInjector) remains the reference
//! oracle: fall back to it when scoring against a *different* current
//! placement than the model was compiled for (e.g. the drift detector's
//! post-migration replays in [`crate::advisor`]), when traces are not
//! retained in a profile, or when debugging the kernel itself.
//!
//! # Batched lanes
//!
//! [`CompiledQuality::performance_lanes`] scores a whole batch of candidate
//! plans in **one** walk of the instruction arena. [`LaneScratch::load`]
//! transposes the batch into component-major site columns — `soa[c * lanes
//! + l]` is the site component `c` occupies in lane `l` — so when an op
//! touches a component, the sites it occupies across all lanes sit in one
//! contiguous strip. The interpreter state (the trace cursor, the wave
//! `base`/`wend` stacks, the per-API accumulator and the `Q_Perf` totals)
//! becomes a per-lane array updated in a tight inner loop over the lanes.
//! Every lane performs exactly the floating-point operations of the scalar
//! interpreter in the same order, so lane scores are bit-identical to
//! [`CompiledQuality::performance`] at *any* lane count; the differential
//! property suite pins widths 1, 3, 8 and 64 against both the scalar kernel
//! and the interpretive oracle. [`LANE_WIDTH`](crate::eval::LANE_WIDTH)
//! fixes the production width.
//!
//! # Delta re-scoring invariants
//!
//! A trace's latency is a pure function of the sites of the components it
//! references. [`CompiledQuality::performance_scored`] therefore retains
//! one [`ScoredTrace`] (the trace's latency under the scored plan) per
//! compiled trace, and [`CompiledQuality::performance_delta`] re-scores a
//! mutated plan by re-running **only** the traces whose reference set
//! intersects the changed-component list (a bloom fingerprint rejects most
//! untouched traces without walking their reference sets); every other
//! trace inherits its parent latency. Three invariants make the shortcut
//! exact rather than approximate:
//!
//! 1. **Purity** — re-running an untouched trace would reproduce its
//!    retained latency bit-for-bit, so inheriting it loses nothing;
//! 2. **Same summation tree** — the per-API means and the weighted
//!    `Q_Perf` total are re-summed in the original trace order over the
//!    (partially inherited) latencies: the identical sequence of f64
//!    additions as a cold score;
//! 3. **Path independence** — a [`ScoredPlan`] depends only on the plan it
//!    scores, never on the chain of deltas that produced it: mutate
//!    A → B → A and the second A is bit-identical to the first.
//!
//! # Example
//!
//! Lane-batched scoring and an incremental single-move re-score, both
//! matching the plain evaluator exactly (the quality model is learned from
//! a compressed simulated run of the social network):
//!
//! ```
//! use atlas_apps::{social_network, SocialNetworkOptions, WorkloadGenerator, WorkloadOptions};
//! use atlas_core::{Atlas, AtlasConfig, MigrationPlan, MigrationPreferences};
//! use atlas_sim::{ComponentId, OverloadModel, Placement, SimConfig, Simulator, SiteId};
//! use atlas_telemetry::TelemetryStore;
//!
//! let app = social_network(SocialNetworkOptions::default());
//! let current = Placement::all_onprem(app.component_count());
//! let mut options = WorkloadOptions::social_network_default().with_seed(5);
//! options.profile.day_seconds = 60; // compressed day keeps the example fast
//! let schedule = WorkloadGenerator::new(options).generate(&app).unwrap();
//! let store = TelemetryStore::new();
//! Simulator::new(
//!     app.clone(),
//!     current.clone(),
//!     SimConfig {
//!         overload: OverloadModel::disabled(),
//!         ..SimConfig::default()
//!     },
//! )
//! .run(&schedule, &store);
//!
//! let component_index: Vec<String> =
//!     app.components().iter().map(|c| c.name.clone()).collect();
//! let mut config = AtlasConfig::new(component_index, vec![]);
//! config.traces_per_api = 20;
//! config.horizon_steps = 4;
//! let mut atlas = Atlas::new(config);
//! atlas.learn(&store);
//! let quality = atlas.quality_model(current, MigrationPreferences::default());
//!
//! let n = app.component_count();
//! let onprem = MigrationPlan::all_onprem(n);
//! let cloud = MigrationPlan::new(Placement::all_cloud(n));
//!
//! // Batched lanes score both plans in one arena walk, bit-identically.
//! let batch = quality.evaluate_lanes(&[&onprem, &cloud]);
//! assert_eq!(batch[0], quality.evaluate(&onprem));
//! assert_eq!(batch[1], quality.evaluate(&cloud));
//!
//! // Delta path: move one component, re-running only the traces it touches.
//! let parent = quality.evaluate_scored(&onprem);
//! assert_eq!(parent.quality(), batch[0]);
//! let moved = quality.evaluate_delta(&parent, &[(ComponentId(0), SiteId::CLOUD)]);
//! let mut cold = onprem.clone();
//! cold.set(ComponentId(0), atlas_sim::Location::Cloud);
//! assert_eq!(moved.quality(), quality.evaluate(&cold));
//! // ...and reverting the move restores the parent exactly (A → B → A).
//! let back = quality.evaluate_delta(&moved, &[(ComponentId(0), SiteId::ON_PREM)]);
//! assert_eq!(back.quality(), parent.quality());
//! ```
//!
//! [`QualityModel`]: crate::quality::QualityModel
//! [`QualityModel::new`]: crate::quality::QualityModel::new
//! [`QualityModel::evaluate_interpretive`]: crate::quality::QualityModel::evaluate_interpretive
//! [`ScoredPlan`]: crate::quality::ScoredPlan

use std::cell::RefCell;
use std::collections::HashMap;

use atlas_cloud::{CostScratch, OnPremPeaks, ResourceDemand};
use atlas_sim::{ComponentId, OwnedSiteLimits, Placement, SiteId, SiteNetwork};
use atlas_telemetry::Trace;

use crate::footprint::NetworkFootprint;
use crate::preferences::MigrationPreferences;
use crate::profile::ApplicationProfile;

/// Sentinel component id for names absent from the component index
/// (external clients); they are treated as collocated with the on-prem
/// entry point (site 0), exactly like the interpretive injector's
/// `site_of`.
const UNKNOWN: u32 = u32::MAX;

/// One frame of the wave stack: the wave's base timestamp and the running
/// maximum end time of its children ("wave end").
#[derive(Debug, Clone, Copy, Default)]
pub struct WaveFrame {
    base: f64,
    wend: f64,
}

/// Reusable per-thread scratch buffers for kernel evaluation. Obtain one
/// with [`with_scratch`]; buffers grow to the working-set size once and are
/// reused across evaluations on the same thread.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Wave-frame stack of the trace interpreter (depth = trace depth).
    pub stack: Vec<WaveFrame>,
    /// Site assignment of the candidate plan, indexed like the component
    /// index.
    pub sites: Vec<SiteId>,
    /// Ascending indices of a component subset (the on-prem components
    /// during constraint checks).
    pub subset: Vec<usize>,
    /// Scratch of the cloud cost model.
    pub cost: CostScratch,
    /// Per-lane buffers of the batched (structure-of-arrays) scoring path.
    pub lanes: LaneScratch,
    /// Sorted ids of the components changed by a delta re-score.
    pub changed: Vec<u32>,
    /// Per-trace latencies retained during a delta probe.
    pub scored: Vec<ScoredTrace>,
}

/// Reusable buffers of the batched scoring path: the candidate plans of one
/// batch transposed into component-major site columns (structure of arrays)
/// plus the per-lane cursor, wave-stack and accumulator arrays that let one
/// walk of a trace's instruction stream price every lane. See the
/// [module docs](self#batched-lanes) for the layout.
#[derive(Debug, Default)]
pub struct LaneScratch {
    /// Component-major site columns: `soa[c * lanes + l]` is the site
    /// component `c` occupies in lane `l`.
    soa: Vec<SiteId>,
    /// Per-lane trace cursor (the scalar interpreter's `cur`).
    cur: Vec<f64>,
    /// Per-lane wave-frame `base` stack; grows by `lanes` per open wave.
    base: Vec<f64>,
    /// Per-lane wave-frame `wend` stack, parallel to `base`.
    wend: Vec<f64>,
    /// Per-lane per-API latency accumulator.
    acc: Vec<f64>,
    /// Per-lane `Q_Perf` totals.
    total: Vec<f64>,
}

impl LaneScratch {
    /// Transpose one batch of site assignments (one slice per lane, all of
    /// equal length) into component-major columns and reset the per-lane
    /// accumulators.
    pub fn load(&mut self, plans: &[&[SiteId]]) {
        let lanes = plans.len();
        let n = plans.first().map_or(0, |p| p.len());
        debug_assert!(
            plans.iter().all(|p| p.len() == n),
            "every lane of a batch must cover the same components"
        );
        self.soa.clear();
        self.soa.resize(n * lanes, SiteId::ON_PREM);
        for (l, plan) in plans.iter().enumerate() {
            for (c, &site) in plan.iter().enumerate() {
                self.soa[c * lanes + l] = site;
            }
        }
        self.cur.clear();
        self.cur.resize(lanes, 0.0);
        self.acc.clear();
        self.acc.resize(lanes, 0.0);
        self.total.clear();
        self.total.resize(lanes, 0.0);
        self.base.clear();
        self.wend.clear();
    }
}

/// The retained latency of one compiled trace under a parent plan: the unit
/// of reuse of the delta path. A trace's latency is a pure function of the
/// sites of the components it references, so
/// [`CompiledQuality::performance_delta`] re-runs a trace only when one of
/// those components changed and inherits this value bit-for-bit otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredTrace {
    latency_ms: f64,
    weight: f64,
}

impl ScoredTrace {
    /// The trace's estimated end-to-end latency under the parent plan (ms).
    pub fn latency_ms(&self) -> f64 {
        self.latency_ms
    }

    /// The clustering weight of the trace (the number of raw traces this
    /// representative stands for; 1.0 for unclustered profiles). Carried in
    /// the per-trace state so delta re-sums weight the inherited latencies
    /// exactly like a cold score.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

thread_local! {
    static SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
}

/// Run `f` with this thread's [`EvalScratch`]. Do not call [`with_scratch`]
/// again from inside `f` (the scratch is a `RefCell`; re-entry panics).
pub fn with_scratch<R>(f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// One instruction of a compiled trace. The stream is the pre-order
/// linearisation of the interpretive injector's recursion; see
/// [`CompiledTrace`].
#[derive(Debug, Clone)]
enum Op {
    /// Open a wave of parallel siblings: push a frame with
    /// `base = cur + gap` (the parent's own compute before triggering the
    /// wave) and `wend = cur`.
    Wave { gap: f64 },
    /// Start one child of the open wave:
    /// `cur = (base + offset) + (after_cost − before_cost)`, where the
    /// after-cost is the hop's link-cost-table entry for the candidate's
    /// `(caller_site, callee_site)` pair.
    Call {
        offset: f64,
        caller: u32,
        callee: u32,
        /// Offset of this hop's `site_count²` exchange-cost table in the
        /// trace's [`CompiledTrace::link_costs`] arena.
        cost_base: u32,
        before: f64,
    },
    /// Close one child: fold its end time into the wave end
    /// (`wend = max(wend, cur)`).
    Ret,
    /// Close the wave: `cur = pop().wend`.
    EndWave,
    /// The node's trailing own-compute after its last foreground wave:
    /// `cur += tail`.
    Tail { tail: f64 },
}

/// One retained trace compiled to a flat instruction arena. Evaluating it
/// replays the exact floating-point schedule of
/// [`DelayInjector::estimate_trace_latency_ms`](crate::delay::DelayInjector::estimate_trace_latency_ms)
/// without recursion, name resolution or hashing. Background subtrees are
/// not emitted at all: the interpretive path re-times them but discards the
/// result, so they cannot affect the returned latency.
///
/// `link_costs` holds one `site_count × site_count` exchange-cost table per
/// `Call` op (row-major by caller site), baked from the hop's learned
/// request/response bytes and the catalog's per-ordered-pair links.
#[derive(Debug, Clone)]
struct CompiledTrace {
    root_start: f64,
    /// Clustering weight: how many raw traces this (representative) trace
    /// stands for. 1.0 for unclustered profiles, which keeps the weighted
    /// per-API mean bit-identical to the unweighted one.
    weight: f64,
    ops: Vec<Op>,
    link_costs: Vec<f64>,
    /// Ascending, deduplicated ids of every indexed component referenced by
    /// a `Call` op (callers and callees; `UNKNOWN` excluded). The trace's
    /// latency is a pure function of the sites of exactly these components,
    /// which is what makes per-trace reuse in the delta path bitwise-safe.
    touched: Vec<u32>,
    /// Bloom fingerprint of `touched` (bit `id % 64`): a zero intersection
    /// with a change set's fingerprint proves the trace is unaffected
    /// without walking `touched`.
    mask: u64,
}

impl CompiledTrace {
    fn compile(
        trace: &Trace,
        weight: f64,
        api: &str,
        footprint: &NetworkFootprint,
        network: &SiteNetwork,
        current: &Placement,
        id_of: &HashMap<&str, u32>,
    ) -> Self {
        let mut ops = Vec::new();
        let mut link_costs = Vec::new();
        compile_node(
            trace,
            0,
            api,
            footprint,
            network,
            current,
            id_of,
            &mut ops,
            &mut link_costs,
        );
        let mut touched: Vec<u32> = ops
            .iter()
            .filter_map(|op| match *op {
                Op::Call { caller, callee, .. } => Some([caller, callee]),
                _ => None,
            })
            .flatten()
            .filter(|&id| id != UNKNOWN)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let mask = touched.iter().fold(0u64, |m, &id| m | (1u64 << (id % 64)));
        Self {
            root_start: trace.root().start_us as f64,
            weight,
            ops,
            link_costs,
            touched,
            mask,
        }
    }

    /// Whether any id of the (ascending) change set is referenced by this
    /// trace's hops.
    fn touches(&self, changed: &[u32]) -> bool {
        changed
            .iter()
            .any(|c| self.touched.binary_search(c).is_ok())
    }

    /// New end-to-end latency (ms) of this trace under the candidate
    /// site assignment `sites` over an `site_count`-site catalog.
    fn run(&self, sites: &[SiteId], site_count: usize, stack: &mut Vec<WaveFrame>) -> f64 {
        stack.clear();
        let mut cur = self.root_start;
        for op in &self.ops {
            match *op {
                Op::Wave { gap } => stack.push(WaveFrame {
                    base: cur + gap,
                    wend: cur,
                }),
                Op::Call {
                    offset,
                    caller,
                    callee,
                    cost_base,
                    before,
                } => {
                    let a = site_of(sites, caller);
                    let b = site_of(sites, callee);
                    let after =
                        self.link_costs[cost_base as usize + a.index() * site_count + b.index()];
                    let base = stack.last().expect("Call only inside a wave").base;
                    cur = (base + offset) + (after - before);
                }
                Op::Ret => {
                    let frame = stack.last_mut().expect("Ret only inside a wave");
                    frame.wend = frame.wend.max(cur);
                }
                Op::EndWave => cur = stack.pop().expect("EndWave closes a wave").wend,
                Op::Tail { tail } => cur += tail,
            }
        }
        (cur - self.root_start).max(0.0) / 1_000.0
    }

    /// Lane-batched [`Self::run`]: advance every lane of the transposed
    /// batch through one walk of the instruction stream, adding each lane's
    /// latency into `acc`. Per lane, the floating-point schedule is exactly
    /// that of [`Self::run`] — the lanes are arithmetically independent, so
    /// interleaving them preserves bit-identity — while the op decode, the
    /// wave bookkeeping and the `UNKNOWN` resolution are paid once per op
    /// instead of once per op per plan.
    #[allow(clippy::too_many_arguments)]
    fn run_lanes(
        &self,
        soa: &[SiteId],
        lanes: usize,
        site_count: usize,
        cur: &mut [f64],
        base: &mut Vec<f64>,
        wend: &mut Vec<f64>,
        acc: &mut [f64],
    ) {
        self.walk_lanes(soa, lanes, site_count, cur, base, wend);
        for (slot, &c) in acc[..lanes].iter_mut().zip(cur[..lanes].iter()) {
            // Same schedule as the scalar path: latency first, then the
            // clustering weight — `weight * latency` per trace.
            *slot += self.weight * ((c - self.root_start).max(0.0) / 1_000.0);
        }
    }

    /// [`Self::run_lanes`] with each lane's latency also retained into that
    /// lane's [`ScoredTrace`] vector (the parent state of the delta path).
    /// The accumulator arithmetic — `acc += weight * latency` with the
    /// latency computed first — is the same expression as the unscored
    /// path, so the per-API sums stay bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn run_lanes_scored(
        &self,
        soa: &[SiteId],
        lanes: usize,
        site_count: usize,
        cur: &mut [f64],
        base: &mut Vec<f64>,
        wend: &mut Vec<f64>,
        acc: &mut [f64],
        scored: &mut [Vec<ScoredTrace>],
    ) {
        self.walk_lanes(soa, lanes, site_count, cur, base, wend);
        for l in 0..lanes {
            let latency_ms = (cur[l] - self.root_start).max(0.0) / 1_000.0;
            scored[l].push(ScoredTrace {
                latency_ms,
                weight: self.weight,
            });
            acc[l] += self.weight * latency_ms;
        }
    }

    /// The shared op walk of the lane-batched paths: advance every lane's
    /// cursor through the instruction stream, leaving the per-lane end time
    /// in `cur`.
    fn walk_lanes(
        &self,
        soa: &[SiteId],
        lanes: usize,
        site_count: usize,
        cur: &mut [f64],
        base: &mut Vec<f64>,
        wend: &mut Vec<f64>,
    ) {
        base.clear();
        wend.clear();
        cur[..lanes].iter_mut().for_each(|c| *c = self.root_start);
        for op in &self.ops {
            match *op {
                Op::Wave { gap } => {
                    let d = base.len();
                    wend.extend_from_slice(&cur[..lanes]);
                    base.resize(d + lanes, 0.0);
                    for (slot, &c) in base[d..].iter_mut().zip(cur[..lanes].iter()) {
                        *slot = c + gap;
                    }
                }
                Op::Call {
                    offset,
                    caller,
                    callee,
                    cost_base,
                    before,
                } => {
                    let d = base.len() - lanes;
                    let table = &self.link_costs[cost_base as usize..];
                    for l in 0..lanes {
                        let a = if caller == UNKNOWN {
                            SiteId::ON_PREM
                        } else {
                            soa[caller as usize * lanes + l]
                        };
                        let b = if callee == UNKNOWN {
                            SiteId::ON_PREM
                        } else {
                            soa[callee as usize * lanes + l]
                        };
                        let after = table[a.index() * site_count + b.index()];
                        cur[l] = (base[d + l] + offset) + (after - before);
                    }
                }
                Op::Ret => {
                    let d = wend.len() - lanes;
                    for (slot, &c) in wend[d..].iter_mut().zip(cur[..lanes].iter()) {
                        *slot = slot.max(c);
                    }
                }
                Op::EndWave => {
                    let d = wend.len() - lanes;
                    cur[..lanes].copy_from_slice(&wend[d..]);
                    base.truncate(d);
                    wend.truncate(d);
                }
                Op::Tail { tail } => {
                    for c in cur[..lanes].iter_mut() {
                        *c += tail;
                    }
                }
            }
        }
    }
}

#[inline]
fn site_of(sites: &[SiteId], id: u32) -> SiteId {
    if id == UNKNOWN {
        SiteId::ON_PREM
    } else {
        sites[id as usize]
    }
}

/// Emit the instruction stream of one trace node. Mirrors
/// `DelayInjector::inject`: the wave grouping and every placement-
/// independent quantity (gaps, child offsets, trailing compute, the per-hop
/// exchange-cost tables over every ordered site pair) are computed here,
/// once, with the same arithmetic the interpretive path performs per
/// evaluation.
#[allow(clippy::too_many_arguments)]
fn compile_node(
    trace: &Trace,
    node: usize,
    api: &str,
    footprint: &NetworkFootprint,
    network: &SiteNetwork,
    current: &Placement,
    id_of: &HashMap<&str, u32>,
    ops: &mut Vec<Op>,
    link_costs: &mut Vec<f64>,
) {
    let span = &trace.nodes[node].span;
    let orig_start = span.start_us as f64;
    let orig_end = span.end_us() as f64;

    let foreground: Vec<usize> = trace.nodes[node]
        .children
        .iter()
        .copied()
        .filter(|&c| !trace.is_background(c))
        .collect();

    // Group foreground children into sequential waves of parallel siblings
    // (same rule as the interpretive injector).
    let mut waves: Vec<Vec<usize>> = Vec::new();
    let mut wave_end = f64::NEG_INFINITY;
    for &c in &foreground {
        let cs = trace.nodes[c].span.start_us as f64;
        let ce = trace.nodes[c].span.end_us() as f64;
        if waves.is_empty() || cs >= wave_end {
            waves.push(vec![c]);
            wave_end = ce;
        } else {
            waves.last_mut().expect("non-empty").push(c);
            wave_end = wave_end.max(ce);
        }
    }

    let mut prev_end_orig = orig_start;
    for wave in &waves {
        let wave_orig_start = wave
            .iter()
            .map(|&c| trace.nodes[c].span.start_us as f64)
            .fold(f64::INFINITY, f64::min);
        let gap = (wave_orig_start - prev_end_orig).max(0.0);
        ops.push(Op::Wave { gap });

        let mut wave_end_orig = prev_end_orig;
        for &c in wave {
            let child_span = &trace.nodes[c].span;
            let (req, resp) = footprint.get_or_zero(api, &span.component, &child_span.component);
            let caller = resolve(id_of, &span.component);
            let callee = resolve(id_of, &child_span.component);
            // Bake this hop's exchange cost for every ordered site pair
            // (row-major by caller site). The 2-site table is exactly the
            // old `[collocated, split]` pair laid out as a 2×2 matrix.
            let n = network.site_count();
            let cost_base = link_costs.len() as u32;
            for a in 0..n as u16 {
                for b in 0..n as u16 {
                    link_costs.push(network.exchange_us(SiteId(a), SiteId(b), req, resp));
                }
            }
            let before_a = current_site(current, caller);
            let before_b = current_site(current, callee);
            let before = link_costs[cost_base as usize + before_a.index() * n + before_b.index()];
            ops.push(Op::Call {
                offset: child_span.start_us as f64 - wave_orig_start,
                caller,
                callee,
                cost_base,
                before,
            });
            compile_node(
                trace, c, api, footprint, network, current, id_of, ops, link_costs,
            );
            ops.push(Op::Ret);
            wave_end_orig = wave_end_orig.max(child_span.end_us() as f64);
        }
        ops.push(Op::EndWave);
        prev_end_orig = wave_end_orig;
    }
    ops.push(Op::Tail {
        tail: (orig_end - prev_end_orig).max(0.0),
    });
}

fn resolve(id_of: &HashMap<&str, u32>, name: &str) -> u32 {
    id_of.get(name).copied().unwrap_or(UNKNOWN)
}

fn current_site(current: &Placement, id: u32) -> SiteId {
    if id == UNKNOWN {
        SiteId::ON_PREM
    } else {
        current.site(ComponentId(id as usize))
    }
}

/// The feasibility side of Eq. 4, precompiled: placement pins resolved to
/// `(index, site)` pairs (plus the site-set pins of the N-site model), the
/// on-prem resource limits, the capacity limits of any owned sites at index
/// > 0 (from [`SiteCatalog::owned_site_limits`]), and the budget. Shared by
/// the core quality kernel and the baselines' placement scorer so every
/// search path pays the same (allocation-free) constraint check.
///
/// [`SiteCatalog::owned_site_limits`]: atlas_sim::SiteCatalog::owned_site_limits
#[derive(Debug, Clone)]
pub struct ConstraintKernel {
    pinned: Vec<(usize, SiteId)>,
    allowed: Vec<(usize, Vec<SiteId>)>,
    cpu_limit: f64,
    memory_limit_gb: f64,
    storage_limit_gb: f64,
    owned: Vec<OwnedSiteLimits>,
    budget: Option<f64>,
}

impl ConstraintKernel {
    /// Compile the constraints of a set of migration preferences.
    pub fn new(preferences: &MigrationPreferences) -> Self {
        let mut pinned: Vec<(usize, SiteId)> =
            preferences.pinned.iter().map(|(&c, &s)| (c.0, s)).collect();
        pinned.sort_unstable_by_key(|&(i, _)| i);
        let mut allowed: Vec<(usize, Vec<SiteId>)> = preferences
            .allowed_sites
            .iter()
            .map(|(&c, sites)| (c.0, sites.clone()))
            .collect();
        allowed.sort_unstable_by_key(|&(i, _)| i);
        Self {
            pinned,
            allowed,
            cpu_limit: preferences.onprem_cpu_limit,
            memory_limit_gb: preferences.onprem_memory_limit_gb,
            storage_limit_gb: preferences.onprem_storage_limit_gb,
            owned: Vec::new(),
            budget: preferences.budget,
        }
    }

    /// Attach Eq. 4 capacity limits for owned sites at index > 0 (typically
    /// [`SiteCatalog::owned_site_limits`]). The preference-driven site-0
    /// limits are unaffected.
    ///
    /// [`SiteCatalog::owned_site_limits`]: atlas_sim::SiteCatalog::owned_site_limits
    pub fn with_owned_site_limits(mut self, limits: Vec<OwnedSiteLimits>) -> Self {
        self.owned = limits;
        self
    }

    /// The attached owned-site capacity limits (empty unless the catalog
    /// declares finite-capacity owned sites beyond site 0).
    pub fn owned_site_limits(&self) -> &[OwnedSiteLimits] {
        &self.owned
    }

    /// Whether the demand peaks of one owned site fit its capacity limits.
    fn owned_site_fits(limits: &OwnedSiteLimits, peaks: &OnPremPeaks) -> bool {
        !(limits.cpu_cores.is_finite() && peaks.cpu > limits.cpu_cores
            || limits.memory_gb.is_finite() && peaks.memory_gb > limits.memory_gb
            || limits.storage_gb.is_finite() && peaks.storage_gb > limits.storage_gb)
    }

    /// Whether any placement pin (exact or site-set) is violated by the
    /// site assignment.
    pub fn violates_pins(&self, sites: &[SiteId]) -> bool {
        self.pinned
            .iter()
            .any(|&(i, site)| i < sites.len() && sites[i] != site)
            || self
                .allowed
                .iter()
                .any(|(i, set)| *i < sites.len() && !set.contains(&sites[*i]))
    }

    /// Whether a placement satisfies every constraint of Eq. 4. `cost` is
    /// called at most once, and only when a budget is set — pass the
    /// already-computed plan cost to avoid scoring it twice per evaluation.
    ///
    /// The peak-demand sums iterate the on-prem components in ascending
    /// index order, exactly like the interpretive
    /// [`QualityModel::feasibility`](crate::quality::QualityModel::feasibility),
    /// so the verdict is bit-identical.
    pub fn feasible(
        &self,
        demand: &ResourceDemand,
        sites: &[SiteId],
        subset: &mut Vec<usize>,
        cost: impl FnOnce() -> f64,
    ) -> bool {
        if self.violates_pins(sites) {
            return false;
        }
        subset.clear();
        subset.extend((0..sites.len()).filter(|&i| sites[i].is_on_prem()));
        if self.cpu_limit.is_finite() && demand.peak_cpu(subset) > self.cpu_limit {
            return false;
        }
        if self.memory_limit_gb.is_finite() && demand.peak_memory_gb(subset) > self.memory_limit_gb
        {
            return false;
        }
        if self.storage_limit_gb.is_finite()
            && demand.peak_storage_gb(subset) > self.storage_limit_gb
        {
            return false;
        }
        for limits in &self.owned {
            subset.clear();
            subset.extend((0..sites.len()).filter(|&i| sites[i] == limits.site));
            let peaks = OnPremPeaks {
                cpu: demand.peak_cpu(subset),
                memory_gb: demand.peak_memory_gb(subset),
                storage_gb: demand.peak_storage_gb(subset),
            };
            if !Self::owned_site_fits(limits, &peaks) {
                return false;
            }
        }
        if let Some(budget) = self.budget {
            if cost() > budget {
                return false;
            }
        }
        true
    }

    /// [`Self::feasible`] fed precomputed on-prem peaks (from
    /// [`CompiledCost::evaluate_with_peaks`]) instead of re-scanning the
    /// demand matrix per call. The peaks are bit-identical to the
    /// interpretive subset sums, so the verdict is too. `site_peaks` is
    /// consulted only for the owned sites beyond site 0 that carry capacity
    /// limits (typically [`CompiledCost::site_peaks`] over the scratch the
    /// cost pass just filled); with no such limits it is never called.
    ///
    /// [`CompiledCost::evaluate_with_peaks`]: atlas_cloud::CompiledCost::evaluate_with_peaks
    /// [`CompiledCost::site_peaks`]: atlas_cloud::CompiledCost::site_peaks
    pub fn feasible_with_peaks(
        &self,
        sites: &[SiteId],
        peaks: &OnPremPeaks,
        mut site_peaks: impl FnMut(SiteId) -> OnPremPeaks,
        cost: impl FnOnce() -> f64,
    ) -> bool {
        if self.violates_pins(sites) {
            return false;
        }
        if self.cpu_limit.is_finite() && peaks.cpu > self.cpu_limit {
            return false;
        }
        if self.memory_limit_gb.is_finite() && peaks.memory_gb > self.memory_limit_gb {
            return false;
        }
        if self.storage_limit_gb.is_finite() && peaks.storage_gb > self.storage_limit_gb {
            return false;
        }
        for limits in &self.owned {
            if !Self::owned_site_fits(limits, &site_peaks(limits.site)) {
                return false;
            }
        }
        if let Some(budget) = self.budget {
            if cost() > budget {
                return false;
            }
        }
        true
    }
}

/// One API compiled for scoring: its preference weight, baseline latency,
/// the indices of its stateful components (for `Q_Avai`) and its retained
/// traces as instruction arenas.
#[derive(Debug, Clone)]
struct CompiledApi {
    weight: f64,
    baseline_ms: f64,
    /// Total clustering weight of the compiled traces (Σ wᵢ in trace
    /// order). With unit weights this is exactly `traces.len() as f64`, so
    /// the weighted per-API mean `Σ wᵢ·latᵢ / Σ wᵢ` degenerates bitwise to
    /// the unweighted `Σ latᵢ / len`.
    trace_weight_total: f64,
    stateful: Vec<u32>,
    traces: Vec<CompiledTrace>,
}

/// Compile one API's profile entry into its flat op arena. The result
/// depends only on the named API's profile entry plus the model-wide
/// footprint/network/preferences/current placement, which is what makes
/// per-API recompilation ([`CompiledQuality::recompile_apis`]) bit-identical
/// to a cold compile.
#[allow(clippy::too_many_arguments)]
fn compile_api(
    profile: &ApplicationProfile,
    name: &str,
    id_of: &HashMap<&str, u32>,
    footprint: &NetworkFootprint,
    network: &SiteNetwork,
    preferences: &MigrationPreferences,
    current: &Placement,
) -> CompiledApi {
    let api = &profile.apis[name];
    let mut stateful: Vec<u32> = api
        .stateful_components
        .iter()
        .filter_map(|c| id_of.get(c.as_str()).copied())
        .collect();
    stateful.sort_unstable();
    let traces: Vec<CompiledTrace> = api
        .traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            CompiledTrace::compile(
                t,
                api.trace_weight(i),
                name,
                footprint,
                network,
                current,
                id_of,
            )
        })
        .collect();
    // Σ wᵢ in trace order, so unit weights reproduce `len() as f64`
    // exactly.
    let trace_weight_total = traces.iter().map(|t| t.weight).sum();
    CompiledApi {
        weight: preferences.api_weight(name),
        baseline_ms: api.mean_latency_ms.max(1e-6),
        trace_weight_total,
        stateful,
        traces,
    }
}

/// The compiled evaluation kernel of one [`QualityModel`]: every API's
/// traces as flat instruction arenas plus the precompiled constraint
/// kernel. See the [module docs](self) for the compile/score contract.
///
/// [`QualityModel`]: crate::quality::QualityModel
#[derive(Debug, Clone)]
pub struct CompiledQuality {
    apis: Vec<CompiledApi>,
    api_index: HashMap<String, usize>,
    constraints: ConstraintKernel,
    site_count: usize,
    compile_ms: f64,
}

impl CompiledQuality {
    /// Compile a learned profile + footprint against a per-ordered-pair
    /// link model, the current placement and the owner's preferences.
    /// `api_order` fixes the API summation order of `Q_Perf`/`Q_Avai` (the
    /// quality model passes its sorted API list so kernel and interpretive
    /// sums agree bitwise).
    #[allow(clippy::too_many_arguments)]
    pub fn compile(
        profile: &ApplicationProfile,
        footprint: &NetworkFootprint,
        network: &SiteNetwork,
        preferences: &MigrationPreferences,
        current: &Placement,
        component_index: &[String],
        api_order: &[String],
    ) -> Self {
        let start = std::time::Instant::now();
        let id_of: HashMap<&str, u32> = component_index
            .iter()
            .enumerate()
            .map(|(i, name)| (name.as_str(), i as u32))
            .collect();

        let mut apis = Vec::with_capacity(api_order.len());
        let mut api_index = HashMap::with_capacity(api_order.len());
        for name in api_order {
            api_index.insert(name.clone(), apis.len());
            apis.push(compile_api(
                profile,
                name,
                &id_of,
                footprint,
                network,
                preferences,
                current,
            ));
        }
        Self {
            apis,
            api_index,
            constraints: ConstraintKernel::new(preferences),
            site_count: network.site_count(),
            compile_ms: start.elapsed().as_secs_f64() * 1_000.0,
        }
    }

    /// Recompile only the named APIs in place against an updated profile,
    /// reusing every other API's compiled op arena untouched.
    ///
    /// `api_order` is the model's *new* sorted API order: slots are
    /// inserted for APIs new to the order and dropped for APIs absent from
    /// it, so the compiled order always matches a cold
    /// [`CompiledQuality::compile`] over the same order. Because each API's
    /// compiled form depends only on its own profile entry (plus the
    /// model-wide footprint, network, current placement and preferences,
    /// which this call must keep fixed), recompiling exactly the dirty APIs
    /// is bit-identical to a cold compile from the updated profile.
    /// `compile_ms` is restamped with the incremental compile time. The
    /// constraint kernel (including any owned-site limits) is untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn recompile_apis(
        &mut self,
        profile: &ApplicationProfile,
        footprint: &NetworkFootprint,
        network: &SiteNetwork,
        preferences: &MigrationPreferences,
        current: &Placement,
        component_index: &[String],
        api_order: &[String],
        dirty: &[String],
    ) {
        let start = std::time::Instant::now();
        let id_of: HashMap<&str, u32> = component_index
            .iter()
            .enumerate()
            .map(|(i, name)| (name.as_str(), i as u32))
            .collect();
        let dirty: std::collections::HashSet<&str> = dirty.iter().map(String::as_str).collect();
        let mut old: Vec<Option<CompiledApi>> = std::mem::take(&mut self.apis)
            .into_iter()
            .map(Some)
            .collect();
        let old_index = std::mem::take(&mut self.api_index);
        let mut apis = Vec::with_capacity(api_order.len());
        let mut api_index = HashMap::with_capacity(api_order.len());
        for name in api_order {
            let compiled = match old_index.get(name) {
                Some(&slot) if !dirty.contains(name.as_str()) => {
                    old[slot].take().expect("compiled slots are reused once")
                }
                _ => compile_api(
                    profile,
                    name,
                    &id_of,
                    footprint,
                    network,
                    preferences,
                    current,
                ),
            };
            api_index.insert(name.clone(), apis.len());
            apis.push(compiled);
        }
        self.apis = apis;
        self.api_index = api_index;
        self.compile_ms = start.elapsed().as_secs_f64() * 1_000.0;
    }

    /// Attach owned-site capacity limits to the compiled constraint kernel
    /// (see [`ConstraintKernel::with_owned_site_limits`]).
    pub fn set_owned_site_limits(&mut self, limits: Vec<OwnedSiteLimits>) {
        self.constraints = self.constraints.clone().with_owned_site_limits(limits);
    }

    /// Wall-clock time the compile pass took, in milliseconds.
    pub fn compile_ms(&self) -> f64 {
        self.compile_ms
    }

    /// Number of sites the per-hop cost tables cover.
    pub fn site_count(&self) -> usize {
        self.site_count
    }

    /// The precompiled constraint kernel.
    pub fn constraints(&self) -> &ConstraintKernel {
        &self.constraints
    }

    /// Index of an API in the compiled order, if it was learned.
    pub fn api_slot(&self, api: &str) -> Option<usize> {
        self.api_index.get(api).copied()
    }

    /// Weighted mean post-migration latency (ms) of one compiled API under
    /// the candidate site assignment: `Σ wᵢ·latᵢ / Σ wᵢ` over the retained
    /// (representative) traces. 0.0 when no traces were retained, like the
    /// interpretive estimate.
    pub fn api_latency_ms(&self, slot: usize, sites: &[SiteId], stack: &mut Vec<WaveFrame>) -> f64 {
        let api = &self.apis[slot];
        if api.traces.is_empty() {
            return 0.0;
        }
        api.traces
            .iter()
            .map(|t| t.weight * t.run(sites, self.site_count, stack))
            .sum::<f64>()
            / api.trace_weight_total
    }

    /// `Q_Perf(p)`: weighted mean of per-API latency ratios.
    pub fn performance(&self, sites: &[SiteId], stack: &mut Vec<WaveFrame>) -> f64 {
        if self.apis.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        let mut weight_sum = 0.0;
        for (slot, api) in self.apis.iter().enumerate() {
            let estimated = self.api_latency_ms(slot, sites, stack).max(1e-9);
            total += api.weight * estimated / api.baseline_ms;
            weight_sum += api.weight;
        }
        total / weight_sum
    }

    /// Total number of compiled traces across every API: the length of the
    /// flat per-trace state retained by [`Self::performance_scored`].
    pub fn trace_count(&self) -> usize {
        self.apis.iter().map(|a| a.traces.len()).sum()
    }

    /// Lane-batched [`Self::performance`]: compute `Q_Perf` for every lane
    /// of the batch loaded into `scratch` (see [`LaneScratch::load`]) in one
    /// walk over the instruction arenas, appending per-lane values to `out`.
    /// Each lane's result is bit-identical to the scalar path.
    pub fn performance_lanes(&self, scratch: &mut LaneScratch, lanes: usize, out: &mut Vec<f64>) {
        if self.apis.is_empty() {
            out.extend(std::iter::repeat(1.0).take(lanes));
            return;
        }
        let LaneScratch {
            soa,
            cur,
            base,
            wend,
            acc,
            total,
        } = scratch;
        total[..lanes].iter_mut().for_each(|t| *t = 0.0);
        let mut weight_sum = 0.0;
        for api in &self.apis {
            acc[..lanes].iter_mut().for_each(|a| *a = 0.0);
            for trace in &api.traces {
                trace.run_lanes(soa, lanes, self.site_count, cur, base, wend, acc);
            }
            for l in 0..lanes {
                // Empty-trace APIs estimate 0.0 like the scalar path; the
                // max(1e-9) floor then matches bitwise.
                let estimated = if api.traces.is_empty() {
                    0.0f64
                } else {
                    acc[l] / api.trace_weight_total
                }
                .max(1e-9);
                total[l] += api.weight * estimated / api.baseline_ms;
            }
            weight_sum += api.weight;
        }
        out.extend(total[..lanes].iter().map(|t| t / weight_sum));
    }

    /// Lane-batched [`Self::performance_scored`]: compute `Q_Perf` for
    /// every lane of the batch loaded into `scratch` in one walk over the
    /// instruction arenas, appending per-lane values to `out` and filling
    /// `scored[l]` with lane `l`'s retained per-trace latencies (flat,
    /// API-major, the same layout as [`Self::performance_scored`]). Each
    /// lane's result — including the retained state — is bit-identical to
    /// the scalar scored path.
    pub fn performance_scored_lanes(
        &self,
        scratch: &mut LaneScratch,
        lanes: usize,
        out: &mut Vec<f64>,
        scored: &mut [Vec<ScoredTrace>],
    ) {
        for lane in scored[..lanes].iter_mut() {
            lane.clear();
        }
        if self.apis.is_empty() {
            out.extend(std::iter::repeat(1.0).take(lanes));
            return;
        }
        let LaneScratch {
            soa,
            cur,
            base,
            wend,
            acc,
            total,
        } = scratch;
        total[..lanes].iter_mut().for_each(|t| *t = 0.0);
        let mut weight_sum = 0.0;
        for api in &self.apis {
            acc[..lanes].iter_mut().for_each(|a| *a = 0.0);
            for trace in &api.traces {
                trace.run_lanes_scored(soa, lanes, self.site_count, cur, base, wend, acc, scored);
            }
            for l in 0..lanes {
                // Empty-trace APIs estimate 0.0 like the scalar path; the
                // max(1e-9) floor then matches bitwise.
                let estimated = if api.traces.is_empty() {
                    0.0f64
                } else {
                    acc[l] / api.trace_weight_total
                }
                .max(1e-9);
                total[l] += api.weight * estimated / api.baseline_ms;
            }
            weight_sum += api.weight;
        }
        out.extend(total[..lanes].iter().map(|t| t / weight_sum));
    }

    /// [`Self::performance`] with the per-trace latencies retained into
    /// `traces` (flat, API-major, in the compiled API order): the parent
    /// state consumed by [`Self::performance_delta`].
    pub fn performance_scored(
        &self,
        sites: &[SiteId],
        stack: &mut Vec<WaveFrame>,
        traces: &mut Vec<ScoredTrace>,
    ) -> f64 {
        traces.clear();
        if self.apis.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        let mut weight_sum = 0.0;
        for api in &self.apis {
            let mut estimated = 0.0;
            if !api.traces.is_empty() {
                let mut sum = 0.0;
                for trace in &api.traces {
                    let latency_ms = trace.run(sites, self.site_count, stack);
                    traces.push(ScoredTrace {
                        latency_ms,
                        weight: trace.weight,
                    });
                    sum += trace.weight * latency_ms;
                }
                estimated = sum / api.trace_weight_total;
            }
            let estimated = estimated.max(1e-9);
            total += api.weight * estimated / api.baseline_ms;
            weight_sum += api.weight;
        }
        total / weight_sum
    }

    /// Incremental [`Self::performance_scored`]: re-score against `sites`
    /// re-running only the traces that reference a changed component
    /// (`changed` ascending, `changed_mask` its bloom fingerprint — see
    /// [`ScoredTrace`]); every other trace inherits its parent latency from
    /// `prev` bit-for-bit. The per-API means and the weighted total are
    /// re-summed in the original order over identical values, so the result
    /// is bit-identical to a cold re-score. `prev` must hold
    /// [`Self::trace_count`] entries from the parent's scoring; the fresh
    /// per-trace state is written to `next`.
    #[allow(clippy::too_many_arguments)]
    pub fn performance_delta(
        &self,
        sites: &[SiteId],
        changed: &[u32],
        changed_mask: u64,
        prev: &[ScoredTrace],
        next: &mut Vec<ScoredTrace>,
        stack: &mut Vec<WaveFrame>,
    ) -> f64 {
        assert_eq!(
            prev.len(),
            self.trace_count(),
            "parent state does not match this kernel's compiled traces"
        );
        next.clear();
        if self.apis.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        let mut weight_sum = 0.0;
        let mut slot = 0usize;
        for api in &self.apis {
            let mut estimated = 0.0;
            if !api.traces.is_empty() {
                let mut sum = 0.0;
                for trace in &api.traces {
                    let parent = prev[slot];
                    slot += 1;
                    let latency_ms = if trace.mask & changed_mask != 0 && trace.touches(changed) {
                        trace.run(sites, self.site_count, stack)
                    } else {
                        parent.latency_ms
                    };
                    next.push(ScoredTrace {
                        latency_ms,
                        weight: trace.weight,
                    });
                    sum += trace.weight * latency_ms;
                }
                estimated = sum / api.trace_weight_total;
            }
            let estimated = estimated.max(1e-9);
            total += api.weight * estimated / api.baseline_ms;
            weight_sum += api.weight;
        }
        total / weight_sum
    }

    /// `Q_Avai(p)`: weighted count of APIs whose stateful dependencies move
    /// relative to the compiled current placement (any site change counts,
    /// including moves between two elastic sites).
    pub fn availability(&self, sites: &[SiteId], current: &[SiteId]) -> f64 {
        let mut disruption = 0.0;
        for api in &self.apis {
            let disrupted = api
                .stateful
                .iter()
                .any(|&i| sites[i as usize] != current[i as usize]);
            if disrupted {
                disruption += api.weight;
            }
        }
        disruption
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayInjector;
    use crate::plan::MigrationPlan;
    use crate::profile::{ApiProfile, ApplicationProfile};
    use crate::quality::QualityModel;
    use atlas_cloud::{CostModel, PricingModel};
    use atlas_sim::NetworkModel;
    use atlas_telemetry::{Span, SpanId, TraceId};
    use std::collections::{HashMap as Map, HashSet};

    /// The Figure 6 trace shape, but with components the model does *not*
    /// index (`ExternalClient`, `ThirdPartyCDN`) mixed in: unknown names
    /// must resolve to on-prem in both paths.
    fn trace_with_externals() -> Trace {
        let t = TraceId(3);
        let spans = vec![
            Span::new(t, SpanId(0), None, "Frontend", "/api", 0, 10_000),
            Span::new(
                t,
                SpanId(1),
                Some(SpanId(0)),
                "ThirdPartyCDN",
                "fetch",
                1_000,
                2_000,
            ),
            Span::new(t, SpanId(2), Some(SpanId(0)), "Store", "put", 4_000, 3_000),
            Span::new(
                t,
                SpanId(3),
                Some(SpanId(2)),
                "ExternalClient",
                "ack",
                4_500,
                500,
            ),
            // Background fan-out, outliving the root.
            Span::new(
                t,
                SpanId(4),
                Some(SpanId(0)),
                "Notifier",
                "notify",
                8_000,
                9_000,
            ),
        ];
        Trace::from_spans(spans).unwrap()
    }

    fn model_with_externals() -> QualityModel {
        let component_index = vec!["Frontend".to_string(), "Store".to_string()];
        let trace = trace_with_externals();
        let mut footprint = NetworkFootprint::new();
        footprint.insert("/api", "Frontend", "ThirdPartyCDN", 2_000.0, 50_000.0);
        footprint.insert("/api", "Frontend", "Store", 9_000.0, 200.0);
        footprint.insert("/api", "Store", "ExternalClient", 100.0, 100.0);
        footprint.insert("/api", "Frontend", "Notifier", 700.0, 0.0);

        let mut apis = Map::new();
        apis.insert(
            "/api".to_string(),
            ApiProfile {
                endpoint: "/api".to_string(),
                traces: vec![trace.clone(), trace],
                trace_weights: vec![],
                components: ["Frontend", "Store", "ThirdPartyCDN"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<HashSet<_>>(),
                stateful_components: ["Store", "GhostStore"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<HashSet<_>>(),
                mean_latency_ms: 10.0,
                request_count: 2,
            },
        );
        let profile = ApplicationProfile {
            apis,
            components: Map::new(),
        };
        let current = Placement::all_onprem(2);
        let mut demand = ResourceDemand::zeros(component_index.clone(), 4, 600);
        demand.fill_cpu(0, 2.0);
        demand.fill_cpu(1, 3.0);
        demand.fill_storage(1, 10.0);
        QualityModel::new(
            profile,
            footprint,
            DelayInjector::new(NetworkModel::default(), component_index.clone()),
            CostModel::new(PricingModel::default()),
            demand,
            MigrationPreferences::with_cpu_limit(4.0).with_budget(1.0e9),
            current,
            component_index,
        )
    }

    /// The same profile/footprint/demand as [`model_with_externals`], but
    /// over a 3-site catalog whose links are deliberately asymmetric:
    /// unknown components must resolve to site 0 in both the kernel and
    /// the interpretive oracle, for every site assignment. Site 2 is the
    /// caller's: an elastic region by default, or an owned edge site for
    /// the Eq. 4 capacity tests.
    fn three_site_model_with_externals() -> QualityModel {
        use atlas_sim::SiteSpec;
        three_site_model_with_site2(SiteSpec::elastic(
            "west",
            PricingModel::preset(atlas_cloud::Provider::GcpLike),
        ))
    }

    fn three_site_model_with_site2(site2: atlas_sim::SiteSpec) -> QualityModel {
        use atlas_sim::{ClusterSpec, LinkSpec, SiteCatalog, SiteId, SiteNetwork, SiteSpec};

        let component_index = vec!["Frontend".to_string(), "Store".to_string()];
        let trace = trace_with_externals();
        let mut footprint = NetworkFootprint::new();
        footprint.insert("/api", "Frontend", "ThirdPartyCDN", 2_000.0, 50_000.0);
        footprint.insert("/api", "Frontend", "Store", 9_000.0, 200.0);
        footprint.insert("/api", "Store", "ExternalClient", 100.0, 100.0);
        footprint.insert("/api", "Frontend", "Notifier", 700.0, 0.0);

        let mut apis = Map::new();
        apis.insert(
            "/api".to_string(),
            ApiProfile {
                endpoint: "/api".to_string(),
                traces: vec![trace.clone(), trace],
                trace_weights: vec![],
                components: ["Frontend", "Store", "ThirdPartyCDN"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<HashSet<_>>(),
                stateful_components: ["Store", "GhostStore"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<HashSet<_>>(),
                mean_latency_ms: 10.0,
                request_count: 2,
            },
        );
        let profile = ApplicationProfile {
            apis,
            components: Map::new(),
        };
        let cluster = ClusterSpec::default();
        let mut links = Vec::new();
        for a in 0..3 {
            for b in 0..3 {
                links.push(if a == b {
                    cluster.network.intra
                } else {
                    LinkSpec {
                        // Asymmetric: each direction pays its own latency.
                        latency_ms: 5.0 + 7.0 * a as f64 + 11.0 * b as f64,
                        bandwidth_mbps: 600.0 + 40.0 * (a + 2 * b) as f64,
                    }
                });
            }
        }
        let catalog = SiteCatalog::new(
            vec![
                SiteSpec::owned(
                    "on-prem",
                    cluster.onprem_cpu_cores,
                    cluster.onprem_memory_gb,
                    cluster.onprem_storage_gb,
                ),
                SiteSpec::elastic("east", PricingModel::default()),
                site2,
            ],
            SiteNetwork::from_links(3, links),
        );
        let current = Placement::from_sites(vec![SiteId(0), SiteId(2)]); // Store starts at region 2
        let mut demand = ResourceDemand::zeros(component_index.clone(), 4, 600);
        demand.fill_cpu(0, 2.0);
        demand.fill_cpu(1, 3.0);
        demand.fill_storage(1, 10.0);
        QualityModel::for_catalog(
            profile,
            footprint,
            &catalog,
            demand,
            MigrationPreferences::with_cpu_limit(4.0).with_budget(1.0e9),
            current,
            component_index,
        )
    }

    #[test]
    fn three_site_kernel_matches_the_oracle_with_unknown_components() {
        use atlas_sim::SiteId;
        let model = three_site_model_with_externals();
        assert_eq!(model.site_count(), 3);
        for a in 0..3u16 {
            for b in 0..3u16 {
                let plan = MigrationPlan::from_sites(vec![SiteId(a), SiteId(b)]);
                let kernel = model.evaluate(&plan);
                let oracle = model.evaluate_interpretive(&plan);
                assert_eq!(
                    kernel.performance.to_bits(),
                    oracle.performance.to_bits(),
                    "sites ({a}, {b})"
                );
                assert_eq!(
                    kernel.availability.to_bits(),
                    oracle.availability.to_bits(),
                    "sites ({a}, {b})"
                );
                assert_eq!(
                    kernel.cost.to_bits(),
                    oracle.cost.to_bits(),
                    "sites ({a}, {b})"
                );
                assert_eq!(kernel.feasible, oracle.feasible, "sites ({a}, {b})");
            }
        }
        // Moving the Store between the two regions pays the asymmetric
        // links and disrupts availability relative to current site 2.
        let moved = MigrationPlan::from_sites(vec![SiteId(0), SiteId(1)]);
        assert!(model.availability(&moved) > 0.0);
        let stayed = MigrationPlan::from_sites(vec![SiteId(0), SiteId(2)]);
        assert_eq!(model.availability(&stayed), 0.0);
    }

    /// Eq. 4 owned-site capacity at sites beyond index 0: an owned edge
    /// site's finite pools gate feasibility exactly like the on-prem
    /// cluster's, in both the compiled kernel and the interpretive oracle.
    #[test]
    fn owned_edge_site_capacity_gates_feasibility() {
        use atlas_sim::{SiteId, SiteSpec};
        // Site 2 is owned hardware: 2.5 cores, plenty of memory, 5 GB of
        // storage. Frontend (2.0 cores, no storage) fits; Store (3.0
        // cores, 10 GB) does not.
        let model = three_site_model_with_site2(SiteSpec::owned("edge", 2.5, 64.0, 5.0));
        assert_eq!(model.kernel().constraints().owned_site_limits().len(), 1);

        let frontend_on_edge = MigrationPlan::from_sites(vec![SiteId(2), SiteId(0)]);
        assert!(model.is_feasible(&frontend_on_edge));
        assert_eq!(model.feasibility(&frontend_on_edge), None);

        let store_on_edge = MigrationPlan::from_sites(vec![SiteId(0), SiteId(2)]);
        assert!(!model.is_feasible(&store_on_edge));
        assert!(!model.evaluate(&store_on_edge).feasible);
        let why = model.feasibility(&store_on_edge).expect("a diagnostic");
        assert!(
            why.contains("exceeds capacity"),
            "the diagnostic names the violated pool: {why}"
        );

        // The same placement is fine when site 2 is elastic instead.
        let elastic = three_site_model_with_externals();
        assert!(elastic.is_feasible(&store_on_edge));

        // Kernel and oracle agree on feasibility for every assignment.
        for a in 0..3u16 {
            for b in 0..3u16 {
                let plan = MigrationPlan::from_sites(vec![SiteId(a), SiteId(b)]);
                assert_eq!(
                    model.evaluate(&plan).feasible,
                    model.evaluate_interpretive(&plan).feasible,
                    "sites ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn unknown_components_default_to_onprem_bitwise() {
        let model = model_with_externals();
        for bits in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            let plan = MigrationPlan::from_bits(&bits);
            let kernel = model.evaluate(&plan);
            let oracle = model.evaluate_interpretive(&plan);
            assert_eq!(
                kernel.performance.to_bits(),
                oracle.performance.to_bits(),
                "bits {bits:?}"
            );
            assert_eq!(
                kernel.availability.to_bits(),
                oracle.availability.to_bits(),
                "bits {bits:?}"
            );
            assert_eq!(
                kernel.cost.to_bits(),
                oracle.cost.to_bits(),
                "bits {bits:?}"
            );
            assert_eq!(kernel.feasible, oracle.feasible, "bits {bits:?}");
            assert_eq!(
                model.is_feasible(&plan),
                model.feasibility(&plan).is_none(),
                "bits {bits:?}"
            );
        }
    }

    #[test]
    fn kernel_latency_matches_the_interpretive_injector() {
        let model = model_with_externals();
        let injector = DelayInjector::new(
            NetworkModel::default(),
            vec!["Frontend".to_string(), "Store".to_string()],
        );
        let current = Placement::all_onprem(2);
        for bits in [[0u8, 0], [0, 1], [1, 0], [1, 1]] {
            let plan = MigrationPlan::from_bits(&bits);
            let direct = injector.estimate_api_latency_ms(
                &model.profile().apis["/api"].traces,
                model.footprint(),
                &current,
                plan.placement(),
            );
            let compiled = model.estimate_api_latency_ms("/api", &plan);
            assert_eq!(compiled.to_bits(), direct.to_bits(), "bits {bits:?}");
        }
        // Unknown APIs estimate to zero, like the interpretive path.
        assert_eq!(
            model.estimate_api_latency_ms("/missing", &MigrationPlan::all_onprem(2)),
            0.0
        );
    }

    #[test]
    fn constraint_kernel_matches_preference_semantics() {
        let prefs = MigrationPreferences::with_cpu_limit(4.0)
            .pin(ComponentId(0), atlas_sim::Location::OnPrem)
            .with_budget(100.0);
        let kernel = ConstraintKernel::new(&prefs);
        assert!(kernel.violates_pins(&[SiteId(1), SiteId(0)]));
        assert!(!kernel.violates_pins(&[SiteId(0), SiteId(1)]));

        let mut demand = ResourceDemand::zeros(vec!["A".into(), "B".into()], 2, 600);
        demand.fill_cpu(0, 3.0);
        demand.fill_cpu(1, 3.0);
        let mut subset = Vec::new();
        let both_onprem = [SiteId(0), SiteId(0)];
        let b_offloaded = [SiteId(0), SiteId(1)];
        // 6 cores on-prem > 4 → infeasible without calling the cost closure.
        assert!(!kernel.feasible(&demand, &both_onprem, &mut subset, || panic!("no cost")));
        // Offloading B leaves 3 cores; cheap → feasible.
        assert!(kernel.feasible(&demand, &b_offloaded, &mut subset, || 1.0));
        // Budget violation.
        assert!(!kernel.feasible(&demand, &b_offloaded, &mut subset, || 1_000.0));
    }

    #[test]
    fn constraint_kernel_enforces_site_set_pins() {
        let prefs = MigrationPreferences::default()
            .pin_to_sites(ComponentId(1), vec![SiteId(0), SiteId(2)]);
        let kernel = ConstraintKernel::new(&prefs);
        assert!(!kernel.violates_pins(&[SiteId(3), SiteId(0)]));
        assert!(!kernel.violates_pins(&[SiteId(3), SiteId(2)]));
        assert!(kernel.violates_pins(&[SiteId(0), SiteId(1)]));
    }
}
