//! Offline stand-in for the `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! matching no-op derive macros so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without network access. The
//! traits carry no methods; swap the workspace path dependency for crates.io
//! `serde = { version = "1", features = ["derive"] }` to restore real
//! serialization.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; satisfied by the
/// no-op derive, which emits no impl at all).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; satisfied by the
/// no-op derive, which emits no impl at all).
pub trait Deserialize<'de> {}
