//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-looking annotation — nothing serializes at runtime yet — so these
//! derives accept the same input (including `#[serde(...)]` helper
//! attributes) and expand to nothing. Swapping the workspace `serde` path
//! dependency for the real crates.io `serde` with the `derive` feature makes
//! the annotations functional without touching any annotated type.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
