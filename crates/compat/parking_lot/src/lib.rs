//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Mirrors the poison-free API (`read()`/`write()`/`lock()` return guards
//! directly) on top of the standard-library primitives. Poisoned locks are
//! recovered transparently, matching `parking_lot`'s behaviour of never
//! poisoning.

#![deny(missing_docs)]

use std::sync;

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s poison-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock` holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s poison-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex` holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
