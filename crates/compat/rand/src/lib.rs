//! Offline stand-in for the `rand` crate, mirroring the `rand 0.8` API
//! surface the workspace uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].
//!
//! The generator is a 64-bit SplitMix64 stream — statistically solid for
//! simulation and genetic-search workloads, deterministic per seed, and
//! dependency-free. Swap the workspace path dependency for crates.io
//! `rand = "0.8"` when network access is available; every call site
//! compiles unchanged.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce from raw bits.
pub trait StandardSample: Sized {
    /// Draws one value from the "standard" distribution of the type
    /// (uniform `[0, 1)` for floats, uniform over all values otherwise).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (e.g. `rng.gen::<f64>()` is uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a SplitMix64 stream.
    ///
    /// Deterministic per seed; not cryptographically secure (neither is the
    /// real `StdRng` guaranteed to keep its stream across versions, so all
    /// workspace code treats seeds as reproducibility handles only).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so that small consecutive seeds yield unrelated streams.
            let mut rng = StdRng {
                state: state ^ 0x5151_7A1A_5CAF_F00D,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&y));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
