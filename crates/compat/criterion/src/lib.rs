//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — with a small fixed sampling plan: each benchmark is
//! warmed up once, timed over `sample_size` batches, and the mean/min are
//! printed. When cargo invokes a bench target in test mode (`--test`), each
//! benchmark runs exactly once so `cargo test` stays fast.
//!
//! Swap the workspace path dependency for crates.io `criterion = "0.5"` to
//! get the full statistical harness; the bench sources compile unchanged.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the workspace benches already use).
pub use std::hint::black_box;

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs bench targets with `--test` under `cargo test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: 30,
        }
    }

    /// Registers a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = 30;
        run_benchmark(id, self.test_mode, sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.criterion.test_mode, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, sample_size: usize, mut f: F) {
    let (samples, iters_per_sample) = if test_mode { (1, 1) } else { (sample_size, 3) };
    if !test_mode {
        // One discarded warmup sample so the timed ones don't run cold.
        let mut warmup = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
    }
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed / iters_per_sample as u32;
        best = best.min(per_iter);
        total += bencher.elapsed;
        total_iters += iters_per_sample;
    }
    let mean = total / total_iters.max(1) as u32;
    if test_mode {
        println!("  {id}: ok ({mean:?})");
    } else {
        println!("  {id}: mean {mean:?}, best {best:?} ({samples} samples)");
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
