//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the DSL the workspace's property tests use:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! * range strategies (`0u8..=1`, `0.0f64..100.0`, `1usize..20`, ...)
//! * tuples of strategies (`(0u8..3, any::<u64>())`), up to arity 4
//! * `prop::collection::vec(strategy, len)` with a fixed or ranged length
//! * `prop::array::uniform3(strategy)` fixed-size array strategies
//! * `any::<bool>()` / `any::<u64>()` (and the other unsigned widths) and
//!   `prop::bool::ANY`
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Each generated test runs its body over [`CASES`] deterministically seeded
//! random inputs (seeded from the test name), so failures reproduce across
//! runs. There is no shrinking — a failing case panics with the ordinary
//! assertion message. Swap the workspace path dependency for crates.io
//! `proptest = "1"` to restore shrinking and persistence; the test sources
//! compile unchanged.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each `proptest!`-generated test executes.
pub const CASES: usize = 64;

/// The deterministic generator threaded through strategies.
pub type TestRng = StdRng;

/// Builds the per-test generator. Used by the [`proptest!`] expansion; not
/// part of the public API surface mirrored from the real crate.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name keeps distinct tests on distinct streams.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// A generator of random values for one test parameter.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;
    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Tuples of strategies draw each element in order, mirroring the real
// crate's tuple `Strategy` impls (used as `prop::collection::vec` elements).
macro_rules! tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Mirror of `proptest::prelude::any`: the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length specification accepted by [`collection::vec`]: either an exact
/// `usize` or a half-open `Range<usize>`.
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`prop::array::uniform3`).

    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; 3]` arrays whose elements are drawn
    /// in order from one element strategy.
    pub struct UniformArray3<S>(S);

    /// Mirror of `proptest::array::uniform3`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray3<S> {
        UniformArray3(element)
    }

    impl<S: Strategy> Strategy for UniformArray3<S> {
        type Value = [S::Value; 3];
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
            ]
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy drawing `true`/`false` uniformly, mirroring
    /// `proptest::bool::Any`.
    pub struct Any;

    /// Mirror of `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    };

    /// Mirror of the `prop` module alias exposed by the real prelude
    /// (`prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Assertion that fails the current case, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Generates `#[test]` functions that run their body over many random
/// inputs, mirroring `proptest::proptest!`.
///
/// The incoming `#[test]` attribute (and any doc comments) are re-emitted on
/// the generated zero-argument test function.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::new_value(&$strategy, &mut rng);)+
                    $body
                }
            }
        )+
    };
}
