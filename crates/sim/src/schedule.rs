//! Request schedules: the open-loop arrival process fed to the simulator.
//!
//! The workload generator (in `atlas-apps`) produces a [`RequestSchedule`];
//! the [`crate::Simulator`] replays it. Separating "when do requests arrive"
//! from "how are they executed" keeps experiments such as the 5× burst or
//! the behaviour-change drift (paper §5.4) easy to express.

use serde::{Deserialize, Serialize};

use atlas_telemetry::Micros;

/// A single API request arrival.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledRequest {
    /// Arrival time in microseconds since the start of the run.
    pub at_us: Micros,
    /// Target user-facing API endpoint.
    pub api: String,
}

/// A time-ordered list of request arrivals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSchedule {
    requests: Vec<ScheduledRequest>,
}

impl RequestSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an unordered list of arrivals (sorted internally).
    pub fn from_requests(mut requests: Vec<ScheduledRequest>) -> Self {
        requests.sort_by(|a, b| a.at_us.cmp(&b.at_us).then(a.api.cmp(&b.api)));
        Self { requests }
    }

    /// Append an arrival (must be non-decreasing in time).
    pub fn push(&mut self, at_us: Micros, api: impl Into<String>) {
        let api = api.into();
        if let Some(last) = self.requests.last() {
            assert!(
                at_us >= last.at_us,
                "requests must be appended in arrival order"
            );
        }
        self.requests.push(ScheduledRequest { at_us, api });
    }

    /// All arrivals, in time order.
    pub fn requests(&self) -> &[ScheduledRequest] {
        &self.requests
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Duration covered by the schedule in seconds (end of last arrival).
    pub fn duration_s(&self) -> u64 {
        self.requests.last().map_or(0, |r| r.at_us / 1_000_000 + 1)
    }

    /// Number of arrivals per API.
    pub fn counts_per_api(&self) -> std::collections::HashMap<String, usize> {
        let mut out = std::collections::HashMap::new();
        for r in &self.requests {
            *out.entry(r.api.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Restrict to arrivals in `[start_us, end_us)`.
    pub fn slice(&self, start_us: Micros, end_us: Micros) -> RequestSchedule {
        RequestSchedule {
            requests: self
                .requests
                .iter()
                .filter(|r| r.at_us >= start_us && r.at_us < end_us)
                .cloned()
                .collect(),
        }
    }

    /// Merge two schedules, keeping time order.
    pub fn merged(&self, other: &RequestSchedule) -> RequestSchedule {
        let mut all = self.requests.clone();
        all.extend(other.requests.iter().cloned());
        RequestSchedule::from_requests(all)
    }

    /// Requests per second averaged over the whole schedule.
    pub fn mean_rps(&self) -> f64 {
        let d = self.duration_s();
        if d == 0 {
            0.0
        } else {
            self.len() as f64 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = RequestSchedule::new();
        s.push(0, "/a");
        s.push(500_000, "/b");
        s.push(1_500_000, "/a");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.duration_s(), 2);
        assert_eq!(s.counts_per_api()["/a"], 2);
        assert!(s.mean_rps() > 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn out_of_order_push_panics() {
        let mut s = RequestSchedule::new();
        s.push(10, "/a");
        s.push(5, "/a");
    }

    #[test]
    fn from_requests_sorts() {
        let s = RequestSchedule::from_requests(vec![
            ScheduledRequest {
                at_us: 10,
                api: "/b".into(),
            },
            ScheduledRequest {
                at_us: 5,
                api: "/a".into(),
            },
        ]);
        assert_eq!(s.requests()[0].at_us, 5);
        assert_eq!(s.requests()[1].at_us, 10);
    }

    #[test]
    fn slice_is_half_open() {
        let mut s = RequestSchedule::new();
        for i in 0..10u64 {
            s.push(i * 1_000_000, "/a");
        }
        let sliced = s.slice(2_000_000, 5_000_000);
        assert_eq!(sliced.len(), 3);
        assert_eq!(sliced.requests()[0].at_us, 2_000_000);
    }

    #[test]
    fn merged_interleaves_in_time_order() {
        let mut a = RequestSchedule::new();
        a.push(0, "/a");
        a.push(2_000_000, "/a");
        let mut b = RequestSchedule::new();
        b.push(1_000_000, "/b");
        let m = a.merged(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.requests()[1].api, "/b");
    }

    #[test]
    fn empty_schedule_statistics() {
        let s = RequestSchedule::new();
        assert_eq!(s.duration_s(), 0);
        assert_eq!(s.mean_rps(), 0.0);
        assert!(s.counts_per_api().is_empty());
    }
}
