//! Application topologies: components plus per-API call trees.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::calltree::CallNode;
use crate::component::{ComponentId, ComponentSpec};

/// A user-facing API endpoint of the application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiSpec {
    /// Endpoint name, e.g. `/composeAPI`.
    pub endpoint: String,
    /// The call tree executed for one request of this API. Its root runs on
    /// the entry component (e.g. `FrontendNGINX`).
    pub root: CallNode,
}

impl ApiSpec {
    /// Create an API spec.
    pub fn new(endpoint: impl Into<String>, root: CallNode) -> Self {
        Self {
            endpoint: endpoint.into(),
            root,
        }
    }
}

/// Error raised when assembling or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two components share a name.
    DuplicateComponent(String),
    /// An API call tree references a component index that does not exist.
    UnknownComponent(ComponentId),
    /// Two APIs share an endpoint name.
    DuplicateApi(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateComponent(n) => write!(f, "duplicate component name {n}"),
            TopologyError::UnknownComponent(c) => write!(f, "call tree references unknown {c}"),
            TopologyError::DuplicateApi(e) => write!(f, "duplicate API endpoint {e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An application: its components and its user-facing APIs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppTopology {
    /// Human-readable application name.
    pub name: String,
    components: Vec<ComponentSpec>,
    apis: Vec<ApiSpec>,
    #[serde(skip)]
    name_index: HashMap<String, ComponentId>,
}

impl AppTopology {
    /// Build a topology, validating component references.
    pub fn new(
        name: impl Into<String>,
        components: Vec<ComponentSpec>,
        apis: Vec<ApiSpec>,
    ) -> Result<Self, TopologyError> {
        let mut name_index = HashMap::with_capacity(components.len());
        for (i, c) in components.iter().enumerate() {
            if name_index.insert(c.name.clone(), ComponentId(i)).is_some() {
                return Err(TopologyError::DuplicateComponent(c.name.clone()));
            }
        }
        let mut seen_api = std::collections::HashSet::new();
        for api in &apis {
            if !seen_api.insert(api.endpoint.clone()) {
                return Err(TopologyError::DuplicateApi(api.endpoint.clone()));
            }
            for c in api.root.reachable_components() {
                if c.0 >= components.len() {
                    return Err(TopologyError::UnknownComponent(c));
                }
            }
        }
        Ok(Self {
            name: name.into(),
            components,
            apis,
            name_index,
        })
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// All components, indexed by [`ComponentId`].
    pub fn components(&self) -> &[ComponentSpec] {
        &self.components
    }

    /// Component spec by id.
    pub fn component(&self, id: ComponentId) -> &ComponentSpec {
        &self.components[id.0]
    }

    /// Component name by id.
    pub fn component_name(&self, id: ComponentId) -> &str {
        &self.components[id.0].name
    }

    /// Look a component up by name.
    pub fn component_id(&self, name: &str) -> Option<ComponentId> {
        if self.name_index.is_empty() && !self.components.is_empty() {
            // Deserialized topologies skip the index; fall back to a scan.
            return self
                .components
                .iter()
                .position(|c| c.name == name)
                .map(ComponentId);
        }
        self.name_index.get(name).copied()
    }

    /// All user-facing APIs.
    pub fn apis(&self) -> &[ApiSpec] {
        &self.apis
    }

    /// Number of user-facing APIs.
    pub fn api_count(&self) -> usize {
        self.apis.len()
    }

    /// Look an API up by endpoint name.
    pub fn api(&self, endpoint: &str) -> Option<&ApiSpec> {
        self.apis.iter().find(|a| a.endpoint == endpoint)
    }

    /// Ids of all stateful components.
    pub fn stateful_components(&self) -> Vec<ComponentId> {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.stateful)
            .map(|(i, _)| ComponentId(i))
            .collect()
    }

    /// Ids of the stateful components used (reachable) by a given API.
    pub fn stateful_components_of_api(&self, endpoint: &str) -> Vec<ComponentId> {
        let Some(api) = self.api(endpoint) else {
            return Vec::new();
        };
        api.root
            .reachable_components()
            .into_iter()
            .filter(|c| self.components[c.0].stateful)
            .collect()
    }

    /// Expected mean bytes exchanged per request of each API on each directed
    /// component edge: `(api, from, to, request_bytes, response_bytes)`.
    ///
    /// This is the ground truth that footprint learning (Eq. 1) tries to
    /// recover from aggregate telemetry; the accuracy evaluation of Figure 19
    /// and Figure 20 compares against it.
    pub fn ground_truth_footprints(&self) -> Vec<(String, ComponentId, ComponentId, f64, f64)> {
        let mut out = Vec::new();
        for api in &self.apis {
            let mut per_edge: HashMap<(ComponentId, ComponentId), (f64, f64, f64)> = HashMap::new();
            api.root.visit_edges(&mut |parent, edge| {
                let entry = per_edge
                    .entry((parent, edge.child.component))
                    .or_insert((0.0, 0.0, 0.0));
                entry.0 += edge.request.mean_bytes;
                entry.1 += edge.response.mean_bytes;
                entry.2 += 1.0;
            });
            let mut edges: Vec<_> = per_edge.into_iter().collect();
            edges.sort_by_key(|((a, b), _)| (a.0, b.0));
            for ((from, to), (req, resp, n)) in edges {
                // Average per invocation on that edge.
                out.push((api.endpoint.clone(), from, to, req / n, resp / n));
            }
        }
        out
    }

    /// Total baseline CPU demand (cores) of all components.
    pub fn total_base_cpu(&self) -> f64 {
        self.components.iter().map(|c| c.base_cpu_cores).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calltree::{CallEdge, SizeDist, TimeDist};

    fn tiny_app() -> AppTopology {
        let components = vec![
            ComponentSpec::stateless("Frontend", 0.2, 0.5),
            ComponentSpec::stateless("UserService", 0.1, 0.5),
            ComponentSpec::stateful("UserMongoDB", 0.1, 1.0, 8.0),
        ];
        let db = CallNode::leaf(ComponentId(2), "find", TimeDist::constant(200.0));
        let svc =
            CallNode::leaf(ComponentId(1), "login", TimeDist::constant(300.0)).with_stage(vec![
                CallEdge::sync(db, SizeDist::constant(500.0), SizeDist::constant(120.0)),
            ]);
        let root = CallNode::leaf(ComponentId(0), "/loginAPI", TimeDist::constant(100.0))
            .with_stage(vec![CallEdge::sync(
                svc,
                SizeDist::constant(230.0),
                SizeDist::constant(60.0),
            )]);
        AppTopology::new("tiny", components, vec![ApiSpec::new("/loginAPI", root)]).unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let app = tiny_app();
        assert_eq!(app.component_count(), 3);
        assert_eq!(app.api_count(), 1);
        assert_eq!(app.component_id("UserMongoDB"), Some(ComponentId(2)));
        assert_eq!(app.component_id("Nope"), None);
        assert_eq!(app.component_name(ComponentId(0)), "Frontend");
        assert!(app.api("/loginAPI").is_some());
        assert!(app.api("/missing").is_none());
    }

    #[test]
    fn stateful_queries() {
        let app = tiny_app();
        assert_eq!(app.stateful_components(), vec![ComponentId(2)]);
        assert_eq!(
            app.stateful_components_of_api("/loginAPI"),
            vec![ComponentId(2)]
        );
        assert!(app.stateful_components_of_api("/other").is_empty());
    }

    #[test]
    fn ground_truth_footprints_cover_every_edge() {
        let app = tiny_app();
        let fp = app.ground_truth_footprints();
        assert_eq!(fp.len(), 2);
        let (api, from, to, req, resp) = &fp[0];
        assert_eq!(api, "/loginAPI");
        assert_eq!(*from, ComponentId(0));
        assert_eq!(*to, ComponentId(1));
        assert_eq!(*req, 230.0);
        assert_eq!(*resp, 60.0);
    }

    #[test]
    fn rejects_duplicate_components_and_apis() {
        let dup = vec![
            ComponentSpec::stateless("A", 0.1, 0.1),
            ComponentSpec::stateless("A", 0.1, 0.1),
        ];
        let err = AppTopology::new("x", dup, vec![]).unwrap_err();
        assert_eq!(err, TopologyError::DuplicateComponent("A".into()));

        let comps = vec![ComponentSpec::stateless("A", 0.1, 0.1)];
        let node = CallNode::leaf(ComponentId(0), "/x", TimeDist::constant(1.0));
        let apis = vec![
            ApiSpec::new("/x", node.clone()),
            ApiSpec::new("/x", node.clone()),
        ];
        let err = AppTopology::new("x", comps, apis).unwrap_err();
        assert_eq!(err, TopologyError::DuplicateApi("/x".into()));
    }

    #[test]
    fn rejects_dangling_component_reference() {
        let comps = vec![ComponentSpec::stateless("A", 0.1, 0.1)];
        let node = CallNode::leaf(ComponentId(5), "/x", TimeDist::constant(1.0));
        let err = AppTopology::new("x", comps, vec![ApiSpec::new("/x", node)]).unwrap_err();
        assert_eq!(err, TopologyError::UnknownComponent(ComponentId(5)));
    }

    #[test]
    fn total_base_cpu_sums_components() {
        let app = tiny_app();
        assert!((app.total_base_cpu() - 0.4).abs() < 1e-12);
    }
}
