//! Hybrid cluster, site catalog and network model.
//!
//! The paper's testbed spans a ten-node on-prem cluster (Wisconsin) and a
//! public-cloud datacenter (Massachusetts). The only properties Atlas's
//! models consume are (i) the capacity of each site, (ii) the node
//! granularity and pricing of its elastic pools, and (iii) the latency and
//! bandwidth on every ordered site pair. The two-site world of the paper is
//! captured by [`ClusterSpec`]/[`NetworkModel`] with the measured values as
//! defaults; the N-site generalisation is a [`SiteCatalog`] (per-site
//! capacity + pricing) over a [`SiteNetwork`] (per-ordered-pair
//! [`LinkSpec`]s), with `OnPrem` as site 0 and a 2-entry catalog whose
//! defaults reproduce the two-site numbers exactly.

use serde::{Deserialize, Serialize};

pub use atlas_cloud::SiteId;
use atlas_cloud::{PricingModel, SiteCostModel};

/// Where a component is placed in the paper's two-site model. This is the
/// binary view of a [`SiteId`]: `OnPrem` is site 0, `Cloud` stands for any
/// other (elastic) site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Location {
    /// The on-premises cluster (`p_c = 0` in the paper).
    OnPrem,
    /// The public cloud (`p_c = 1`).
    Cloud,
}

impl Location {
    /// Encode as the paper's binary plan variable.
    pub fn as_bit(self) -> u8 {
        match self {
            Location::OnPrem => 0,
            Location::Cloud => 1,
        }
    }

    /// Decode from a binary plan variable (anything non-zero is cloud).
    pub fn from_bit(bit: u8) -> Self {
        if bit == 0 {
            Location::OnPrem
        } else {
            Location::Cloud
        }
    }

    /// The site this location denotes in a catalog: site 0 for on-prem, the
    /// first elastic site for the cloud.
    pub fn site(self) -> SiteId {
        match self {
            Location::OnPrem => SiteId::ON_PREM,
            Location::Cloud => SiteId::CLOUD,
        }
    }

    /// The binary view of a site: site 0 is on-prem, everything else is an
    /// elastic ("cloud") site.
    pub fn of_site(site: SiteId) -> Self {
        if site.is_on_prem() {
            Location::OnPrem
        } else {
            Location::Cloud
        }
    }
}

impl From<Location> for SiteId {
    fn from(location: Location) -> Self {
        location.site()
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::OnPrem => f.write_str("on-prem"),
            Location::Cloud => f.write_str("cloud"),
        }
    }
}

/// Latency/bandwidth description of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way network latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
}

impl LinkSpec {
    /// Time in microseconds to move `bytes` across this link, including the
    /// propagation latency. This is the `γ + ν·d` term of paper Eq. (2) for
    /// one direction.
    pub fn transfer_us(&self, bytes: f64) -> f64 {
        let propagation_us = self.latency_ms * 1_000.0;
        let bytes_per_us = self.bandwidth_mbps * 1.0e6 / 8.0 / 1.0e6; // bytes per microsecond
        let serialization_us = if bytes_per_us > 0.0 {
            bytes / bytes_per_us
        } else {
            0.0
        };
        propagation_us + serialization_us
    }
}

/// Network characteristics of the hybrid deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link between two components in the same datacenter.
    pub intra: LinkSpec,
    /// Link between a component on-prem and one in the cloud.
    pub inter: LinkSpec,
}

impl Default for NetworkModel {
    /// The paper's measured values (§5.1): 0.168 ms / 941 Mbps collocated,
    /// 23.015 ms / 921 Mbps across datacenters.
    fn default() -> Self {
        Self {
            intra: LinkSpec {
                latency_ms: 0.168,
                bandwidth_mbps: 941.0,
            },
            inter: LinkSpec {
                latency_ms: 23.015,
                bandwidth_mbps: 921.0,
            },
        }
    }
}

impl NetworkModel {
    /// Link spec for a communication between the two given locations.
    pub fn link(&self, a: Location, b: Location) -> LinkSpec {
        if a == b {
            self.intra
        } else {
            self.inter
        }
    }

    /// One-way transfer time (µs) for `bytes` between the two locations.
    pub fn transfer_us(&self, from: Location, to: Location, bytes: f64) -> f64 {
        self.link(from, to).transfer_us(bytes)
    }

    /// The paper's Δ (Eq. 2): the *additional* delay incurred by one
    /// request/response exchange when the callee moves from `before` to
    /// `after` relative to its caller.
    pub fn delay_delta_us(
        &self,
        caller: Location,
        callee_before: Location,
        callee_after: Location,
        request_bytes: f64,
        response_bytes: f64,
    ) -> f64 {
        let before = self.link(caller, callee_before);
        let after = self.link(caller, callee_after);
        // One exchange pays two propagation legs (request + response) plus the
        // serialization of both payloads: `2γ + (d_req + d_resp)/ν`.
        let exchange_us =
            |link: LinkSpec| link.transfer_us(request_bytes) + link.transfer_us(response_bytes);
        exchange_us(after) - exchange_us(before)
    }
}

/// Per-ordered-pair network model over N sites: one [`LinkSpec`] for every
/// `(from, to)` site pair, stored row-major (`links[from * n + to]`).
///
/// The two-site [`NetworkModel`] converts into a symmetric 2×2 instance
/// (`[intra, inter; inter, intra]`), and every lookup then returns exactly
/// the link the binary model would have chosen — the compiled evaluation
/// kernel and the delay injector are bit-identical through the conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteNetwork {
    site_count: usize,
    links: Vec<LinkSpec>,
}

impl SiteNetwork {
    /// Build from an explicit row-major link matrix.
    ///
    /// # Panics
    ///
    /// Panics if `links.len() != site_count²` or `site_count < 2`.
    pub fn from_links(site_count: usize, links: Vec<LinkSpec>) -> Self {
        assert!(site_count >= 2, "a site network needs at least 2 sites");
        assert_eq!(
            links.len(),
            site_count * site_count,
            "link matrix must cover every ordered site pair"
        );
        Self { site_count, links }
    }

    /// The 2-site matrix of a binary [`NetworkModel`]:
    /// `[intra, inter; inter, intra]`.
    pub fn two_site(model: NetworkModel) -> Self {
        Self {
            site_count: 2,
            links: vec![model.intra, model.inter, model.inter, model.intra],
        }
    }

    /// Number of sites covered.
    pub fn site_count(&self) -> usize {
        self.site_count
    }

    /// The link used when `from` sends to `to` (same-site pairs return the
    /// site's intra link).
    pub fn link(&self, from: SiteId, to: SiteId) -> LinkSpec {
        self.links[from.index() * self.site_count + to.index()]
    }

    /// One-way transfer time (µs) for `bytes` from one site to another.
    pub fn transfer_us(&self, from: SiteId, to: SiteId, bytes: f64) -> f64 {
        self.link(from, to).transfer_us(bytes)
    }

    /// Cost (µs) of one request/response exchange between a caller at `a`
    /// and a callee at `b`: the request leg crosses `a → b`, the response
    /// leg `b → a`. For a symmetric matrix (every 2-site conversion) this
    /// equals the binary model's `2γ + (d_req + d_resp)/ν` bit for bit.
    pub fn exchange_us(
        &self,
        a: SiteId,
        b: SiteId,
        request_bytes: f64,
        response_bytes: f64,
    ) -> f64 {
        self.link(a, b).transfer_us(request_bytes) + self.link(b, a).transfer_us(response_bytes)
    }

    /// The paper's Δ (Eq. 2) generalised to sites: the additional delay of
    /// one exchange when the endpoints move from `(caller_before,
    /// callee_before)` to `(caller_after, callee_after)`.
    #[allow(clippy::too_many_arguments)]
    pub fn delay_delta_us(
        &self,
        caller_before: SiteId,
        callee_before: SiteId,
        caller_after: SiteId,
        callee_after: SiteId,
        request_bytes: f64,
        response_bytes: f64,
    ) -> f64 {
        self.exchange_us(caller_after, callee_after, request_bytes, response_bytes)
            - self.exchange_us(caller_before, callee_before, request_bytes, response_bytes)
    }
}

impl From<NetworkModel> for SiteNetwork {
    fn from(model: NetworkModel) -> Self {
        Self::two_site(model)
    }
}

impl Default for SiteNetwork {
    /// The paper's two-site network.
    fn default() -> Self {
        Self::two_site(NetworkModel::default())
    }
}

/// One site of a [`SiteCatalog`]: a capacity pool plus, for elastic sites,
/// the pricing the autoscaler bills it under.
///
/// **Constraint semantics** (paper Eq. 4): resource-limit feasibility of
/// the *on-prem* site (site 0) is governed by
/// `MigrationPreferences::onprem_*_limit` — the paper's operator knobs —
/// while owned sites at index > 0 are capacity-constrained by their own
/// finite `cpu_cores` / `memory_gb` / `storage_gb` fields, surfaced to the
/// constraint kernel through [`SiteCatalog::owned_site_limits`]. Elastic
/// sites are capacity-unbounded by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Human-readable site name (e.g. `on-prem`, `aws-us-east`).
    pub name: String,
    /// CPU cores of the site's inelastic pool (`f64::INFINITY` for elastic
    /// sites, whose autoscaler provisions nodes on demand).
    pub cpu_cores: f64,
    /// Memory (GB) of the inelastic pool (`f64::INFINITY` when elastic).
    pub memory_gb: f64,
    /// Storage (GB) of the inelastic pool (`f64::INFINITY` when elastic).
    pub storage_gb: f64,
    /// Pricing of the site's elastic pool; `None` marks owned hardware with
    /// no marginal hosting cost (the on-prem site).
    pub pricing: Option<PricingModel>,
}

impl SiteSpec {
    /// An owned, fixed-capacity site (no marginal cost).
    pub fn owned(name: impl Into<String>, cpu_cores: f64, memory_gb: f64, storage_gb: f64) -> Self {
        Self {
            name: name.into(),
            cpu_cores,
            memory_gb,
            storage_gb,
            pricing: None,
        }
    }

    /// An elastic site: capacity is provisioned on demand and billed under
    /// `pricing`.
    pub fn elastic(name: impl Into<String>, pricing: PricingModel) -> Self {
        Self {
            name: name.into(),
            cpu_cores: f64::INFINITY,
            memory_gb: f64::INFINITY,
            storage_gb: f64::INFINITY,
            pricing: Some(pricing),
        }
    }

    /// Whether the site autoscales (and is billed) rather than being owned.
    pub fn is_elastic(&self) -> bool {
        self.pricing.is_some()
    }
}

/// The N-site generalisation of the hybrid cluster: per-site capacity and
/// pricing ([`SiteSpec`]) over a per-ordered-pair [`SiteNetwork`]. Site 0 is
/// the on-premises cluster by convention; [`SiteCatalog::hybrid`] builds the
/// 2-entry catalog whose defaults reproduce the paper's two-site world
/// exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCatalog {
    sites: Vec<SiteSpec>,
    network: SiteNetwork,
}

impl SiteCatalog {
    /// Assemble a catalog.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sites are given or the network covers a
    /// different number of sites.
    pub fn new(sites: Vec<SiteSpec>, network: SiteNetwork) -> Self {
        assert!(sites.len() >= 2, "a site catalog needs at least 2 sites");
        assert_eq!(
            sites.len(),
            network.site_count(),
            "the link matrix must cover exactly the catalog's sites"
        );
        Self { sites, network }
    }

    /// The paper's hybrid deployment as a 2-entry catalog: the cluster's
    /// on-prem pool at site 0, one elastic site priced by `pricing`, and the
    /// cluster's [`NetworkModel`] as the link matrix.
    pub fn hybrid(cluster: &ClusterSpec, pricing: PricingModel) -> Self {
        Self::new(
            vec![
                SiteSpec::owned(
                    "on-prem",
                    cluster.onprem_cpu_cores,
                    cluster.onprem_memory_gb,
                    cluster.onprem_storage_gb,
                ),
                SiteSpec::elastic("cloud", pricing),
            ],
            SiteNetwork::two_site(cluster.network),
        )
    }

    /// Number of sites in the catalog.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Catalogs always hold at least two sites.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sites in index order.
    pub fn sites(&self) -> &[SiteSpec] {
        &self.sites
    }

    /// One site's spec.
    ///
    /// # Panics
    ///
    /// Panics if the site is not in the catalog.
    pub fn site(&self, site: SiteId) -> &SiteSpec {
        &self.sites[site.index()]
    }

    /// Whether a site id is within the catalog.
    pub fn contains(&self, site: SiteId) -> bool {
        site.index() < self.sites.len()
    }

    /// The per-ordered-pair network.
    pub fn network(&self) -> &SiteNetwork {
        &self.network
    }

    /// Every site id in index order.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.sites.len() as u16).map(SiteId)
    }

    /// Ids of the elastic (priced, autoscaled) sites.
    pub fn elastic_sites(&self) -> Vec<SiteId> {
        self.site_ids()
            .filter(|&s| self.site(s).is_elastic())
            .collect()
    }

    /// The elastic site with the cheapest compute per core-hour (the greedy
    /// baselines' default offload target); `None` when no site is elastic.
    pub fn cheapest_elastic_site(&self) -> Option<SiteId> {
        self.site_ids()
            .filter_map(|s| {
                self.site(s).pricing.as_ref().map(|p| {
                    (
                        s,
                        p.compute_per_node_hour / p.node_cpu_cores.max(f64::MIN_POSITIVE),
                    )
                })
            })
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite prices"))
            .map(|(s, _)| s)
    }

    /// Per-site pricing in the shape [`SiteCostModel`] consumes.
    pub fn pricings(&self) -> Vec<Option<PricingModel>> {
        self.sites.iter().map(|s| s.pricing.clone()).collect()
    }

    /// The catalog's cost model: each elastic site billed under its own
    /// pricing.
    pub fn cost_model(&self) -> SiteCostModel {
        SiteCostModel::from_pricings(self.pricings())
    }

    /// Eq. 4 capacity limits of the owned (non-elastic) sites at index > 0
    /// that declare at least one finite capacity. Site 0 is omitted: its
    /// limits are governed by `MigrationPreferences::onprem_*_limit`, the
    /// paper's operator knobs.
    pub fn owned_site_limits(&self) -> Vec<OwnedSiteLimits> {
        self.sites
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, s)| {
                !s.is_elastic()
                    && (s.cpu_cores.is_finite()
                        || s.memory_gb.is_finite()
                        || s.storage_gb.is_finite())
            })
            .map(|(i, s)| OwnedSiteLimits {
                site: SiteId(i as u16),
                cpu_cores: s.cpu_cores,
                memory_gb: s.memory_gb,
                storage_gb: s.storage_gb,
            })
            .collect()
    }
}

/// The Eq. 4 capacity limits of one owned site at index > 0, extracted by
/// [`SiteCatalog::owned_site_limits`] and enforced by the core constraint
/// kernel alongside the site-0 preference limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OwnedSiteLimits {
    /// The owned site these limits bound (never site 0).
    pub site: SiteId,
    /// CPU-core capacity (finite unless unbounded on this axis).
    pub cpu_cores: f64,
    /// Memory capacity in GB.
    pub memory_gb: f64,
    /// Storage capacity in GB.
    pub storage_gb: f64,
}

impl Default for SiteCatalog {
    /// The 2-entry catalog of the paper's testbed with default pricing —
    /// evaluating against it reproduces the original two-site numbers bit
    /// for bit.
    fn default() -> Self {
        Self::hybrid(&ClusterSpec::default(), PricingModel::default())
    }
}

/// Hardware description of one node type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Marketing name of the node type (e.g. `m5.large`).
    pub name: String,
    /// CPU cores per node.
    pub cpu_cores: f64,
    /// Memory per node in GB.
    pub memory_gb: f64,
}

impl NodeSpec {
    /// Create a node spec.
    pub fn new(name: impl Into<String>, cpu_cores: f64, memory_gb: f64) -> Self {
        Self {
            name: name.into(),
            cpu_cores,
            memory_gb,
        }
    }
}

/// The hybrid cluster: a fixed-capacity on-prem side plus an autoscaling
/// cloud side built from `cloud_node` instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Total CPU cores available on-prem.
    pub onprem_cpu_cores: f64,
    /// Total memory available on-prem, in GB.
    pub onprem_memory_gb: f64,
    /// Total storage available on-prem, in GB.
    pub onprem_storage_gb: f64,
    /// Node type the cloud autoscaler provisions.
    pub cloud_node: NodeSpec,
    /// Network characteristics between and within the locations.
    pub network: NetworkModel,
}

impl Default for ClusterSpec {
    /// A cluster shaped like the paper's testbed: ten on-prem nodes with two
    /// 10-core CPUs each (200 cores total), and a 16-core cloud node type.
    fn default() -> Self {
        Self {
            onprem_cpu_cores: 200.0,
            onprem_memory_gb: 1600.0,
            onprem_storage_gb: 4800.0,
            cloud_node: NodeSpec::new("cloud-16c", 16.0, 64.0),
            network: NetworkModel::default(),
        }
    }
}

impl ClusterSpec {
    /// A small cluster useful in unit tests and examples: the on-prem side
    /// holds `cpu_cores` cores and the cloud node type has 8 cores.
    pub fn small(cpu_cores: f64) -> Self {
        Self {
            onprem_cpu_cores: cpu_cores,
            onprem_memory_gb: cpu_cores * 4.0,
            onprem_storage_gb: cpu_cores * 20.0,
            cloud_node: NodeSpec::new("cloud-8c", 8.0, 32.0),
            network: NetworkModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_bit_round_trip() {
        assert_eq!(Location::OnPrem.as_bit(), 0);
        assert_eq!(Location::Cloud.as_bit(), 1);
        assert_eq!(Location::from_bit(0), Location::OnPrem);
        assert_eq!(Location::from_bit(1), Location::Cloud);
        assert_eq!(Location::from_bit(7), Location::Cloud);
        assert_eq!(Location::OnPrem.to_string(), "on-prem");
    }

    #[test]
    fn link_transfer_time_includes_propagation_and_serialization() {
        let link = LinkSpec {
            latency_ms: 1.0,
            bandwidth_mbps: 8.0, // 1 byte per microsecond
        };
        // 1 ms propagation + 500 bytes at 1 B/µs = 1500 µs.
        assert!((link.transfer_us(500.0) - 1_500.0).abs() < 1e-9);
        assert!((link.transfer_us(0.0) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn default_network_matches_paper_measurements() {
        let n = NetworkModel::default();
        assert!((n.intra.latency_ms - 0.168).abs() < 1e-12);
        assert!((n.inter.latency_ms - 23.015).abs() < 1e-12);
        assert!(n.inter.transfer_us(0.0) > n.intra.transfer_us(0.0));
    }

    #[test]
    fn link_selection_by_location() {
        let n = NetworkModel::default();
        assert_eq!(n.link(Location::OnPrem, Location::OnPrem), n.intra);
        assert_eq!(n.link(Location::Cloud, Location::Cloud), n.intra);
        assert_eq!(n.link(Location::OnPrem, Location::Cloud), n.inter);
        assert_eq!(n.link(Location::Cloud, Location::OnPrem), n.inter);
    }

    #[test]
    fn delay_delta_positive_when_offloading_and_negative_when_returning() {
        let n = NetworkModel::default();
        let offload = n.delay_delta_us(
            Location::OnPrem,
            Location::OnPrem,
            Location::Cloud,
            1_000.0,
            1_000.0,
        );
        assert!(offload > 0.0, "offloading must add delay, got {offload}");
        let restore = n.delay_delta_us(
            Location::OnPrem,
            Location::Cloud,
            Location::OnPrem,
            1_000.0,
            1_000.0,
        );
        assert!(
            (offload + restore).abs() < 1e-6,
            "delta must be antisymmetric"
        );
        let unchanged = n.delay_delta_us(
            Location::OnPrem,
            Location::Cloud,
            Location::Cloud,
            1_000.0,
            1_000.0,
        );
        assert_eq!(unchanged, 0.0);
    }

    #[test]
    fn delay_delta_grows_with_payload() {
        let n = NetworkModel::default();
        let small = n.delay_delta_us(
            Location::OnPrem,
            Location::OnPrem,
            Location::Cloud,
            100.0,
            100.0,
        );
        let large = n.delay_delta_us(
            Location::OnPrem,
            Location::OnPrem,
            Location::Cloud,
            1.0e6,
            1.0e6,
        );
        assert!(large > small);
    }

    #[test]
    fn locations_map_to_sites_and_back() {
        assert_eq!(Location::OnPrem.site(), SiteId::ON_PREM);
        assert_eq!(Location::Cloud.site(), SiteId::CLOUD);
        assert_eq!(SiteId::from(Location::Cloud), SiteId(1));
        assert_eq!(Location::of_site(SiteId(0)), Location::OnPrem);
        assert_eq!(Location::of_site(SiteId(1)), Location::Cloud);
        assert_eq!(Location::of_site(SiteId(5)), Location::Cloud);
    }

    #[test]
    fn two_site_network_reproduces_the_binary_model_bitwise() {
        let binary = NetworkModel::default();
        let sites = SiteNetwork::two_site(binary);
        assert_eq!(sites.site_count(), 2);
        for (a, b) in [(0u16, 0u16), (0, 1), (1, 0), (1, 1)] {
            let (sa, sb) = (SiteId(a), SiteId(b));
            let expected = binary.link(Location::of_site(sa), Location::of_site(sb));
            assert_eq!(sites.link(sa, sb), expected);
            for bytes in [0.0, 512.0, 2.0e6] {
                assert_eq!(
                    sites.transfer_us(sa, sb, bytes).to_bits(),
                    expected.transfer_us(bytes).to_bits()
                );
            }
            // Exchange = the binary model's symmetric round trip.
            let exchange = sites.exchange_us(sa, sb, 1_000.0, 2_000.0);
            let binary_exchange = expected.transfer_us(1_000.0) + expected.transfer_us(2_000.0);
            assert_eq!(exchange.to_bits(), binary_exchange.to_bits());
        }
        // Δ over sites matches Δ over locations when only the callee moves.
        let delta = sites.delay_delta_us(SiteId(0), SiteId(0), SiteId(0), SiteId(1), 500.0, 700.0);
        let binary_delta = binary.delay_delta_us(
            Location::OnPrem,
            Location::OnPrem,
            Location::Cloud,
            500.0,
            700.0,
        );
        assert_eq!(delta.to_bits(), binary_delta.to_bits());
        assert_eq!(SiteNetwork::from(binary), SiteNetwork::default());
    }

    #[test]
    fn asymmetric_links_split_request_and_response_legs() {
        let fast = LinkSpec {
            latency_ms: 1.0,
            bandwidth_mbps: 8.0, // 1 byte per µs
        };
        let slow = LinkSpec {
            latency_ms: 10.0,
            bandwidth_mbps: 8.0,
        };
        let intra = LinkSpec {
            latency_ms: 0.0,
            bandwidth_mbps: 8.0,
        };
        // 0→1 fast, 1→0 slow.
        let net = SiteNetwork::from_links(2, vec![intra, fast, slow, intra]);
        // Request (100 B) over fast: 1000 + 100; response (200 B) over slow:
        // 10000 + 200.
        let exchange = net.exchange_us(SiteId(0), SiteId(1), 100.0, 200.0);
        assert!((exchange - (1_100.0 + 10_200.0)).abs() < 1e-9);
        // Reversing caller and callee swaps the legs.
        let reverse = net.exchange_us(SiteId(1), SiteId(0), 100.0, 200.0);
        assert!((reverse - (10_100.0 + 1_200.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ordered site pair")]
    fn mismatched_link_matrix_is_rejected() {
        let l = NetworkModel::default().intra;
        let _ = SiteNetwork::from_links(3, vec![l; 4]);
    }

    #[test]
    fn hybrid_catalog_reproduces_the_two_site_world() {
        let catalog = SiteCatalog::default();
        assert_eq!(catalog.len(), 2);
        assert!(!catalog.is_empty());
        assert!(catalog.contains(SiteId(1)));
        assert!(!catalog.contains(SiteId(2)));
        let onprem = catalog.site(SiteId::ON_PREM);
        assert!(!onprem.is_elastic());
        assert_eq!(onprem.cpu_cores, ClusterSpec::default().onprem_cpu_cores);
        let cloud = catalog.site(SiteId::CLOUD);
        assert!(cloud.is_elastic());
        assert!(cloud.cpu_cores.is_infinite());
        assert_eq!(catalog.elastic_sites(), vec![SiteId::CLOUD]);
        assert_eq!(catalog.cheapest_elastic_site(), Some(SiteId::CLOUD));
        assert_eq!(catalog.network(), &SiteNetwork::default());
        assert_eq!(catalog.cost_model().site_count(), 2);
        assert_eq!(catalog.pricings()[0], None);
        assert_eq!(
            catalog.site_ids().collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(1)]
        );
    }

    #[test]
    fn cheapest_elastic_site_compares_per_core_prices() {
        use atlas_cloud::Provider;
        let cluster = ClusterSpec::default();
        let mut gcp = PricingModel::preset(Provider::GcpLike);
        gcp.compute_per_node_hour *= 0.5; // clearly cheapest per core
        let catalog = SiteCatalog::new(
            vec![
                SiteSpec::owned("dc", cluster.onprem_cpu_cores, 100.0, 100.0),
                SiteSpec::elastic("aws", PricingModel::preset(Provider::AwsLike)),
                SiteSpec::elastic("gcp-cheap", gcp),
            ],
            SiteNetwork::from_links(3, vec![cluster.network.intra; 9]),
        );
        assert_eq!(catalog.cheapest_elastic_site(), Some(SiteId(2)));
        assert_eq!(catalog.elastic_sites(), vec![SiteId(1), SiteId(2)]);
    }

    #[test]
    fn cluster_defaults_are_sane() {
        let c = ClusterSpec::default();
        assert_eq!(c.onprem_cpu_cores, 200.0);
        assert!(c.cloud_node.cpu_cores > 0.0);
        let s = ClusterSpec::small(10.0);
        assert_eq!(s.onprem_cpu_cores, 10.0);
        assert_eq!(s.onprem_memory_gb, 40.0);
    }
}
