//! Hybrid cluster and network model.
//!
//! The paper's testbed spans a ten-node on-prem cluster (Wisconsin) and a
//! public-cloud datacenter (Massachusetts). The only properties Atlas's
//! models consume are (i) the capacity of the on-prem cluster, (ii) the node
//! granularity offered by the cloud provider, and (iii) the latency and
//! bandwidth inside and between the two locations. Those are captured here
//! with the paper's measured values as defaults.

use serde::{Deserialize, Serialize};

/// Where a component is placed. Atlas supports multi-cloud, but like the
/// paper we focus on the two-location case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Location {
    /// The on-premises cluster (`p_c = 0` in the paper).
    OnPrem,
    /// The public cloud (`p_c = 1`).
    Cloud,
}

impl Location {
    /// Encode as the paper's binary plan variable.
    pub fn as_bit(self) -> u8 {
        match self {
            Location::OnPrem => 0,
            Location::Cloud => 1,
        }
    }

    /// Decode from a binary plan variable (anything non-zero is cloud).
    pub fn from_bit(bit: u8) -> Self {
        if bit == 0 {
            Location::OnPrem
        } else {
            Location::Cloud
        }
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::OnPrem => f.write_str("on-prem"),
            Location::Cloud => f.write_str("cloud"),
        }
    }
}

/// Latency/bandwidth description of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way network latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
}

impl LinkSpec {
    /// Time in microseconds to move `bytes` across this link, including the
    /// propagation latency. This is the `γ + ν·d` term of paper Eq. (2) for
    /// one direction.
    pub fn transfer_us(&self, bytes: f64) -> f64 {
        let propagation_us = self.latency_ms * 1_000.0;
        let bytes_per_us = self.bandwidth_mbps * 1.0e6 / 8.0 / 1.0e6; // bytes per microsecond
        let serialization_us = if bytes_per_us > 0.0 {
            bytes / bytes_per_us
        } else {
            0.0
        };
        propagation_us + serialization_us
    }
}

/// Network characteristics of the hybrid deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link between two components in the same datacenter.
    pub intra: LinkSpec,
    /// Link between a component on-prem and one in the cloud.
    pub inter: LinkSpec,
}

impl Default for NetworkModel {
    /// The paper's measured values (§5.1): 0.168 ms / 941 Mbps collocated,
    /// 23.015 ms / 921 Mbps across datacenters.
    fn default() -> Self {
        Self {
            intra: LinkSpec {
                latency_ms: 0.168,
                bandwidth_mbps: 941.0,
            },
            inter: LinkSpec {
                latency_ms: 23.015,
                bandwidth_mbps: 921.0,
            },
        }
    }
}

impl NetworkModel {
    /// Link spec for a communication between the two given locations.
    pub fn link(&self, a: Location, b: Location) -> LinkSpec {
        if a == b {
            self.intra
        } else {
            self.inter
        }
    }

    /// One-way transfer time (µs) for `bytes` between the two locations.
    pub fn transfer_us(&self, from: Location, to: Location, bytes: f64) -> f64 {
        self.link(from, to).transfer_us(bytes)
    }

    /// The paper's Δ (Eq. 2): the *additional* delay incurred by one
    /// request/response exchange when the callee moves from `before` to
    /// `after` relative to its caller.
    pub fn delay_delta_us(
        &self,
        caller: Location,
        callee_before: Location,
        callee_after: Location,
        request_bytes: f64,
        response_bytes: f64,
    ) -> f64 {
        let before = self.link(caller, callee_before);
        let after = self.link(caller, callee_after);
        // One exchange pays two propagation legs (request + response) plus the
        // serialization of both payloads: `2γ + (d_req + d_resp)/ν`.
        let exchange_us =
            |link: LinkSpec| link.transfer_us(request_bytes) + link.transfer_us(response_bytes);
        exchange_us(after) - exchange_us(before)
    }
}

/// Hardware description of one node type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Marketing name of the node type (e.g. `m5.large`).
    pub name: String,
    /// CPU cores per node.
    pub cpu_cores: f64,
    /// Memory per node in GB.
    pub memory_gb: f64,
}

impl NodeSpec {
    /// Create a node spec.
    pub fn new(name: impl Into<String>, cpu_cores: f64, memory_gb: f64) -> Self {
        Self {
            name: name.into(),
            cpu_cores,
            memory_gb,
        }
    }
}

/// The hybrid cluster: a fixed-capacity on-prem side plus an autoscaling
/// cloud side built from `cloud_node` instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Total CPU cores available on-prem.
    pub onprem_cpu_cores: f64,
    /// Total memory available on-prem, in GB.
    pub onprem_memory_gb: f64,
    /// Total storage available on-prem, in GB.
    pub onprem_storage_gb: f64,
    /// Node type the cloud autoscaler provisions.
    pub cloud_node: NodeSpec,
    /// Network characteristics between and within the locations.
    pub network: NetworkModel,
}

impl Default for ClusterSpec {
    /// A cluster shaped like the paper's testbed: ten on-prem nodes with two
    /// 10-core CPUs each (200 cores total), and a 16-core cloud node type.
    fn default() -> Self {
        Self {
            onprem_cpu_cores: 200.0,
            onprem_memory_gb: 1600.0,
            onprem_storage_gb: 4800.0,
            cloud_node: NodeSpec::new("cloud-16c", 16.0, 64.0),
            network: NetworkModel::default(),
        }
    }
}

impl ClusterSpec {
    /// A small cluster useful in unit tests and examples: the on-prem side
    /// holds `cpu_cores` cores and the cloud node type has 8 cores.
    pub fn small(cpu_cores: f64) -> Self {
        Self {
            onprem_cpu_cores: cpu_cores,
            onprem_memory_gb: cpu_cores * 4.0,
            onprem_storage_gb: cpu_cores * 20.0,
            cloud_node: NodeSpec::new("cloud-8c", 8.0, 32.0),
            network: NetworkModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_bit_round_trip() {
        assert_eq!(Location::OnPrem.as_bit(), 0);
        assert_eq!(Location::Cloud.as_bit(), 1);
        assert_eq!(Location::from_bit(0), Location::OnPrem);
        assert_eq!(Location::from_bit(1), Location::Cloud);
        assert_eq!(Location::from_bit(7), Location::Cloud);
        assert_eq!(Location::OnPrem.to_string(), "on-prem");
    }

    #[test]
    fn link_transfer_time_includes_propagation_and_serialization() {
        let link = LinkSpec {
            latency_ms: 1.0,
            bandwidth_mbps: 8.0, // 1 byte per microsecond
        };
        // 1 ms propagation + 500 bytes at 1 B/µs = 1500 µs.
        assert!((link.transfer_us(500.0) - 1_500.0).abs() < 1e-9);
        assert!((link.transfer_us(0.0) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn default_network_matches_paper_measurements() {
        let n = NetworkModel::default();
        assert!((n.intra.latency_ms - 0.168).abs() < 1e-12);
        assert!((n.inter.latency_ms - 23.015).abs() < 1e-12);
        assert!(n.inter.transfer_us(0.0) > n.intra.transfer_us(0.0));
    }

    #[test]
    fn link_selection_by_location() {
        let n = NetworkModel::default();
        assert_eq!(n.link(Location::OnPrem, Location::OnPrem), n.intra);
        assert_eq!(n.link(Location::Cloud, Location::Cloud), n.intra);
        assert_eq!(n.link(Location::OnPrem, Location::Cloud), n.inter);
        assert_eq!(n.link(Location::Cloud, Location::OnPrem), n.inter);
    }

    #[test]
    fn delay_delta_positive_when_offloading_and_negative_when_returning() {
        let n = NetworkModel::default();
        let offload = n.delay_delta_us(
            Location::OnPrem,
            Location::OnPrem,
            Location::Cloud,
            1_000.0,
            1_000.0,
        );
        assert!(offload > 0.0, "offloading must add delay, got {offload}");
        let restore = n.delay_delta_us(
            Location::OnPrem,
            Location::Cloud,
            Location::OnPrem,
            1_000.0,
            1_000.0,
        );
        assert!(
            (offload + restore).abs() < 1e-6,
            "delta must be antisymmetric"
        );
        let unchanged = n.delay_delta_us(
            Location::OnPrem,
            Location::Cloud,
            Location::Cloud,
            1_000.0,
            1_000.0,
        );
        assert_eq!(unchanged, 0.0);
    }

    #[test]
    fn delay_delta_grows_with_payload() {
        let n = NetworkModel::default();
        let small = n.delay_delta_us(
            Location::OnPrem,
            Location::OnPrem,
            Location::Cloud,
            100.0,
            100.0,
        );
        let large = n.delay_delta_us(
            Location::OnPrem,
            Location::OnPrem,
            Location::Cloud,
            1.0e6,
            1.0e6,
        );
        assert!(large > small);
    }

    #[test]
    fn cluster_defaults_are_sane() {
        let c = ClusterSpec::default();
        assert_eq!(c.onprem_cpu_cores, 200.0);
        assert!(c.cloud_node.cpu_cores > 0.0);
        let s = ClusterSpec::small(10.0);
        assert_eq!(s.onprem_cpu_cores, 10.0);
        assert_eq!(s.onprem_memory_gb, 40.0);
    }
}
