//! Placements: where every component of an application runs.
//!
//! A placement is the object a migration plan describes; Atlas's plan type
//! (`atlas-core::plan::MigrationPlan`) wraps a placement together with the
//! preferences used to evaluate it.
//!
//! Since the N-site generalisation a placement is a vector of [`SiteId`]s
//! (site 0 = on-prem). The paper's binary encoding survives as the 2-site
//! special case: [`Placement::from_bits`]/[`Placement::to_bits`] map bit 0 ↔
//! site 0 and bit 1 ↔ site 1, and the [`Location`] view collapses every
//! non-zero site to `Cloud`.

use serde::{Deserialize, Serialize};

use crate::cluster::{Location, SiteId};
use crate::component::ComponentId;

/// Error returned by the checked placement constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A binary encoding held a value other than 0 or 1.
    BitOutOfRange {
        /// Index of the offending component.
        component: usize,
        /// The out-of-range value.
        bit: u8,
    },
    /// A site assignment named a site outside the catalog.
    SiteOutOfRange {
        /// Index of the offending component.
        component: usize,
        /// The out-of-range site.
        site: SiteId,
        /// Number of sites in the catalog.
        site_count: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::BitOutOfRange { component, bit } => write!(
                f,
                "component {component}: bit {bit} is not a valid binary plan variable (want 0 or 1)"
            ),
            PlacementError::SiteOutOfRange {
                component,
                site,
                site_count,
            } => write!(
                f,
                "component {component}: {site} is outside the {site_count}-site catalog"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Assignment of every component to a site, indexed by [`ComponentId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    sites: Vec<SiteId>,
}

impl Placement {
    /// A placement with every component on-prem (the pre-migration state in
    /// the paper's experiments).
    pub fn all_onprem(component_count: usize) -> Self {
        Self::all_at(SiteId::ON_PREM, component_count)
    }

    /// A placement with every component in the cloud (site 1).
    pub fn all_cloud(component_count: usize) -> Self {
        Self::all_at(SiteId::CLOUD, component_count)
    }

    /// A placement with every component at one site.
    pub fn all_at(site: SiteId, component_count: usize) -> Self {
        Self {
            sites: vec![site; component_count],
        }
    }

    /// Build from an explicit location vector (the binary view).
    pub fn from_locations(locations: Vec<Location>) -> Self {
        Self {
            sites: locations.into_iter().map(Location::site).collect(),
        }
    }

    /// Build from an explicit site vector.
    pub fn from_sites(sites: Vec<SiteId>) -> Self {
        Self { sites }
    }

    /// Build from a site vector, rejecting assignments outside an
    /// `site_count`-site catalog.
    pub fn try_from_sites(sites: Vec<SiteId>, site_count: usize) -> Result<Self, PlacementError> {
        for (component, &site) in sites.iter().enumerate() {
            if site.index() >= site_count {
                return Err(PlacementError::SiteOutOfRange {
                    component,
                    site,
                    site_count,
                });
            }
        }
        Ok(Self { sites })
    }

    /// Build from the paper's binary encoding (`0` = on-prem, `1` = cloud).
    ///
    /// Debug builds assert every value is a valid plan variable (0 or 1)
    /// instead of silently collapsing larger values; use
    /// [`Placement::try_from_bits`] for a checked construction in all
    /// builds.
    pub fn from_bits(bits: &[u8]) -> Self {
        debug_assert!(
            bits.iter().all(|&b| b <= 1),
            "binary plan encodings must hold only 0 or 1 (got {bits:?}); \
             use from_sites for N-site placements"
        );
        Self {
            sites: bits.iter().map(|&b| Location::from_bit(b).site()).collect(),
        }
    }

    /// Checked variant of [`Placement::from_bits`]: rejects values other
    /// than 0 or 1 in every build.
    pub fn try_from_bits(bits: &[u8]) -> Result<Self, PlacementError> {
        if let Some((component, &bit)) = bits.iter().enumerate().find(|(_, &b)| b > 1) {
            return Err(PlacementError::BitOutOfRange { component, bit });
        }
        Ok(Self::from_bits(bits))
    }

    /// The binary encoding of this placement: 0 for on-prem, 1 for any
    /// elastic site (lossy for N-site placements — use
    /// [`Placement::sites`] to preserve site identity).
    pub fn to_bits(&self) -> Vec<u8> {
        self.sites
            .iter()
            .map(|s| Location::of_site(*s).as_bit())
            .collect()
    }

    /// The site vector of this placement (cloned; see [`Placement::sites`]
    /// for the borrowed form).
    pub fn to_sites(&self) -> Vec<SiteId> {
        self.sites.clone()
    }

    /// Number of components covered.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the placement covers no components.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Binary view of a component's placement (site 0 = on-prem, anything
    /// else = cloud).
    pub fn location(&self, c: ComponentId) -> Location {
        Location::of_site(self.sites[c.0])
    }

    /// Site of a component.
    pub fn site(&self, c: ComponentId) -> SiteId {
        self.sites[c.0]
    }

    /// Set the site of a component ([`Location`]s convert implicitly, so the
    /// binary call sites read unchanged).
    pub fn set(&mut self, c: ComponentId, site: impl Into<SiteId>) {
        self.sites[c.0] = site.into();
    }

    /// Move a component to the cloud (builder style).
    pub fn with_cloud(mut self, c: ComponentId) -> Self {
        self.set(c, Location::Cloud);
        self
    }

    /// Move a component to a site (builder style).
    pub fn with_site(mut self, c: ComponentId, site: impl Into<SiteId>) -> Self {
        self.set(c, site);
        self
    }

    /// All sites indexed by component id.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Ids of components placed off-prem (at any elastic site).
    pub fn cloud_components(&self) -> Vec<ComponentId> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_on_prem())
            .map(|(i, _)| ComponentId(i))
            .collect()
    }

    /// Ids of components placed on-prem.
    pub fn onprem_components(&self) -> Vec<ComponentId> {
        self.components_at(SiteId::ON_PREM)
    }

    /// Ids of the components placed at one site.
    pub fn components_at(&self, site: SiteId) -> Vec<ComponentId> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == site)
            .map(|(i, _)| ComponentId(i))
            .collect()
    }

    /// Number of components placed off-prem.
    pub fn cloud_count(&self) -> usize {
        self.sites.iter().filter(|s| !s.is_on_prem()).count()
    }

    /// Components whose site differs between `self` (the candidate) and
    /// `original` (the current deployment): the set that must be migrated.
    pub fn moved_components(&self, original: &Placement) -> Vec<ComponentId> {
        assert_eq!(self.len(), original.len(), "placement sizes must match");
        (0..self.len())
            .map(ComponentId)
            .filter(|&c| self.site(c) != original.site(c))
            .collect()
    }

    /// Hamming distance to another placement (number of differing
    /// components).
    pub fn distance(&self, other: &Placement) -> usize {
        self.moved_components(other).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_onprem_and_all_cloud() {
        let p = Placement::all_onprem(4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.cloud_count(), 0);
        assert_eq!(p.onprem_components().len(), 4);
        let c = Placement::all_cloud(4);
        assert_eq!(c.cloud_count(), 4);
    }

    #[test]
    fn bit_encoding_round_trip() {
        let p = Placement::from_bits(&[0, 1, 1, 0]);
        assert_eq!(p.location(ComponentId(0)), Location::OnPrem);
        assert_eq!(p.location(ComponentId(1)), Location::Cloud);
        assert_eq!(p.to_bits(), vec![0, 1, 1, 0]);
        assert_eq!(Placement::from_bits(&p.to_bits()), p);
    }

    #[test]
    fn site_encoding_round_trip() {
        let sites = vec![SiteId(0), SiteId(2), SiteId(1), SiteId(3)];
        let p = Placement::from_sites(sites.clone());
        assert_eq!(p.sites(), sites.as_slice());
        assert_eq!(p.to_sites(), sites);
        assert_eq!(p.site(ComponentId(1)), SiteId(2));
        // The binary view collapses every elastic site to "cloud".
        assert_eq!(p.to_bits(), vec![0, 1, 1, 1]);
        assert_eq!(p.location(ComponentId(3)), Location::Cloud);
        assert_eq!(p.cloud_count(), 3);
        assert_eq!(p.components_at(SiteId(2)), vec![ComponentId(1)]);
        assert_eq!(
            Placement::all_at(SiteId(2), 2).site(ComponentId(0)),
            SiteId(2)
        );
    }

    #[test]
    fn checked_constructors_reject_out_of_range_values() {
        assert_eq!(
            Placement::try_from_bits(&[0, 1, 2]),
            Err(PlacementError::BitOutOfRange {
                component: 2,
                bit: 2
            })
        );
        assert_eq!(
            Placement::try_from_bits(&[0, 1, 1]).unwrap(),
            Placement::from_bits(&[0, 1, 1])
        );
        let sites = vec![SiteId(0), SiteId(3)];
        assert_eq!(
            Placement::try_from_sites(sites.clone(), 3),
            Err(PlacementError::SiteOutOfRange {
                component: 1,
                site: SiteId(3),
                site_count: 3
            })
        );
        assert_eq!(
            Placement::try_from_sites(sites.clone(), 4).unwrap(),
            Placement::from_sites(sites)
        );
        // Errors render something useful.
        let message = PlacementError::BitOutOfRange {
            component: 2,
            bit: 7,
        }
        .to_string();
        assert!(message.contains("bit 7"));
        assert!(PlacementError::SiteOutOfRange {
            component: 0,
            site: SiteId(9),
            site_count: 4
        }
        .to_string()
        .contains("site9"));
    }

    /// Debug builds reject the silent non-binary collapse outright (release
    /// builds keep the historical lenient behaviour for performance).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "0 or 1")]
    fn from_bits_asserts_binary_values_in_debug_builds() {
        let _ = Placement::from_bits(&[0, 7]);
    }

    #[test]
    fn set_and_builder() {
        let mut p = Placement::all_onprem(3);
        p.set(ComponentId(1), Location::Cloud);
        assert_eq!(p.cloud_components(), vec![ComponentId(1)]);
        let q = Placement::all_onprem(3).with_cloud(ComponentId(2));
        assert_eq!(q.cloud_components(), vec![ComponentId(2)]);
        let r = Placement::all_onprem(3).with_site(ComponentId(0), SiteId(2));
        assert_eq!(r.site(ComponentId(0)), SiteId(2));
    }

    #[test]
    fn moved_components_and_distance() {
        let orig = Placement::all_onprem(5);
        let plan = Placement::from_bits(&[0, 1, 0, 1, 0]);
        assert_eq!(
            plan.moved_components(&orig),
            vec![ComponentId(1), ComponentId(3)]
        );
        assert_eq!(plan.distance(&orig), 2);
        assert_eq!(orig.distance(&orig), 0);
        // Moving between two elastic sites is still a move.
        let a = Placement::from_sites(vec![SiteId(1), SiteId(0)]);
        let b = Placement::from_sites(vec![SiteId(2), SiteId(0)]);
        assert_eq!(a.distance(&b), 1);
    }

    #[test]
    #[should_panic(expected = "sizes must match")]
    fn mismatched_sizes_panic() {
        let a = Placement::all_onprem(3);
        let b = Placement::all_onprem(4);
        let _ = a.moved_components(&b);
    }
}
