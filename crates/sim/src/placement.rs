//! Placements: where every component of an application runs.
//!
//! A placement is the object a migration plan describes; Atlas's plan type
//! (`atlas-core::plan::MigrationPlan`) wraps a placement together with the
//! preferences used to evaluate it.

use serde::{Deserialize, Serialize};

use crate::cluster::Location;
use crate::component::ComponentId;

/// Assignment of every component to a location, indexed by [`ComponentId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    locations: Vec<Location>,
}

impl Placement {
    /// A placement with every component on-prem (the pre-migration state in
    /// the paper's experiments).
    pub fn all_onprem(component_count: usize) -> Self {
        Self {
            locations: vec![Location::OnPrem; component_count],
        }
    }

    /// A placement with every component in the cloud.
    pub fn all_cloud(component_count: usize) -> Self {
        Self {
            locations: vec![Location::Cloud; component_count],
        }
    }

    /// Build from an explicit location vector.
    pub fn from_locations(locations: Vec<Location>) -> Self {
        Self { locations }
    }

    /// Build from the paper's binary encoding (`0` = on-prem, `1` = cloud).
    pub fn from_bits(bits: &[u8]) -> Self {
        Self {
            locations: bits.iter().map(|&b| Location::from_bit(b)).collect(),
        }
    }

    /// The binary encoding of this placement.
    pub fn to_bits(&self) -> Vec<u8> {
        self.locations.iter().map(|l| l.as_bit()).collect()
    }

    /// Number of components covered.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the placement covers no components.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Location of a component.
    pub fn location(&self, c: ComponentId) -> Location {
        self.locations[c.0]
    }

    /// Set the location of a component.
    pub fn set(&mut self, c: ComponentId, loc: Location) {
        self.locations[c.0] = loc;
    }

    /// Move a component to the cloud (builder style).
    pub fn with_cloud(mut self, c: ComponentId) -> Self {
        self.set(c, Location::Cloud);
        self
    }

    /// All locations indexed by component id.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Ids of components placed in the cloud.
    pub fn cloud_components(&self) -> Vec<ComponentId> {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == Location::Cloud)
            .map(|(i, _)| ComponentId(i))
            .collect()
    }

    /// Ids of components placed on-prem.
    pub fn onprem_components(&self) -> Vec<ComponentId> {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == Location::OnPrem)
            .map(|(i, _)| ComponentId(i))
            .collect()
    }

    /// Number of components placed in the cloud.
    pub fn cloud_count(&self) -> usize {
        self.locations
            .iter()
            .filter(|&&l| l == Location::Cloud)
            .count()
    }

    /// Components whose location differs between `self` (the candidate) and
    /// `original` (the current deployment): the set that must be migrated.
    pub fn moved_components(&self, original: &Placement) -> Vec<ComponentId> {
        assert_eq!(self.len(), original.len(), "placement sizes must match");
        (0..self.len())
            .map(ComponentId)
            .filter(|&c| self.location(c) != original.location(c))
            .collect()
    }

    /// Hamming distance to another placement (number of differing components).
    pub fn distance(&self, other: &Placement) -> usize {
        self.moved_components(other).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_onprem_and_all_cloud() {
        let p = Placement::all_onprem(4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.cloud_count(), 0);
        assert_eq!(p.onprem_components().len(), 4);
        let c = Placement::all_cloud(4);
        assert_eq!(c.cloud_count(), 4);
    }

    #[test]
    fn bit_encoding_round_trip() {
        let p = Placement::from_bits(&[0, 1, 1, 0]);
        assert_eq!(p.location(ComponentId(0)), Location::OnPrem);
        assert_eq!(p.location(ComponentId(1)), Location::Cloud);
        assert_eq!(p.to_bits(), vec![0, 1, 1, 0]);
        assert_eq!(Placement::from_bits(&p.to_bits()), p);
    }

    #[test]
    fn set_and_builder() {
        let mut p = Placement::all_onprem(3);
        p.set(ComponentId(1), Location::Cloud);
        assert_eq!(p.cloud_components(), vec![ComponentId(1)]);
        let q = Placement::all_onprem(3).with_cloud(ComponentId(2));
        assert_eq!(q.cloud_components(), vec![ComponentId(2)]);
    }

    #[test]
    fn moved_components_and_distance() {
        let orig = Placement::all_onprem(5);
        let plan = Placement::from_bits(&[0, 1, 0, 1, 0]);
        assert_eq!(
            plan.moved_components(&orig),
            vec![ComponentId(1), ComponentId(3)]
        );
        assert_eq!(plan.distance(&orig), 2);
        assert_eq!(orig.distance(&orig), 0);
    }

    #[test]
    #[should_panic(expected = "sizes must match")]
    fn mismatched_sizes_panic() {
        let a = Placement::all_onprem(3);
        let b = Placement::all_onprem(4);
        let _ = a.moved_components(&b);
    }
}
