//! The simulation engine: executes API requests against a placement and
//! emits telemetry.
//!
//! For every scheduled request the engine walks the API's call tree,
//! sampling compute times and payload sizes, adding network transfer time on
//! every caller→callee hop according to the placement and the
//! [`NetworkModel`](crate::cluster::NetworkModel), and applying the
//! [`OverloadModel`] inflation to
//! components running on the saturated on-prem cluster. The walk produces a
//! Jaeger-style trace, Istio-style pairwise byte counters and cAdvisor-style
//! resource metrics — exactly the telemetry Atlas consumes.
//!
//! # Example
//!
//! Simulate a two-component application serving one API and inspect both the
//! report and the emitted telemetry:
//!
//! ```
//! use atlas_sim::{
//!     ApiSpec, AppTopology, CallEdge, CallNode, ComponentId, ComponentSpec, OverloadModel,
//!     Placement, RequestSchedule, SimConfig, SizeDist, Simulator, TimeDist,
//! };
//! use atlas_telemetry::TelemetryStore;
//!
//! // Frontend forwards /loginAPI to UserService (300 µs of compute) behind
//! // a 1 KiB request and a 256 B response.
//! let components = vec![
//!     ComponentSpec::stateless("Frontend", 0.2, 0.5),
//!     ComponentSpec::stateless("UserService", 0.1, 0.5),
//! ];
//! let callee = CallNode::leaf(ComponentId(1), "login", TimeDist::constant(300.0));
//! let root = CallNode::leaf(ComponentId(0), "/loginAPI", TimeDist::constant(100.0))
//!     .with_stage(vec![CallEdge::sync(
//!         callee,
//!         SizeDist::constant(1024.0),
//!         SizeDist::constant(256.0),
//!     )]);
//! let app = AppTopology::new("tiny", components, vec![ApiSpec::new("/loginAPI", root)])?;
//!
//! // Ten requests, one per second, everything on-prem.
//! let mut schedule = RequestSchedule::new();
//! for s in 0u64..10 {
//!     schedule.push(s * 1_000_000, "/loginAPI");
//! }
//! let store = TelemetryStore::new();
//! let report = Simulator::new(
//!     app,
//!     Placement::all_onprem(2),
//!     SimConfig {
//!         overload: OverloadModel::disabled(),
//!         ..SimConfig::default()
//!     },
//! )
//! .run(&schedule, &store);
//!
//! assert_eq!(report.success_count(), 10);
//! assert_eq!(store.trace_count(), 10);
//! assert!(report.api_mean_latency_ms("/loginAPI").unwrap() > 0.0);
//! # Ok::<(), atlas_sim::topology::TopologyError>(())
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atlas_telemetry::{
    Direction, IdGenerator, MetricKind, Micros, Span, SpanId, TelemetryStore, Trace,
};

use crate::calltree::{CallMode, CallNode};
use crate::cluster::{ClusterSpec, SiteId, SiteNetwork};
use crate::component::ComponentId;
use crate::overload::OverloadModel;
use crate::placement::Placement;
use crate::schedule::RequestSchedule;
use crate::topology::AppTopology;

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The hybrid cluster (capacity + network model).
    pub cluster: ClusterSpec,
    /// Overload behaviour of the on-prem side.
    pub overload: OverloadModel,
    /// Window length (seconds) used when recording metrics and computing
    /// utilization. The paper's telemetry stack scrapes at a few seconds;
    /// 5 s matches the footprint-learning window of Eq. (1).
    pub metric_window_s: u64,
    /// Seed for all stochastic choices, making runs reproducible.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterSpec::default(),
            overload: OverloadModel::default(),
            metric_window_s: 5,
            seed: 42,
        }
    }
}

/// Outcome of a single simulated API request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The API endpoint invoked.
    pub api: String,
    /// Arrival time in microseconds.
    pub at_us: Micros,
    /// End-to-end latency in milliseconds (None if the request failed).
    pub latency_ms: Option<f64>,
}

impl RequestOutcome {
    /// Whether the request failed due to overload.
    pub fn failed(&self) -> bool {
        self.latency_ms.is_none()
    }
}

/// Per-API latency summary, built once when the report is constructed so
/// that repeated latency queries don't rescan (and re-sort) the outcome
/// list.
#[derive(Debug, Clone, Default)]
struct ApiLatencySummary {
    /// Successful latencies, ascending (empty if every request failed).
    sorted_ms: Vec<f64>,
    /// Sum of the successful latencies.
    sum_ms: f64,
}

/// Summary of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// One outcome per scheduled request, in arrival order. Treat as
    /// read-only: the per-API latency index serving the query methods is
    /// built once at construction.
    pub outcomes: Vec<RequestOutcome>,
    /// On-prem CPU utilization per metric window.
    pub onprem_utilization: Vec<f64>,
    /// Cloud CPU demand (cores) per metric window.
    pub cloud_demand_cores: Vec<f64>,
    /// Per-API latency index (one entry per API seen, even if all of its
    /// requests failed).
    api_index: HashMap<String, ApiLatencySummary>,
}

impl SimReport {
    /// Assemble a report, building the per-API latency index that
    /// [`Self::api_mean_latency_ms`], [`Self::api_latency_percentile_ms`]
    /// and [`Self::apis`] answer from.
    pub fn new(
        outcomes: Vec<RequestOutcome>,
        onprem_utilization: Vec<f64>,
        cloud_demand_cores: Vec<f64>,
    ) -> Self {
        let mut api_index: HashMap<String, ApiLatencySummary> = HashMap::new();
        for outcome in &outcomes {
            let entry = api_index.entry(outcome.api.clone()).or_default();
            if let Some(latency) = outcome.latency_ms {
                entry.sorted_ms.push(latency);
                entry.sum_ms += latency;
            }
        }
        for summary in api_index.values_mut() {
            summary
                .sorted_ms
                .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        }
        Self {
            outcomes,
            onprem_utilization,
            cloud_demand_cores,
            api_index,
        }
    }

    /// Number of failed requests.
    pub fn failed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.failed()).count()
    }

    /// Number of successful requests.
    pub fn success_count(&self) -> usize {
        self.outcomes.len() - self.failed_count()
    }

    /// Mean end-to-end latency of an API in milliseconds (successful
    /// requests only); `None` if the API saw no successful request.
    pub fn api_mean_latency_ms(&self, api: &str) -> Option<f64> {
        let summary = self.api_index.get(api)?;
        if summary.sorted_ms.is_empty() {
            None
        } else {
            Some(summary.sum_ms / summary.sorted_ms.len() as f64)
        }
    }

    /// Latency percentile (0.0–1.0) for an API in milliseconds, using the
    /// ceil-based nearest-rank convention: the reported order statistic is
    /// the smallest sample ≥ the requested fraction of the distribution
    /// (`rank = ⌈q · n⌉`). Rounding the rank instead can select a statistic
    /// *below* the requested quantile on small samples (e.g. the p90 of 9
    /// samples would come out as the 8th, which only covers 88.9 %).
    pub fn api_latency_percentile_ms(&self, api: &str, q: f64) -> Option<f64> {
        let summary = self.api_index.get(api)?;
        let n = summary.sorted_ms.len();
        if n == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as usize;
        Some(summary.sorted_ms[rank.min(n) - 1])
    }

    /// All distinct APIs that appear in the outcomes.
    pub fn apis(&self) -> Vec<String> {
        let mut v: Vec<String> = self.api_index.keys().cloned().collect();
        v.sort();
        v
    }

    /// Peak on-prem utilization across windows.
    pub fn peak_onprem_utilization(&self) -> f64 {
        self.onprem_utilization.iter().copied().fold(0.0, f64::max)
    }
}

/// Expected CPU microseconds each component spends per request of each API
/// (mean of the call-tree compute times). Used for the open-loop utilization
/// estimate that drives the overload model.
fn expected_compute_per_api(topology: &AppTopology) -> HashMap<String, Vec<f64>> {
    let mut out = HashMap::new();
    for api in topology.apis() {
        let mut per_component = vec![0.0f64; topology.component_count()];
        accumulate_compute(&api.root, &mut per_component);
        out.insert(api.endpoint.clone(), per_component);
    }
    out
}

fn accumulate_compute(node: &CallNode, acc: &mut [f64]) {
    acc[node.component.0] += node.compute.mean_us;
    for stage in &node.stages {
        for edge in stage {
            accumulate_compute(&edge.child, acc);
        }
    }
    for edge in &node.background {
        accumulate_compute(&edge.child, acc);
    }
}

/// The simulator: owns the application model, the placement under test and
/// the run configuration.
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: AppTopology,
    placement: Placement,
    config: SimConfig,
    /// Per-ordered-pair link model; defaults to the two-site matrix of the
    /// cluster's [`NetworkModel`](crate::cluster::NetworkModel), so binary
    /// placements simulate exactly as before.
    sites: SiteNetwork,
}

impl Simulator {
    /// Create a simulator for a topology under a placement.
    ///
    /// # Panics
    ///
    /// Panics if the placement does not cover exactly the topology's
    /// components.
    pub fn new(topology: AppTopology, placement: Placement, config: SimConfig) -> Self {
        assert_eq!(
            placement.len(),
            topology.component_count(),
            "placement must cover every component"
        );
        let sites = SiteNetwork::two_site(config.cluster.network);
        Self {
            topology,
            placement,
            config,
            sites,
        }
    }

    /// Replace the link model with an N-site matrix (builder style), so
    /// multi-region placements pay each ordered pair's own latency and
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the placement names a site outside the matrix.
    pub fn with_site_network(mut self, sites: SiteNetwork) -> Self {
        assert!(
            self.placement
                .sites()
                .iter()
                .all(|s| s.index() < sites.site_count()),
            "placement names a site outside the link matrix"
        );
        self.sites = sites;
        self
    }

    /// The application under simulation.
    pub fn topology(&self) -> &AppTopology {
        &self.topology
    }

    /// The placement under test.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Replace the placement (e.g. after executing a migration plan).
    pub fn set_placement(&mut self, placement: Placement) {
        assert_eq!(placement.len(), self.topology.component_count());
        self.placement = placement;
    }

    /// Run a request schedule, ingesting telemetry into `store`, and return
    /// the per-request outcomes.
    pub fn run(&self, schedule: &RequestSchedule, store: &TelemetryStore) -> SimReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut ids = IdGenerator::new();
        let window_us = self.config.metric_window_s * 1_000_000;
        let window_count = schedule
            .duration_s()
            .div_ceil(self.config.metric_window_s)
            .max(1) as usize;

        // ------------------------------------------------------------------
        // Pass 1: open-loop utilization estimate per window per location.
        // ------------------------------------------------------------------
        let per_api_compute = expected_compute_per_api(&self.topology);
        let mut onprem_busy_us = vec![0.0f64; window_count];
        let mut cloud_busy_us = vec![0.0f64; window_count];
        for req in schedule.requests() {
            let Some(compute) = per_api_compute.get(&req.api) else {
                continue;
            };
            let w = (req.at_us / window_us) as usize;
            if w >= window_count {
                continue;
            }
            for (i, us) in compute.iter().enumerate() {
                if self.placement.site(ComponentId(i)).is_on_prem() {
                    onprem_busy_us[w] += us;
                } else {
                    cloud_busy_us[w] += us;
                }
            }
        }
        let onprem_base: f64 = self
            .topology
            .components()
            .iter()
            .enumerate()
            .filter(|(i, _)| self.placement.site(ComponentId(*i)).is_on_prem())
            .map(|(_, c)| c.base_cpu_cores)
            .sum();
        let capacity = self.config.cluster.onprem_cpu_cores.max(1e-9);
        let onprem_utilization: Vec<f64> = onprem_busy_us
            .iter()
            .map(|&busy| (onprem_base + busy / window_us as f64) / capacity)
            .collect();
        let cloud_demand_cores: Vec<f64> = cloud_busy_us
            .iter()
            .map(|&busy| busy / window_us as f64)
            .collect();

        // ------------------------------------------------------------------
        // Pass 2: execute requests with inflation + failures, emit telemetry.
        // ------------------------------------------------------------------
        let mut outcomes = Vec::with_capacity(schedule.len());
        let mut busy_us_per_component: Vec<Vec<f64>> =
            vec![vec![0.0; window_count]; self.topology.component_count()];
        let mut requests_per_component: Vec<Vec<u64>> =
            vec![vec![0; window_count]; self.topology.component_count()];
        // Traffic and per-component network I/O are accumulated locally and
        // flushed to the store in time order afterwards, because in-flight
        // requests can emit samples with interleaved timestamps.
        let mut traffic_acc: HashMap<(usize, usize), std::collections::BTreeMap<u64, (f64, f64)>> =
            HashMap::new();
        let mut netio_acc: HashMap<usize, std::collections::BTreeMap<u64, (f64, f64)>> =
            HashMap::new();

        for req in schedule.requests() {
            let Some(api) = self.topology.api(&req.api) else {
                outcomes.push(RequestOutcome {
                    api: req.api.clone(),
                    at_us: req.at_us,
                    latency_ms: None,
                });
                continue;
            };
            let w = ((req.at_us / window_us) as usize).min(window_count - 1);
            let utilization = onprem_utilization[w];
            let failure_p = self.config.overload.failure_probability(utilization);
            if failure_p > 0.0 && rng.gen::<f64>() < failure_p {
                outcomes.push(RequestOutcome {
                    api: req.api.clone(),
                    at_us: req.at_us,
                    latency_ms: None,
                });
                continue;
            }
            let inflation = self.config.overload.inflation(utilization);

            let trace_id = ids.next_trace_id();
            let mut ctx = ExecContext {
                sim: self,
                rng: &mut rng,
                ids: &mut ids,
                spans: Vec::new(),
                busy: &mut busy_us_per_component,
                requests: &mut requests_per_component,
                traffic: &mut traffic_acc,
                netio: &mut netio_acc,
                window_us,
                window_count,
                inflation_onprem: inflation,
                trace_id,
            };
            let root_end = ctx.exec_node(&api.root, None, req.at_us);
            let spans = ctx.spans;
            let latency_us = root_end.saturating_sub(req.at_us);
            let trace = Trace::from_spans(spans).expect("engine emits well-formed traces");
            store.ingest_trace(trace);
            outcomes.push(RequestOutcome {
                api: req.api.clone(),
                at_us: req.at_us,
                latency_ms: Some(latency_us as f64 / 1_000.0),
            });
        }

        // ------------------------------------------------------------------
        // Pass 3: flush the accumulated traffic and network I/O in time
        // order, then the per-window component metrics.
        // ------------------------------------------------------------------
        let mut traffic_edges: Vec<_> = traffic_acc.into_iter().collect();
        traffic_edges.sort_by_key(|((a, b), _)| (*a, *b));
        for ((from, to), samples) in traffic_edges {
            let from_name = self.topology.component_name(ComponentId(from));
            let to_name = self.topology.component_name(ComponentId(to));
            for (t_s, (req, resp)) in samples {
                store.record_traffic(from_name, to_name, Direction::Request, t_s, req);
                store.record_traffic(from_name, to_name, Direction::Response, t_s, resp);
            }
        }
        let mut netio: Vec<_> = netio_acc.into_iter().collect();
        netio.sort_by_key(|(c, _)| *c);
        for (c, samples) in netio {
            let name = self.topology.component_name(ComponentId(c));
            for (t_s, (ingress, egress)) in samples {
                store.record_metric(name, MetricKind::IngressBytes, t_s, ingress);
                store.record_metric(name, MetricKind::EgressBytes, t_s, egress);
            }
        }
        for (i, comp) in self.topology.components().iter().enumerate() {
            for w in 0..window_count {
                let t_s = w as u64 * self.config.metric_window_s;
                let cpu = comp.base_cpu_cores + busy_us_per_component[i][w] / window_us as f64;
                let mem = comp.base_memory_gb
                    + comp.memory_per_request_gb * requests_per_component[i][w] as f64;
                store.record_metric(&comp.name, MetricKind::CpuCores, t_s, cpu);
                store.record_metric(&comp.name, MetricKind::MemoryGb, t_s, mem);
                if comp.stateful {
                    store.record_metric(&comp.name, MetricKind::StorageGb, t_s, comp.storage_gb);
                }
            }
        }

        SimReport::new(outcomes, onprem_utilization, cloud_demand_cores)
    }

    /// Execute a single request at time zero with no overload, returning its
    /// trace. Useful in tests and for generating reference traces.
    pub fn execute_single(&self, api: &str, seed: u64) -> Option<Trace> {
        let store = TelemetryStore::new();
        let mut schedule = RequestSchedule::new();
        schedule.push(0, api);
        let mut config = self.config.clone();
        config.overload = OverloadModel::disabled();
        config.seed = seed;
        let sim = Simulator::new(self.topology.clone(), self.placement.clone(), config);
        let report = sim.run(&schedule, &store);
        if report.outcomes.first()?.failed() {
            return None;
        }
        store.traces_for_api(api).into_iter().next()
    }
}

/// Mutable state threaded through the recursive call-tree walk of one
/// request.
struct ExecContext<'a> {
    sim: &'a Simulator,
    rng: &'a mut StdRng,
    ids: &'a mut IdGenerator,
    spans: Vec<Span>,
    busy: &'a mut Vec<Vec<f64>>,
    requests: &'a mut Vec<Vec<u64>>,
    traffic: &'a mut HashMap<(usize, usize), std::collections::BTreeMap<u64, (f64, f64)>>,
    netio: &'a mut HashMap<usize, std::collections::BTreeMap<u64, (f64, f64)>>,
    window_us: u64,
    window_count: usize,
    inflation_onprem: f64,
    trace_id: atlas_telemetry::TraceId,
}

impl ExecContext<'_> {
    fn window(&self, at_us: Micros) -> usize {
        ((at_us / self.window_us) as usize).min(self.window_count - 1)
    }

    fn site(&self, c: ComponentId) -> SiteId {
        self.sim.placement.site(c)
    }

    fn inflation_for(&self, c: ComponentId) -> f64 {
        if self.site(c).is_on_prem() {
            self.inflation_onprem
        } else {
            // Elastic-site autoscaling keeps utilization below the knee.
            1.0
        }
    }

    /// Execute a call-tree node starting at `start_us`; returns the time the
    /// node's foreground work completes (i.e. when its response is ready).
    fn exec_node(&mut self, node: &CallNode, parent: Option<SpanId>, start_us: Micros) -> Micros {
        let span_id = self.ids.next_span_id();
        let compute_us = node.compute.sample(self.rng) * self.inflation_for(node.component);
        let slices = (node.stages.len() + 1) as f64;
        let slice_us = compute_us / slices;

        // Book-keep resource usage for the metrics pass.
        let w = self.window(start_us);
        self.busy[node.component.0][w] += compute_us;
        self.requests[node.component.0][w] += 1;

        let mut t = start_us + slice_us.round() as Micros;
        let parent_site = self.site(node.component);

        for stage in &node.stages {
            let mut stage_end = t;
            for edge in stage {
                let child_site = self.site(edge.child.component);
                let req_bytes = edge.request.sample(self.rng);
                let resp_bytes = edge.response.sample(self.rng);
                self.record_traffic(
                    node.component,
                    edge.child.component,
                    req_bytes,
                    resp_bytes,
                    t,
                );
                let net = &self.sim.sites;
                let child_start =
                    t + net.transfer_us(parent_site, child_site, req_bytes).round() as Micros;
                let child_end = self.exec_node(&edge.child, Some(span_id), child_start);
                let response_arrives = child_end
                    + net.transfer_us(child_site, parent_site, resp_bytes).round() as Micros;
                stage_end = stage_end.max(response_arrives);
            }
            t = stage_end + slice_us.round() as Micros;
        }

        // Background dispatches: the parent pays only a small dispatch cost,
        // the child's execution proceeds concurrently.
        for edge in &node.background {
            let child_site = self.site(edge.child.component);
            let req_bytes = edge.request.sample(self.rng);
            let resp_bytes = edge.response.sample(self.rng);
            self.record_traffic(
                node.component,
                edge.child.component,
                req_bytes,
                resp_bytes,
                t,
            );
            let net = &self.sim.sites;
            let dispatch_us = (compute_us * 0.05).max(20.0).round() as Micros;
            let child_start =
                t + net.transfer_us(parent_site, child_site, req_bytes).round() as Micros;
            let _ = self.exec_node(&edge.child, Some(span_id), child_start);
            debug_assert_eq!(edge.mode, CallMode::Background);
            let _ = resp_bytes;
            t += dispatch_us;
        }

        let duration = t.saturating_sub(start_us).max(1);
        self.spans.push(Span::new(
            self.trace_id,
            span_id,
            parent,
            self.sim.topology.component_name(node.component),
            &node.operation,
            start_us,
            duration,
        ));
        t
    }

    fn record_traffic(
        &mut self,
        from: ComponentId,
        to: ComponentId,
        req_bytes: f64,
        resp_bytes: f64,
        at_us: Micros,
    ) {
        let t_s = at_us / 1_000_000;
        let e = self
            .traffic
            .entry((from.0, to.0))
            .or_default()
            .entry(t_s)
            .or_insert((0.0, 0.0));
        e.0 += req_bytes;
        e.1 += resp_bytes;
        // Ingress/egress component metrics mirror what cAdvisor would report:
        // the caller sends the request (egress) and receives the response
        // (ingress); the callee sees the reverse.
        let caller = self
            .netio
            .entry(from.0)
            .or_default()
            .entry(t_s)
            .or_insert((0.0, 0.0));
        caller.0 += resp_bytes;
        caller.1 += req_bytes;
        let callee = self
            .netio
            .entry(to.0)
            .or_default()
            .entry(t_s)
            .or_insert((0.0, 0.0));
        callee.0 += req_bytes;
        callee.1 += resp_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calltree::{CallEdge, SizeDist, TimeDist};
    use crate::component::ComponentSpec;
    use crate::topology::ApiSpec;

    /// Frontend -> {UrlShorten || Media} -> PostStorage -> (bg) HomeTimeline,
    /// mirroring paper Figure 6.
    fn figure6_app() -> AppTopology {
        let components = vec![
            ComponentSpec::stateless("FrontendNGINX", 0.2, 0.5),
            ComponentSpec::stateless("URLShortenService", 0.1, 0.25),
            ComponentSpec::stateless("MediaService", 0.1, 0.25),
            ComponentSpec::stateful("PostStorageService", 0.15, 1.0, 10.0),
            ComponentSpec::stateless("WriteHomeTimelineService", 0.1, 0.25),
        ];
        let url = CallNode::leaf(ComponentId(1), "shorten", TimeDist::constant(2_000.0));
        let media = CallNode::leaf(ComponentId(2), "filter", TimeDist::constant(3_000.0));
        let post = CallNode::leaf(ComponentId(3), "store", TimeDist::constant(2_500.0));
        let wht = CallNode::leaf(ComponentId(4), "fanout", TimeDist::constant(8_000.0));
        let root = CallNode::leaf(ComponentId(0), "/composeAPI", TimeDist::constant(1_500.0))
            .with_stage(vec![
                CallEdge::sync(url, SizeDist::constant(300.0), SizeDist::constant(60.0)),
                CallEdge::sync(
                    media,
                    SizeDist::constant(5_000.0),
                    SizeDist::constant(100.0),
                ),
            ])
            .with_stage(vec![CallEdge::sync(
                post,
                SizeDist::constant(1_200.0),
                SizeDist::constant(80.0),
            )])
            .with_background(CallEdge::background(
                wht,
                SizeDist::constant(900.0),
                SizeDist::constant(0.0),
            ));
        AppTopology::new(
            "figure6",
            components,
            vec![ApiSpec::new("/composeAPI", root)],
        )
        .unwrap()
    }

    fn quiet_config() -> SimConfig {
        SimConfig {
            cluster: ClusterSpec::small(64.0),
            overload: OverloadModel::disabled(),
            metric_window_s: 5,
            seed: 1,
        }
    }

    #[test]
    fn single_request_produces_wellformed_trace() {
        let app = figure6_app();
        let sim = Simulator::new(app.clone(), Placement::all_onprem(5), quiet_config());
        let trace = sim.execute_single("/composeAPI", 3).unwrap();
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.api(), "/composeAPI");
        assert_eq!(trace.root().component, "FrontendNGINX");
        // Background fan-out must outlive the root.
        let wht_idx = trace
            .nodes
            .iter()
            .position(|n| n.span.component == "WriteHomeTimelineService")
            .unwrap();
        assert!(trace.is_background(wht_idx));
    }

    #[test]
    fn offloading_a_foreground_component_increases_latency() {
        let app = figure6_app();
        let onprem = Simulator::new(app.clone(), Placement::all_onprem(5), quiet_config());
        let base = onprem
            .execute_single("/composeAPI", 7)
            .unwrap()
            .end_to_end_latency_us();

        // Offload PostStorageService (sequential, foreground) → latency grows
        // by roughly one inter-DC round trip (~46 ms).
        let offload_post = Placement::all_onprem(5).with_cloud(ComponentId(3));
        let slower = Simulator::new(app.clone(), offload_post, quiet_config())
            .execute_single("/composeAPI", 7)
            .unwrap()
            .end_to_end_latency_us();
        assert!(
            slower as f64 > base as f64 + 40_000.0,
            "offloading a sequential dependency must add an inter-DC round trip: {base} -> {slower}"
        );
    }

    #[test]
    fn offloading_a_background_component_barely_affects_latency() {
        let app = figure6_app();
        let base = Simulator::new(app.clone(), Placement::all_onprem(5), quiet_config())
            .execute_single("/composeAPI", 11)
            .unwrap()
            .end_to_end_latency_us();
        let offload_bg = Placement::all_onprem(5).with_cloud(ComponentId(4));
        let after = Simulator::new(app, offload_bg, quiet_config())
            .execute_single("/composeAPI", 11)
            .unwrap()
            .end_to_end_latency_us();
        let diff_ms = (after as f64 - base as f64).abs() / 1_000.0;
        assert!(
            diff_ms < 5.0,
            "background offload should not add a foreground round trip (diff {diff_ms} ms)"
        );
    }

    #[test]
    fn run_schedule_emits_metrics_traffic_and_traces() {
        let app = figure6_app();
        let sim = Simulator::new(app, Placement::all_onprem(5), quiet_config());
        let mut schedule = RequestSchedule::new();
        for i in 0..50u64 {
            schedule.push(i * 200_000, "/composeAPI");
        }
        let store = TelemetryStore::new();
        let report = sim.run(&schedule, &store);
        assert_eq!(report.outcomes.len(), 50);
        assert_eq!(report.failed_count(), 0);
        assert_eq!(store.trace_count(), 50);
        assert!(store.metric_mean("FrontendNGINX", MetricKind::CpuCores) > 0.0);
        assert!(!store.traffic_edges().is_empty());
        assert!(report.api_mean_latency_ms("/composeAPI").unwrap() > 0.0);
        assert!(
            report
                .api_latency_percentile_ms("/composeAPI", 0.99)
                .unwrap()
                > 0.0
        );
        assert_eq!(report.apis(), vec!["/composeAPI"]);
    }

    /// The index built at construction must answer exactly what a full
    /// rescan of the outcome list would, including all-failed APIs.
    #[test]
    fn latency_index_matches_a_full_outcome_rescan() {
        let outcomes = vec![
            RequestOutcome {
                api: "/a".to_string(),
                at_us: 0,
                latency_ms: Some(30.0),
            },
            RequestOutcome {
                api: "/b".to_string(),
                at_us: 10,
                latency_ms: Some(5.0),
            },
            RequestOutcome {
                api: "/a".to_string(),
                at_us: 20,
                latency_ms: Some(10.0),
            },
            RequestOutcome {
                api: "/a".to_string(),
                at_us: 30,
                latency_ms: None, // failed request: excluded from latencies
            },
            RequestOutcome {
                api: "/dead".to_string(),
                at_us: 40,
                latency_ms: None, // an API whose every request failed
            },
        ];
        let report = SimReport::new(outcomes, vec![0.5], vec![0.0]);
        assert_eq!(report.api_mean_latency_ms("/a"), Some(20.0));
        assert_eq!(report.api_mean_latency_ms("/b"), Some(5.0));
        assert_eq!(report.api_mean_latency_ms("/dead"), None);
        assert_eq!(report.api_mean_latency_ms("/missing"), None);
        assert_eq!(report.api_latency_percentile_ms("/a", 0.0), Some(10.0));
        assert_eq!(report.api_latency_percentile_ms("/a", 1.0), Some(30.0));
        assert_eq!(report.api_latency_percentile_ms("/dead", 0.5), None);
        // All-failed APIs still show up in the API listing.
        assert_eq!(report.apis(), vec!["/a", "/b", "/dead"]);
        assert_eq!(report.failed_count(), 2);
        assert_eq!(report.success_count(), 3);
    }

    /// Regression test: pin the ceil-based nearest-rank convention on fixed
    /// small sample sets. The previous `.round()`-based rank picked an order
    /// statistic *below* the requested quantile on several of these (p90 of
    /// 9 samples returned the 8th; p50 of 4 samples returned the 3rd).
    #[test]
    fn percentiles_use_ceil_based_nearest_rank() {
        let report_for = |latencies: &[f64]| {
            let outcomes = latencies
                .iter()
                .enumerate()
                .map(|(i, &l)| RequestOutcome {
                    api: "/x".to_string(),
                    at_us: i as u64,
                    latency_ms: Some(l),
                })
                .collect();
            SimReport::new(outcomes, vec![0.1], vec![0.0])
        };
        let p = |report: &SimReport, q: f64| report.api_latency_percentile_ms("/x", q).unwrap();

        // 9 samples: p90 → rank ⌈8.1⌉ = 9 → the maximum (round gave the 8th).
        let nine = report_for(&[10., 20., 30., 40., 50., 60., 70., 80., 90.]);
        assert_eq!(p(&nine, 0.9), 90.0);
        assert_eq!(p(&nine, 0.5), 50.0);
        assert_eq!(p(&nine, 0.99), 90.0);

        // 4 samples: p50 → rank ⌈2.0⌉ = 2, the lower median (round gave the 3rd).
        let four = report_for(&[10., 20., 30., 40.]);
        assert_eq!(p(&four, 0.5), 20.0);
        assert_eq!(p(&four, 0.9), 40.0);

        // 3 samples: the issue's example — p90 must be the maximum by
        // construction, not by luck of rounding.
        let three = report_for(&[5., 6., 7.]);
        assert_eq!(p(&three, 0.9), 7.0);
        assert_eq!(p(&three, 0.5), 6.0);
        assert_eq!(p(&three, 0.34), 6.0);

        // Boundary conventions are unchanged.
        assert_eq!(p(&three, 0.0), 5.0);
        assert_eq!(p(&three, 1.0), 7.0);
        let one = report_for(&[42.0]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(p(&one, q), 42.0);
        }
    }

    #[test]
    fn overload_inflates_latency_and_causes_failures() {
        let app = figure6_app();
        // A tiny on-prem cluster that cannot absorb the offered load.
        let config = SimConfig {
            cluster: ClusterSpec::small(1.0),
            overload: OverloadModel::default(),
            metric_window_s: 5,
            seed: 5,
        };
        let sim = Simulator::new(app.clone(), Placement::all_onprem(5), config);
        let mut schedule = RequestSchedule::new();
        for i in 0..400u64 {
            schedule.push(i * 20_000, "/composeAPI");
        }
        let store = TelemetryStore::new();
        let report = sim.run(&schedule, &store);
        assert!(report.peak_onprem_utilization() > 1.0);
        assert!(
            report.failed_count() > 0,
            "saturation should cause failures"
        );

        // The same workload on a large cluster is faster and fully succeeds.
        let relaxed = Simulator::new(app, Placement::all_onprem(5), quiet_config());
        let store2 = TelemetryStore::new();
        let relaxed_report = relaxed.run(&schedule, &store2);
        assert_eq!(relaxed_report.failed_count(), 0);
        assert!(
            relaxed_report.api_mean_latency_ms("/composeAPI").unwrap()
                < report.api_mean_latency_ms("/composeAPI").unwrap()
        );
    }

    #[test]
    fn unknown_api_requests_fail_gracefully() {
        let app = figure6_app();
        let sim = Simulator::new(app, Placement::all_onprem(5), quiet_config());
        let mut schedule = RequestSchedule::new();
        schedule.push(0, "/doesNotExist");
        let store = TelemetryStore::new();
        let report = sim.run(&schedule, &store);
        assert_eq!(report.failed_count(), 1);
        assert_eq!(store.trace_count(), 0);
    }

    #[test]
    #[should_panic(expected = "placement must cover every component")]
    fn mismatched_placement_panics() {
        let app = figure6_app();
        let _ = Simulator::new(app, Placement::all_onprem(3), quiet_config());
    }

    #[test]
    fn deterministic_given_same_seed() {
        let app = figure6_app();
        let sim = Simulator::new(app, Placement::all_onprem(5), quiet_config());
        let mut schedule = RequestSchedule::new();
        for i in 0..20u64 {
            schedule.push(i * 100_000, "/composeAPI");
        }
        let (s1, s2) = (TelemetryStore::new(), TelemetryStore::new());
        let r1 = sim.run(&schedule, &s1);
        let r2 = sim.run(&schedule, &s2);
        assert_eq!(r1.outcomes, r2.outcomes);
        assert_eq!(
            s1.api_latencies_ms("/composeAPI"),
            s2.api_latencies_ms("/composeAPI")
        );
    }
}
