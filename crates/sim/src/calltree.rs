//! Call trees: how an API request fans out across components.
//!
//! Each user-facing API is described by a tree of [`CallNode`]s. A node is
//! one operation executed on one component; its children are grouped into
//! sequential *stages*, the calls inside a stage run in parallel, and an
//! extra set of *background* calls is fired right before the node returns.
//! This directly encodes the three execution-workflow patterns of paper
//! §4.1.1 (parallel, sequential, background) so that the simulator emits
//! traces with the same structure Jaeger would record.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::component::ComponentId;

/// A service-time distribution in microseconds.
///
/// Sampled as a mean plus uniform multiplicative jitter, which is enough to
/// obtain realistic latency histograms (e.g. Figure 7) without pulling in a
/// statistics crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeDist {
    /// Mean duration in microseconds.
    pub mean_us: f64,
    /// Relative jitter: samples fall in `mean * [1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl TimeDist {
    /// A distribution with the given mean and 20 % jitter.
    pub fn new(mean_us: f64) -> Self {
        Self {
            mean_us,
            jitter: 0.2,
        }
    }

    /// A distribution with explicit jitter (clamped to `[0, 0.95]`).
    pub fn with_jitter(mean_us: f64, jitter: f64) -> Self {
        Self {
            mean_us,
            jitter: jitter.clamp(0.0, 0.95),
        }
    }

    /// A deterministic (zero-jitter) distribution.
    pub fn constant(mean_us: f64) -> Self {
        Self {
            mean_us,
            jitter: 0.0,
        }
    }

    /// Draw a sample in microseconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.jitter <= 0.0 {
            return self.mean_us.max(0.0);
        }
        let factor = 1.0 + rng.gen_range(-self.jitter..=self.jitter);
        (self.mean_us * factor).max(0.0)
    }
}

/// A payload-size distribution in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeDist {
    /// Mean size in bytes.
    pub mean_bytes: f64,
    /// Relative jitter: samples fall in `mean * [1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl SizeDist {
    /// A distribution with the given mean and 10 % jitter.
    pub fn new(mean_bytes: f64) -> Self {
        Self {
            mean_bytes,
            jitter: 0.1,
        }
    }

    /// A deterministic (zero-jitter) size.
    pub fn constant(mean_bytes: f64) -> Self {
        Self {
            mean_bytes,
            jitter: 0.0,
        }
    }

    /// A distribution with explicit jitter (clamped to `[0, 0.95]`).
    pub fn with_jitter(mean_bytes: f64, jitter: f64) -> Self {
        Self {
            mean_bytes,
            jitter: jitter.clamp(0.0, 0.95),
        }
    }

    /// Draw a sample in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.jitter <= 0.0 {
            return self.mean_bytes.max(0.0);
        }
        let factor = 1.0 + rng.gen_range(-self.jitter..=self.jitter);
        (self.mean_bytes * factor).max(0.0)
    }

    /// Scale the mean size by a factor (used to model behaviour drift, e.g.
    /// larger `/homeTimeline` responses as the application grows, §4.3).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            mean_bytes: self.mean_bytes * factor,
            jitter: self.jitter,
        }
    }
}

/// Whether a child call blocks its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallMode {
    /// The parent waits for the child to complete (foreground).
    Sync,
    /// The parent only pays a dispatch cost; the child completes on its own
    /// (e.g. `WriteHomeTimelineService` fan-out in Figure 6).
    Background,
}

/// An edge in the call tree: the parent invokes `child` transferring
/// `request` bytes and receiving `response` bytes back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallEdge {
    /// The invoked child operation.
    pub child: CallNode,
    /// Request payload size (caller → callee).
    pub request: SizeDist,
    /// Response payload size (callee → caller).
    pub response: SizeDist,
    /// Foreground or background invocation.
    pub mode: CallMode,
}

impl CallEdge {
    /// A synchronous (foreground) edge.
    pub fn sync(child: CallNode, request: SizeDist, response: SizeDist) -> Self {
        Self {
            child,
            request,
            response,
            mode: CallMode::Sync,
        }
    }

    /// A background edge.
    pub fn background(child: CallNode, request: SizeDist, response: SizeDist) -> Self {
        Self {
            child,
            request,
            response,
            mode: CallMode::Background,
        }
    }
}

/// One operation of the call tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallNode {
    /// Component executing the operation.
    pub component: ComponentId,
    /// Operation name recorded in the span.
    pub operation: String,
    /// Compute time spent by this operation itself (excluding children).
    pub compute: TimeDist,
    /// Sequential stages; the edges inside one stage run in parallel.
    pub stages: Vec<Vec<CallEdge>>,
    /// Background invocations fired right before the operation returns.
    pub background: Vec<CallEdge>,
}

impl CallNode {
    /// A leaf operation with no downstream calls.
    pub fn leaf(component: ComponentId, operation: impl Into<String>, compute: TimeDist) -> Self {
        Self {
            component,
            operation: operation.into(),
            compute,
            stages: Vec::new(),
            background: Vec::new(),
        }
    }

    /// Builder: append a sequential stage of parallel edges.
    pub fn with_stage(mut self, edges: Vec<CallEdge>) -> Self {
        self.stages.push(edges);
        self
    }

    /// Builder: append a background edge.
    pub fn with_background(mut self, edge: CallEdge) -> Self {
        self.background.push(edge);
        self
    }

    /// All components reachable from this node (including itself), with
    /// duplicates removed, in discovery order.
    pub fn reachable_components(&self) -> Vec<ComponentId> {
        let mut out = Vec::new();
        self.collect_components(&mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|c| seen.insert(*c));
        out
    }

    fn collect_components(&self, out: &mut Vec<ComponentId>) {
        out.push(self.component);
        for stage in &self.stages {
            for edge in stage {
                edge.child.collect_components(out);
            }
        }
        for edge in &self.background {
            edge.child.collect_components(out);
        }
    }

    /// Total number of operations (nodes) in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .stages
            .iter()
            .flatten()
            .chain(self.background.iter())
            .map(|e| e.child.node_count())
            .sum::<usize>()
    }

    /// Visit every edge (parent component, edge) in the subtree.
    pub fn visit_edges<'a>(&'a self, f: &mut impl FnMut(ComponentId, &'a CallEdge)) {
        for stage in &self.stages {
            for edge in stage {
                f(self.component, edge);
                edge.child.visit_edges(f);
            }
        }
        for edge in &self.background {
            f(self.component, edge);
            edge.child.visit_edges(f);
        }
    }

    /// Expected (mean) number of bytes transferred on the edge from this
    /// node's component to each directly-invoked child component.
    pub fn direct_edge_bytes(&self) -> Vec<(ComponentId, ComponentId, f64, f64)> {
        let mut out = Vec::new();
        for stage in &self.stages {
            for e in stage {
                out.push((
                    self.component,
                    e.child.component,
                    e.request.mean_bytes,
                    e.response.mean_bytes,
                ));
            }
        }
        for e in &self.background {
            out.push((
                self.component,
                e.child.component,
                e.request.mean_bytes,
                e.response.mean_bytes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn time_dist_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = TimeDist::with_jitter(1000.0, 0.2);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            assert!((800.0..=1200.0).contains(&s), "sample {s} out of bounds");
        }
        assert_eq!(TimeDist::constant(500.0).sample(&mut rng), 500.0);
    }

    #[test]
    fn size_dist_sampling_and_scaling() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::with_jitter(100.0, 0.1);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!((90.0..=110.0).contains(&s));
        }
        let scaled = d.scaled(3.0);
        assert_eq!(scaled.mean_bytes, 300.0);
        assert_eq!(scaled.jitter, d.jitter);
    }

    #[test]
    fn jitter_is_clamped() {
        assert_eq!(TimeDist::with_jitter(1.0, 2.0).jitter, 0.95);
        assert_eq!(SizeDist::with_jitter(1.0, -1.0).jitter, 0.0);
    }

    fn small_tree() -> CallNode {
        let db = CallNode::leaf(ComponentId(2), "find", TimeDist::constant(100.0));
        let svc =
            CallNode::leaf(ComponentId(1), "login", TimeDist::constant(200.0)).with_stage(vec![
                CallEdge::sync(db, SizeDist::constant(500.0), SizeDist::constant(100.0)),
            ]);
        CallNode::leaf(ComponentId(0), "/login", TimeDist::constant(300.0))
            .with_stage(vec![CallEdge::sync(
                svc,
                SizeDist::constant(250.0),
                SizeDist::constant(50.0),
            )])
            .with_background(CallEdge::background(
                CallNode::leaf(ComponentId(3), "audit", TimeDist::constant(50.0)),
                SizeDist::constant(10.0),
                SizeDist::constant(0.0),
            ))
    }

    #[test]
    fn reachable_components_and_node_count() {
        let tree = small_tree();
        assert_eq!(tree.node_count(), 4);
        let comps = tree.reachable_components();
        assert_eq!(
            comps,
            vec![
                ComponentId(0),
                ComponentId(1),
                ComponentId(2),
                ComponentId(3)
            ]
        );
    }

    #[test]
    fn visit_edges_covers_all_edges() {
        let tree = small_tree();
        let mut edges = Vec::new();
        tree.visit_edges(&mut |parent, e| edges.push((parent, e.child.component)));
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(ComponentId(0), ComponentId(1))));
        assert!(edges.contains(&(ComponentId(1), ComponentId(2))));
        assert!(edges.contains(&(ComponentId(0), ComponentId(3))));
    }

    #[test]
    fn direct_edge_bytes_only_lists_immediate_children() {
        let tree = small_tree();
        let edges = tree.direct_edge_bytes();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].0, ComponentId(0));
        assert_eq!(edges[0].1, ComponentId(1));
        assert_eq!(edges[0].2, 250.0);
        assert_eq!(edges[1].1, ComponentId(3));
    }
}
