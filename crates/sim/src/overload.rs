//! Overload model: what happens when on-prem demand exceeds capacity.
//!
//! The motivation for hybrid-cloud bursting (paper §1, Figure 2) is that an
//! inelastic on-prem cluster saturates during traffic peaks: requests queue,
//! latency spikes and some requests fail outright. The cloud side autoscales
//! (paper §3, "Elastic Microservices"), so it never saturates in our model.
//!
//! The model is intentionally simple — an M/M/1-style latency inflation plus
//! a failure probability above saturation — because Atlas itself never looks
//! at it; it only needs the simulator to reproduce the qualitative behaviour
//! that overloaded on-prem components get slow and flaky.

use serde::{Deserialize, Serialize};

/// Latency inflation and failure behaviour as a function of CPU utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadModel {
    /// Utilization below which no inflation is applied.
    pub knee_utilization: f64,
    /// Maximum latency-inflation factor applied as utilization approaches
    /// and exceeds 1.0.
    pub max_inflation: f64,
    /// Failure probability per request when utilization exceeds 1.0,
    /// proportional to the excess demand (capped at
    /// [`OverloadModel::max_failure_probability`]).
    pub failure_per_excess: f64,
    /// Upper bound on the per-request failure probability.
    pub max_failure_probability: f64,
}

impl Default for OverloadModel {
    fn default() -> Self {
        Self {
            knee_utilization: 0.7,
            max_inflation: 12.0,
            failure_per_excess: 0.25,
            max_failure_probability: 0.5,
        }
    }
}

impl OverloadModel {
    /// A model that never inflates or fails (useful to isolate network
    /// effects in tests).
    pub fn disabled() -> Self {
        Self {
            knee_utilization: f64::INFINITY,
            max_inflation: 1.0,
            failure_per_excess: 0.0,
            max_failure_probability: 0.0,
        }
    }

    /// Multiplicative service-time inflation at the given CPU utilization.
    ///
    /// Below the knee the factor is exactly 1.0; above it the factor grows
    /// like an M/M/1 waiting curve `1 / (1 - u)` rescaled to start at the
    /// knee, and saturates at [`OverloadModel::max_inflation`].
    pub fn inflation(&self, utilization: f64) -> f64 {
        if !utilization.is_finite() || utilization <= self.knee_utilization {
            return 1.0;
        }
        // Normalize so that inflation(knee) == 1.0; beyond full saturation the
        // curve is pinned near u = 0.999 and the clamp takes over.
        let u = utilization.min(0.999);
        let base = 1.0 - self.knee_utilization.min(0.999);
        let factor = base / (1.0 - u);
        factor.clamp(1.0, self.max_inflation)
    }

    /// Per-request failure probability at the given CPU utilization.
    pub fn failure_probability(&self, utilization: f64) -> f64 {
        if !utilization.is_finite() || utilization <= 1.0 {
            return 0.0;
        }
        ((utilization - 1.0) * self.failure_per_excess).min(self.max_failure_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_inflation_below_knee() {
        let m = OverloadModel::default();
        assert_eq!(m.inflation(0.0), 1.0);
        assert_eq!(m.inflation(0.5), 1.0);
        assert_eq!(m.inflation(0.7), 1.0);
    }

    #[test]
    fn inflation_grows_with_utilization_and_saturates() {
        let m = OverloadModel::default();
        let a = m.inflation(0.8);
        let b = m.inflation(0.95);
        let c = m.inflation(1.5);
        let d = m.inflation(2.64); // the paper's peak 264 % utilization
        assert!(a > 1.0);
        assert!(b > a);
        assert!(c > 1.0);
        assert!(d <= m.max_inflation + 1e-9);
        assert!(m.inflation(10.0) <= m.max_inflation + 1e-9);
    }

    #[test]
    fn failure_probability_only_above_saturation() {
        let m = OverloadModel::default();
        assert_eq!(m.failure_probability(0.9), 0.0);
        assert_eq!(m.failure_probability(1.0), 0.0);
        assert!(m.failure_probability(1.5) > 0.0);
        assert!(m.failure_probability(5.0) <= m.max_failure_probability);
    }

    #[test]
    fn disabled_model_is_inert() {
        let m = OverloadModel::disabled();
        assert_eq!(m.inflation(2.0), 1.0);
        assert_eq!(m.failure_probability(3.0), 0.0);
    }

    #[test]
    fn inflation_handles_non_finite_utilization() {
        let m = OverloadModel::default();
        assert_eq!(m.inflation(f64::NAN), 1.0);
        assert_eq!(m.failure_probability(f64::NAN), 0.0);
    }
}
