//! Discrete-event microservice simulator: the testbed substrate for Atlas.
//!
//! The paper evaluates Atlas on DeathStarBench applications deployed on a
//! real hybrid Kubernetes cluster (CloudLab Wisconsin + Massachusetts). That
//! testbed is replaced here by a simulator that preserves exactly the
//! behaviour Atlas depends on:
//!
//! * applications are modeled as [`topology::AppTopology`]: a set of
//!   components plus, for every user-facing API, a *call tree* describing
//!   which components are invoked, in which order (sequential stages),
//!   which run in parallel within a stage, and which run in the background
//!   (paper §4.1.1, Figure 6);
//! * a hybrid [`cluster::ClusterSpec`] places each component either on-prem
//!   or in the cloud and a [`cluster::NetworkModel`] provides latency and
//!   bandwidth between the two locations (defaults match the paper's
//!   measured 0.168 ms / 941 Mbps intra and 23.015 ms / 921 Mbps inter);
//!   the N-site generalisation describes sites in a
//!   [`cluster::SiteCatalog`] (per-site capacity + pricing) over a
//!   [`cluster::SiteNetwork`] (per-ordered-pair links), with placements as
//!   vectors of [`cluster::SiteId`];
//! * the [`engine::Simulator`] executes API requests against a
//!   [`placement::Placement`], producing Jaeger-style traces, Istio-style
//!   pairwise traffic and cAdvisor-style component metrics into a
//!   [`atlas_telemetry::TelemetryStore`];
//! * an [`overload::OverloadModel`] inflates on-prem service times when CPU
//!   demand exceeds capacity, reproducing the latency spikes and failures of
//!   paper Figure 2.

#![deny(missing_docs)]

pub mod calltree;
pub mod cluster;
pub mod component;
pub mod engine;
pub mod overload;
pub mod placement;
pub mod schedule;
pub mod topology;

pub use calltree::{CallEdge, CallMode, CallNode, SizeDist, TimeDist};
pub use cluster::{
    ClusterSpec, LinkSpec, Location, NetworkModel, NodeSpec, OwnedSiteLimits, SiteCatalog, SiteId,
    SiteNetwork, SiteSpec,
};
pub use component::{ComponentId, ComponentSpec};
pub use engine::{RequestOutcome, SimConfig, SimReport, Simulator};
pub use overload::OverloadModel;
pub use placement::{Placement, PlacementError};
pub use schedule::{RequestSchedule, ScheduledRequest};
pub use topology::{ApiSpec, AppTopology};
