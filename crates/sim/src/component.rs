//! Component specifications: the containers that make up an application.

use serde::{Deserialize, Serialize};

/// Index of a component inside an [`crate::AppTopology`].
///
/// Components are referenced by dense indices so that a migration plan can
/// be represented as a flat vector of locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComponentId(pub usize);

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Static description of one application component (one container image).
///
/// The resource figures describe the *baseline* footprint of the component
/// plus its marginal per-request demand; the simulator combines them with the
/// workload to produce cAdvisor-style metric series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Human-readable name, e.g. `UserMongoDB`.
    pub name: String,
    /// Whether the component holds persistent state (databases, caches with
    /// durable storage). Stateful components require data transfer when
    /// migrated, which is what the availability model (paper Eq. 3) charges.
    pub stateful: bool,
    /// CPU cores consumed when completely idle.
    pub base_cpu_cores: f64,
    /// Memory footprint in GB (dominated by the base footprint).
    pub base_memory_gb: f64,
    /// Persistent storage in GB (zero for stateless components).
    pub storage_gb: f64,
    /// Additional memory consumed per in-flight request, in GB.
    pub memory_per_request_gb: f64,
}

impl ComponentSpec {
    /// A stateless service component with the given baseline footprint.
    pub fn stateless(name: impl Into<String>, base_cpu_cores: f64, base_memory_gb: f64) -> Self {
        Self {
            name: name.into(),
            stateful: false,
            base_cpu_cores,
            base_memory_gb,
            storage_gb: 0.0,
            memory_per_request_gb: 1.0e-5,
        }
    }

    /// A stateful component (database / durable cache) with persistent
    /// storage.
    pub fn stateful(
        name: impl Into<String>,
        base_cpu_cores: f64,
        base_memory_gb: f64,
        storage_gb: f64,
    ) -> Self {
        Self {
            name: name.into(),
            stateful: true,
            base_cpu_cores,
            base_memory_gb,
            storage_gb,
            memory_per_request_gb: 2.0e-5,
        }
    }

    /// Override the per-request memory demand (builder style).
    pub fn with_memory_per_request(mut self, gb: f64) -> Self {
        self.memory_per_request_gb = gb;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateless_components_have_no_storage() {
        let c = ComponentSpec::stateless("TextService", 0.1, 0.25);
        assert!(!c.stateful);
        assert_eq!(c.storage_gb, 0.0);
        assert_eq!(c.name, "TextService");
        assert_eq!(c.base_cpu_cores, 0.1);
    }

    #[test]
    fn stateful_components_carry_storage() {
        let c = ComponentSpec::stateful("UserMongoDB", 0.2, 1.0, 12.0);
        assert!(c.stateful);
        assert_eq!(c.storage_gb, 12.0);
    }

    #[test]
    fn builder_overrides_memory_per_request() {
        let c = ComponentSpec::stateless("A", 0.1, 0.1).with_memory_per_request(0.5);
        assert_eq!(c.memory_per_request_gb, 0.5);
    }

    #[test]
    fn component_id_display() {
        assert_eq!(ComponentId(3).to_string(), "c3");
    }
}
