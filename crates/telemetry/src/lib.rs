//! Telemetry substrate for Atlas.
//!
//! Atlas (EuroSys '24) is an observability-driven migration advisor: every
//! decision it makes is derived from three telemetry streams that are
//! standard in production microservice deployments (paper §3, Figure 4):
//!
//! 1. **Per-request distributed traces** (Jaeger-style) — a [`trace::Trace`]
//!    is a tree of [`span::Span`]s, one per operation executed on behalf of a
//!    single user-facing API request.
//! 2. **Component-focused resource metrics** (cAdvisor-style) — CPU, memory,
//!    storage, ingress and egress time series per component, modeled by
//!    [`metrics::ComponentMetrics`].
//! 3. **Pairwise network metrics** (Istio-style) — bytes transferred between
//!    every pair of components during requests and responses, modeled by
//!    [`network::PairwiseTraffic`].
//!
//! The [`store::TelemetryStore`] plays the role of the telemetry server
//! (Prometheus + Jaeger query service): the rest of the workspace only ever
//! *queries* it, mirroring the paper's non-intrusive design principle.

#![deny(missing_docs)]

pub mod arena;
pub mod metrics;
pub mod network;
pub mod span;
pub mod store;
pub mod trace;
pub mod window;

pub use arena::{NameInterner, TraceArena, TraceView, WeightedTrace};
pub use metrics::{ComponentMetrics, MetricKind, MetricPoint, MetricSeries};
pub use network::{Direction, PairKey, PairwiseTraffic, TrafficSample};
pub use span::{IdGenerator, Span, SpanId, TraceId};
pub use store::{IngestReport, TelemetryStore};
pub use trace::{SiblingRelation, Trace, TraceNode};
pub use window::{TimeWindow, Windowing};

/// Microseconds since the start of an observation epoch.
///
/// All span timestamps and durations in this workspace are expressed in
/// microseconds, matching the resolution used by Jaeger.
pub type Micros = u64;

/// Seconds since the start of an observation epoch (used for metric windows).
pub type Seconds = u64;

/// Convert microseconds to (floating-point) milliseconds.
#[inline]
pub fn us_to_ms(us: Micros) -> f64 {
    us as f64 / 1_000.0
}

/// Convert (floating-point) milliseconds to microseconds, saturating at zero.
#[inline]
pub fn ms_to_us(ms: f64) -> Micros {
    if ms <= 0.0 {
        0
    } else {
        (ms * 1_000.0).round() as Micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(us_to_ms(1_500), 1.5);
        assert_eq!(ms_to_us(1.5), 1_500);
        assert_eq!(ms_to_us(-3.0), 0);
        assert_eq!(ms_to_us(0.0), 0);
    }

    #[test]
    fn conversion_is_inverse_for_integral_milliseconds() {
        for ms in [0u64, 1, 10, 250, 100_000] {
            assert_eq!(us_to_ms(ms_to_us(ms as f64)) as u64, ms);
        }
    }
}
