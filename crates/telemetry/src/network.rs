//! Pairwise network metrics (Istio-style).
//!
//! Istio's sidecar proxies report, for every pair of communicating
//! components, how many bytes were transferred during requests and during
//! responses over time. Crucially this is *aggregated over all APIs* — the
//! whole point of Atlas's footprint-learning step (paper Eq. 1) is to
//! decompose these aggregates into per-API request/response sizes using the
//! invocation counts derived from traces.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::window::Windowing;
use crate::Seconds;

/// Direction of a data transfer on a caller→callee edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// Bytes flowing from the caller to the callee (the request payload).
    Request,
    /// Bytes flowing back from the callee to the caller (the response).
    Response,
}

/// A directed component pair: caller → callee.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairKey {
    /// Component initiating the communication.
    pub from: String,
    /// Component receiving the request.
    pub to: String,
}

impl PairKey {
    /// Create a pair key.
    pub fn new(from: impl Into<String>, to: impl Into<String>) -> Self {
        Self {
            from: from.into(),
            to: to.into(),
        }
    }
}

impl std::fmt::Display for PairKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.from, self.to)
    }
}

/// One aggregated observation: bytes transferred on an edge, in a direction,
/// within a time window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSample {
    /// Timestamp of the containing window start, in seconds.
    pub timestamp_s: Seconds,
    /// Bytes transferred during the window.
    pub bytes: f64,
}

/// Pairwise network traffic for the whole application.
///
/// Internally a map from (edge, direction) to a time series of byte counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PairwiseTraffic {
    samples: BTreeMap<(PairKey, Direction), Vec<TrafficSample>>,
}

impl PairwiseTraffic {
    /// Create an empty traffic record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record bytes transferred on `pair` in `direction` at `timestamp_s`.
    ///
    /// Multiple records with the same timestamp are accumulated, which is
    /// what a sidecar counter would report when several requests fall in the
    /// same scrape interval.
    pub fn record(
        &mut self,
        pair: PairKey,
        direction: Direction,
        timestamp_s: Seconds,
        bytes: f64,
    ) {
        let series = self.samples.entry((pair, direction)).or_default();
        if let Some(last) = series.last_mut() {
            assert!(
                timestamp_s >= last.timestamp_s,
                "traffic samples must be recorded in time order"
            );
            if last.timestamp_s == timestamp_s {
                last.bytes += bytes;
                return;
            }
        }
        series.push(TrafficSample { timestamp_s, bytes });
    }

    /// All directed edges with at least one sample.
    pub fn edges(&self) -> Vec<PairKey> {
        let mut v: Vec<PairKey> = self.samples.keys().map(|(k, _)| k.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Raw samples for an edge/direction, if any.
    pub fn samples(&self, pair: &PairKey, direction: Direction) -> Option<&[TrafficSample]> {
        self.samples
            .get(&(pair.clone(), direction))
            .map(Vec::as_slice)
    }

    /// Total bytes on an edge/direction over the whole observation period.
    pub fn total_bytes(&self, pair: &PairKey, direction: Direction) -> f64 {
        self.samples(pair, direction)
            .map_or(0.0, |s| s.iter().map(|x| x.bytes).sum())
    }

    /// Total bytes on an edge/direction restricted to `[start_s, end_s)`.
    pub fn total_bytes_in(
        &self,
        pair: &PairKey,
        direction: Direction,
        start_s: Seconds,
        end_s: Seconds,
    ) -> f64 {
        self.samples(pair, direction).map_or(0.0, |s| {
            s.iter()
                .filter(|x| x.timestamp_s >= start_s && x.timestamp_s < end_s)
                .map(|x| x.bytes)
                .sum()
        })
    }

    /// Total bytes in both directions on an edge (request + response).
    pub fn total_bytes_bidirectional(&self, pair: &PairKey) -> f64 {
        self.total_bytes(pair, Direction::Request) + self.total_bytes(pair, Direction::Response)
    }

    /// Aggregate the samples of an edge/direction onto fixed windows:
    /// `U^{req/resp}_{ci→cj}[t]` of paper Eq. (1). Returns one total per
    /// window index, covering `window_count` windows.
    pub fn windowed_bytes(
        &self,
        pair: &PairKey,
        direction: Direction,
        windowing: &Windowing,
        window_count: usize,
    ) -> Vec<f64> {
        let mut out = vec![0.0; window_count];
        if let Some(samples) = self.samples(pair, direction) {
            for s in samples {
                let idx = windowing.index_of_s(s.timestamp_s);
                if idx < window_count {
                    out[idx] += s.bytes;
                }
            }
        }
        out
    }

    /// Merge another traffic record into this one (used when combining
    /// telemetry from several simulation shards).
    pub fn merge(&mut self, other: &PairwiseTraffic) {
        for ((pair, dir), samples) in &other.samples {
            for s in samples {
                self.record(pair.clone(), *dir, s.timestamp_s, s.bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> PairKey {
        PairKey::new("FrontendNGINX", "UserService")
    }

    #[test]
    fn record_accumulates_same_timestamp() {
        let mut t = PairwiseTraffic::new();
        t.record(pair(), Direction::Request, 10, 100.0);
        t.record(pair(), Direction::Request, 10, 50.0);
        t.record(pair(), Direction::Request, 11, 25.0);
        let samples = t.samples(&pair(), Direction::Request).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].bytes, 150.0);
        assert_eq!(t.total_bytes(&pair(), Direction::Request), 175.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut t = PairwiseTraffic::new();
        t.record(pair(), Direction::Request, 10, 1.0);
        t.record(pair(), Direction::Request, 9, 1.0);
    }

    #[test]
    fn directions_are_independent() {
        let mut t = PairwiseTraffic::new();
        t.record(pair(), Direction::Request, 0, 10.0);
        t.record(pair(), Direction::Response, 0, 99.0);
        assert_eq!(t.total_bytes(&pair(), Direction::Request), 10.0);
        assert_eq!(t.total_bytes(&pair(), Direction::Response), 99.0);
        assert_eq!(t.total_bytes_bidirectional(&pair()), 109.0);
    }

    #[test]
    fn edges_are_unique_and_sorted() {
        let mut t = PairwiseTraffic::new();
        t.record(PairKey::new("B", "C"), Direction::Request, 0, 1.0);
        t.record(PairKey::new("A", "B"), Direction::Request, 0, 1.0);
        t.record(PairKey::new("A", "B"), Direction::Response, 0, 1.0);
        let edges = t.edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], PairKey::new("A", "B"));
        assert_eq!(edges[1], PairKey::new("B", "C"));
    }

    #[test]
    fn windowed_aggregation_matches_eq1_inputs() {
        let mut t = PairwiseTraffic::new();
        // Two samples in window 0 ([0,5)), one in window 2 ([10,15)).
        t.record(pair(), Direction::Request, 1, 100.0);
        t.record(pair(), Direction::Request, 4, 200.0);
        t.record(pair(), Direction::Request, 11, 300.0);
        let w = Windowing::new(0, 5);
        let windowed = t.windowed_bytes(&pair(), Direction::Request, &w, 4);
        assert_eq!(windowed, vec![300.0, 0.0, 300.0, 0.0]);
    }

    #[test]
    fn time_range_queries() {
        let mut t = PairwiseTraffic::new();
        t.record(pair(), Direction::Response, 5, 10.0);
        t.record(pair(), Direction::Response, 15, 20.0);
        t.record(pair(), Direction::Response, 25, 40.0);
        assert_eq!(t.total_bytes_in(&pair(), Direction::Response, 0, 20), 30.0);
        assert_eq!(t.total_bytes_in(&pair(), Direction::Response, 20, 30), 40.0);
        assert_eq!(t.total_bytes_in(&pair(), Direction::Response, 30, 40), 0.0);
    }

    #[test]
    fn merge_combines_records() {
        let mut a = PairwiseTraffic::new();
        a.record(pair(), Direction::Request, 0, 5.0);
        let mut b = PairwiseTraffic::new();
        b.record(pair(), Direction::Request, 1, 7.0);
        b.record(PairKey::new("X", "Y"), Direction::Response, 3, 2.0);
        a.merge(&b);
        assert_eq!(a.total_bytes(&pair(), Direction::Request), 12.0);
        assert_eq!(
            a.total_bytes(&PairKey::new("X", "Y"), Direction::Response),
            2.0
        );
    }

    #[test]
    fn missing_edge_queries_return_zero() {
        let t = PairwiseTraffic::new();
        assert_eq!(t.total_bytes(&pair(), Direction::Request), 0.0);
        assert!(t.samples(&pair(), Direction::Request).is_none());
        let w = Windowing::new(0, 5);
        assert_eq!(
            t.windowed_bytes(&pair(), Direction::Request, &w, 3),
            vec![0.0, 0.0, 0.0]
        );
    }
}
