//! Component-focused resource metrics (cAdvisor-style).
//!
//! Each component (container) exposes time series for CPU, memory, storage
//! and network traffic. Atlas consumes these series to (i) derive expected
//! resource usage `Ũ^r_c[t]` for the constraint and cost models and (ii) let
//! baseline advisors rank components by busyness (paper §5.2, the greedy
//! baselines).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::window::Windowing;
use crate::Seconds;

/// The resource dimensions recorded per component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricKind {
    /// CPU usage in cores (1.0 = one fully-busy core).
    CpuCores,
    /// Memory usage in gigabytes.
    MemoryGb,
    /// Persistent storage usage in gigabytes.
    StorageGb,
    /// Ingress traffic in bytes per window.
    IngressBytes,
    /// Egress traffic in bytes per window.
    EgressBytes,
}

impl MetricKind {
    /// All metric kinds, in a stable order.
    pub const ALL: [MetricKind; 5] = [
        MetricKind::CpuCores,
        MetricKind::MemoryGb,
        MetricKind::StorageGb,
        MetricKind::IngressBytes,
        MetricKind::EgressBytes,
    ];
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MetricKind::CpuCores => "cpu_cores",
            MetricKind::MemoryGb => "memory_gb",
            MetricKind::StorageGb => "storage_gb",
            MetricKind::IngressBytes => "ingress_bytes",
            MetricKind::EgressBytes => "egress_bytes",
        };
        f.write_str(s)
    }
}

/// A single observation of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Timestamp of the observation in seconds since the epoch.
    pub timestamp_s: Seconds,
    /// Observed value (unit depends on [`MetricKind`]).
    pub value: f64,
}

/// A time-ordered series of observations for one metric of one component.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricSeries {
    points: Vec<MetricPoint>,
}

impl MetricSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an observation. Observations must be pushed in non-decreasing
    /// timestamp order; out-of-order pushes are rejected.
    pub fn push(&mut self, timestamp_s: Seconds, value: f64) {
        if let Some(last) = self.points.last() {
            assert!(
                timestamp_s >= last.timestamp_s,
                "metric observations must be pushed in time order"
            );
        }
        self.points.push(MetricPoint { timestamp_s, value });
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All observations in time order.
    pub fn points(&self) -> &[MetricPoint] {
        &self.points
    }

    /// Average value over the whole series (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum value over the whole series (0.0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(0.0, f64::max)
    }

    /// Average value restricted to `[start_s, end_s)` (0.0 if no points).
    pub fn mean_in(&self, start_s: Seconds, end_s: Seconds) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.timestamp_s >= start_s && p.timestamp_s < end_s)
            .map(|p| p.value)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Sum of values restricted to `[start_s, end_s)`.
    pub fn sum_in(&self, start_s: Seconds, end_s: Seconds) -> f64 {
        self.points
            .iter()
            .filter(|p| p.timestamp_s >= start_s && p.timestamp_s < end_s)
            .map(|p| p.value)
            .sum()
    }

    /// Re-aggregate the series onto fixed windows, averaging the points that
    /// fall into each window. Returns one value per window index covering the
    /// full series; windows with no observations carry the previous value
    /// (or 0.0 at the beginning).
    pub fn resample_mean(&self, windowing: &Windowing) -> Vec<f64> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let last_ts = self.points.last().expect("non-empty").timestamp_s;
        let n = windowing.count_until(last_ts + 1).max(1);
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for p in &self.points {
            let idx = windowing.index_of_s(p.timestamp_s);
            if idx < n {
                sums[idx] += p.value;
                counts[idx] += 1;
            }
        }
        let mut out = vec![0.0f64; n];
        let mut prev = 0.0;
        for i in 0..n {
            if counts[i] > 0 {
                prev = sums[i] / counts[i] as f64;
            }
            out[i] = prev;
        }
        out
    }
}

/// All metric series of a single component.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentMetrics {
    /// Component (container) name.
    pub component: String,
    series: BTreeMap<MetricKind, MetricSeries>,
}

impl ComponentMetrics {
    /// Create an empty metric set for a component.
    pub fn new(component: impl Into<String>) -> Self {
        Self {
            component: component.into(),
            series: BTreeMap::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, kind: MetricKind, timestamp_s: Seconds, value: f64) {
        self.series
            .entry(kind)
            .or_default()
            .push(timestamp_s, value);
    }

    /// Series for a metric kind, if any observation exists.
    pub fn series(&self, kind: MetricKind) -> Option<&MetricSeries> {
        self.series.get(&kind)
    }

    /// Mean of a metric over the whole observation period (0.0 if absent).
    pub fn mean(&self, kind: MetricKind) -> f64 {
        self.series.get(&kind).map_or(0.0, MetricSeries::mean)
    }

    /// Peak of a metric over the whole observation period (0.0 if absent).
    pub fn max(&self, kind: MetricKind) -> f64 {
        self.series.get(&kind).map_or(0.0, MetricSeries::max)
    }

    /// Mean of a metric over `[start_s, end_s)`.
    pub fn mean_in(&self, kind: MetricKind, start_s: Seconds, end_s: Seconds) -> f64 {
        self.series
            .get(&kind)
            .map_or(0.0, |s| s.mean_in(start_s, end_s))
    }

    /// Which metric kinds have at least one observation.
    pub fn kinds(&self) -> impl Iterator<Item = MetricKind> + '_ {
        self.series.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let mut s = MetricSeries::new();
        s.push(0, 1.0);
        s.push(1, 3.0);
        s.push(2, 2.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.mean_in(1, 3), 2.5);
        assert_eq!(s.sum_in(0, 2), 4.0);
        assert_eq!(s.mean_in(10, 20), 0.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut s = MetricSeries::new();
        s.push(5, 1.0);
        s.push(4, 1.0);
    }

    #[test]
    fn empty_series_statistics_are_zero() {
        let s = MetricSeries::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.is_empty());
        assert!(s.resample_mean(&Windowing::new(0, 5)).is_empty());
    }

    #[test]
    fn resampling_averages_within_windows_and_forward_fills() {
        let mut s = MetricSeries::new();
        s.push(0, 2.0);
        s.push(1, 4.0); // window 0 → mean 3.0
        s.push(12, 10.0); // window 2 → 10.0; window 1 forward-fills 3.0
        let w = Windowing::new(0, 5);
        let resampled = s.resample_mean(&w);
        assert_eq!(resampled.len(), 3);
        assert_eq!(resampled[0], 3.0);
        assert_eq!(resampled[1], 3.0);
        assert_eq!(resampled[2], 10.0);
    }

    #[test]
    fn component_metrics_record_and_query() {
        let mut m = ComponentMetrics::new("UserService");
        m.record(MetricKind::CpuCores, 0, 0.5);
        m.record(MetricKind::CpuCores, 10, 1.5);
        m.record(MetricKind::MemoryGb, 0, 2.0);
        assert_eq!(m.component, "UserService");
        assert!((m.mean(MetricKind::CpuCores) - 1.0).abs() < 1e-12);
        assert_eq!(m.max(MetricKind::CpuCores), 1.5);
        assert_eq!(m.mean(MetricKind::StorageGb), 0.0);
        assert_eq!(m.mean_in(MetricKind::CpuCores, 5, 15), 1.5);
        assert_eq!(m.kinds().count(), 2);
    }

    #[test]
    fn metric_kind_display_is_snake_case() {
        assert_eq!(MetricKind::CpuCores.to_string(), "cpu_cores");
        assert_eq!(MetricKind::EgressBytes.to_string(), "egress_bytes");
        assert_eq!(MetricKind::ALL.len(), 5);
    }
}
