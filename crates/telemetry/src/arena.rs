//! Columnar trace arena: the storage engine behind [`crate::TelemetryStore`].
//!
//! The paper's telemetry server retains one trace per request; at realistic
//! traffic that is millions of heap-heavy span trees per day. The arena
//! normalises ingested [`Trace`]s the way a columnar engine would:
//!
//! * **Interning** — component and operation names are mapped to dense `u32`
//!   ids once at ingest ([`NameInterner`]); queries and indexes operate on
//!   ids and only resolve back to strings at the API boundary.
//! * **SoA span columns** — spans live in flat parallel columns
//!   (`span_parent` / `span_component` / `span_start_us` / …) addressed
//!   through a CSR-style `trace_offsets` column, with per-trace root
//!   columns (`api`, `root_start_us`, `root_duration_us`) denormalised for
//!   O(1) access. One span costs ~44 bytes of column data instead of an
//!   owned `Span` (two heap `String`s plus tree node bookkeeping).
//! * **Incremental indexes** — a per-API posting list kept sorted by
//!   `(root_start_us, trace)` and a per-directed-edge posting list of
//!   `(trace, invocation count)` are maintained at ingest, so
//!   `apis()` / `traces_for_api` / `windowed_invocations` /
//!   `api_request_counts_in` answer from indexes instead of O(total-traces)
//!   rescans.
//!
//! Consumers that only need to *read* traces borrow [`TraceView`]s over the
//! columns; full [`Trace`] values are materialised only when a caller needs
//! an owned tree (e.g. the retained representatives of an API profile).
//!
//! On top of the columns the arena offers a **structural clustering** pass
//! ([`TraceArena::weighted_representatives`]): traces of one API are grouped
//! by call-tree signature (parent indices + component ids, which is exactly
//! the information delay injection consumes — operation names and absolute
//! timestamps do not change how a plan re-times a trace tree), and each
//! cluster is collapsed to one representative weighted by its member count.
//! The representative is the member whose end-to-end latency is closest to
//! the cluster mean, so per-API weighted means stay close to the full-trace
//! means. A cluster of size one is represented by the trace itself with
//! weight 1.0, which keeps downstream weighted scoring bit-identical to
//! unweighted scoring when every trace is structurally unique.

use std::collections::HashMap;

use crate::network::PairKey;
use crate::span::{Span, SpanId, TraceId};
use crate::trace::Trace;
use crate::window::Windowing;
use crate::{us_to_ms, Micros, Seconds};

/// Sentinel parent index marking the root span of a trace.
const NO_PARENT: u32 = u32::MAX;

/// A string interner mapping names to dense `u32` ids.
///
/// Ids are assigned in first-seen order and never recycled; resolution is an
/// index into a flat `Vec<String>`.
#[derive(Debug, Default, Clone)]
pub struct NameInterner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl NameInterner {
    /// Intern `name`, returning its id (allocating one if unseen).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Id of `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The name behind `id`.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all interned names in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// An owned representative trace produced by the clustering pass, carrying
/// the number of raw traces it stands for.
#[derive(Debug, Clone)]
pub struct WeightedTrace {
    /// The materialised representative trace.
    pub trace: Trace,
    /// Number of raw traces collapsed into this representative (≥ 1). Used
    /// as the weight of the representative in per-API weighted means.
    pub weight: f64,
}

/// Columnar, index-accelerated storage for ingested traces.
#[derive(Debug, Default)]
pub struct TraceArena {
    components: NameInterner,
    operations: NameInterner,

    // Per-trace columns.
    trace_ids: Vec<TraceId>,
    /// CSR offsets into the span columns; `trace_offsets[i]..trace_offsets[i+1]`
    /// is the span range of trace `i`. Always `trace_count + 1` entries.
    trace_offsets: Vec<u32>,
    /// Interned root-operation (API endpoint) id per trace.
    api: Vec<u32>,
    root_start_us: Vec<Micros>,
    root_duration_us: Vec<Micros>,

    // Per-span columns, root first, in `Trace::nodes` order (sorted by
    // `(start_us, span_id)` with the root relocated to slot 0).
    span_parent: Vec<u32>,
    span_component: Vec<u32>,
    span_operation: Vec<u32>,
    span_id: Vec<SpanId>,
    span_start_us: Vec<Micros>,
    span_duration_us: Vec<Micros>,

    // Incremental indexes.
    /// API id → trace indices sorted by `(root_start_us, trace index)`.
    by_api: HashMap<u32, Vec<u32>>,
    /// Directed component edge → `(trace index, invocation count)` postings
    /// in ingest order. Self-calls are never recorded.
    by_edge: HashMap<(u32, u32), Vec<(u32, u32)>>,
    max_root_start_us: Option<Micros>,
}

impl TraceArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.trace_ids.len()
    }

    /// Whether the arena holds no traces.
    pub fn is_empty(&self) -> bool {
        self.trace_ids.is_empty()
    }

    /// Total number of stored spans across all traces.
    pub fn span_count(&self) -> usize {
        self.span_parent.len()
    }

    /// Ingest one trace: intern its names, append its spans to the columns
    /// and update the per-API and per-edge indexes.
    pub fn push(&mut self, trace: &Trace) -> u32 {
        let idx = self.trace_ids.len() as u32;
        let root = trace.root();
        let api_id = self.operations.intern(&root.operation);

        self.trace_ids.push(trace.trace_id);
        self.api.push(api_id);
        self.root_start_us.push(root.start_us);
        self.root_duration_us.push(root.duration_us);

        if self.trace_offsets.is_empty() {
            self.trace_offsets.push(0);
        }
        let mut edge_counts: HashMap<(u32, u32), u32> = HashMap::new();
        for node in &trace.nodes {
            let comp = self.components.intern(&node.span.component);
            self.span_parent.push(match node.parent {
                Some(p) => p as u32,
                None => NO_PARENT,
            });
            self.span_component.push(comp);
            self.span_operation
                .push(self.operations.intern(&node.span.operation));
            self.span_id.push(node.span.span_id);
            self.span_start_us.push(node.span.start_us);
            self.span_duration_us.push(node.span.duration_us);
            if let Some(p) = node.parent {
                let caller = self.components.intern(&trace.nodes[p].span.component);
                if caller != comp {
                    *edge_counts.entry((caller, comp)).or_insert(0) += 1;
                }
            }
        }
        self.trace_offsets.push(self.span_parent.len() as u32);

        for (edge, n) in edge_counts {
            self.by_edge.entry(edge).or_default().push((idx, n));
        }

        // Keep the per-API posting list sorted by (root start, trace index).
        // The simulator emits traces in near-chronological order, so the
        // binary-searched insertion point is almost always the end.
        let postings = self.by_api.entry(api_id).or_default();
        let pos = postings.partition_point(|&t| self.root_start_us[t as usize] <= root.start_us);
        postings.insert(pos, idx);

        self.max_root_start_us = Some(match self.max_root_start_us {
            Some(m) => m.max(root.start_us),
            None => root.start_us,
        });
        idx
    }

    /// Remove every stored trace and index (interned names included).
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Evict every trace whose root starts before `cutoff_us`, compacting
    /// the columns in place.
    ///
    /// Kept traces are renumbered densely in their original relative order,
    /// and the posting lists are filtered and remapped under the same
    /// renumbering — the per-API lists stay `(root_start_us, index)`-sorted
    /// because both the time order and the relative index order survive the
    /// compaction. Interned name ids are never recycled, so ids observed
    /// before an eviction stay valid after it.
    ///
    /// Returns the sorted names of the APIs that lost at least one trace
    /// (empty when nothing was evicted).
    pub fn evict_older_than(&mut self, cutoff_us: Micros) -> Vec<String> {
        let n = self.trace_ids.len();
        let keep: Vec<bool> = (0..n).map(|t| self.root_start_us[t] >= cutoff_us).collect();
        if keep.iter().all(|&k| k) {
            return Vec::new();
        }

        let mut affected_ids: Vec<u32> =
            (0..n).filter(|&t| !keep[t]).map(|t| self.api[t]).collect();
        affected_ids.sort_unstable();
        affected_ids.dedup();
        let mut affected: Vec<String> = affected_ids
            .into_iter()
            .map(|id| self.operations.resolve(id).to_string())
            .collect();
        affected.sort();

        // New index of each kept trace, assigned in kept order.
        let mut remap = vec![u32::MAX; n];
        let mut next = 0u32;
        for t in 0..n {
            if keep[t] {
                remap[t] = next;
                next += 1;
            }
        }

        // Compact the per-trace and per-span columns. `span_parent` holds
        // within-trace relative indices, so span ranges copy verbatim.
        let kept = next as usize;
        let mut trace_ids = Vec::with_capacity(kept);
        let mut api = Vec::with_capacity(kept);
        let mut root_start_us = Vec::with_capacity(kept);
        let mut root_duration_us = Vec::with_capacity(kept);
        let mut trace_offsets = Vec::with_capacity(kept + 1);
        trace_offsets.push(0u32);
        let mut span_parent = Vec::new();
        let mut span_component = Vec::new();
        let mut span_operation = Vec::new();
        let mut span_id = Vec::new();
        let mut span_start_us = Vec::new();
        let mut span_duration_us = Vec::new();
        for t in 0..n {
            if !keep[t] {
                continue;
            }
            let (lo, hi) = self.span_range(t as u32);
            trace_ids.push(self.trace_ids[t]);
            api.push(self.api[t]);
            root_start_us.push(self.root_start_us[t]);
            root_duration_us.push(self.root_duration_us[t]);
            span_parent.extend_from_slice(&self.span_parent[lo..hi]);
            span_component.extend_from_slice(&self.span_component[lo..hi]);
            span_operation.extend_from_slice(&self.span_operation[lo..hi]);
            span_id.extend_from_slice(&self.span_id[lo..hi]);
            span_start_us.extend_from_slice(&self.span_start_us[lo..hi]);
            span_duration_us.extend_from_slice(&self.span_duration_us[lo..hi]);
            trace_offsets.push(span_parent.len() as u32);
        }
        self.trace_ids = trace_ids;
        self.api = api;
        self.root_start_us = root_start_us;
        self.root_duration_us = root_duration_us;
        self.trace_offsets = trace_offsets;
        self.span_parent = span_parent;
        self.span_component = span_component;
        self.span_operation = span_operation;
        self.span_id = span_id;
        self.span_start_us = span_start_us;
        self.span_duration_us = span_duration_us;

        self.by_api.retain(|_, postings| {
            postings.retain_mut(|t| {
                let old = *t as usize;
                if keep[old] {
                    *t = remap[old];
                    true
                } else {
                    false
                }
            });
            !postings.is_empty()
        });
        self.by_edge.retain(|_, postings| {
            postings.retain_mut(|(t, _)| {
                let old = *t as usize;
                if keep[old] {
                    *t = remap[old];
                    true
                } else {
                    false
                }
            });
            !postings.is_empty()
        });

        // Eviction keeps exactly the traces at or after the cutoff, so
        // whenever anything survives the maximum-start trace survives too.
        if self.trace_ids.is_empty() {
            self.max_root_start_us = None;
        }
        affected
    }

    /// Latest root start timestamp over all traces (µs), if any.
    pub fn max_root_start_us(&self) -> Option<Micros> {
        self.max_root_start_us
    }

    /// A borrowed view over one stored trace.
    pub fn view(&self, trace: u32) -> TraceView<'_> {
        TraceView { arena: self, trace }
    }

    /// Sorted, deduplicated names of all APIs (root operations) observed.
    pub fn api_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .by_api
            .keys()
            .map(|&id| self.operations.resolve(id).to_string())
            .collect();
        v.sort();
        v
    }

    /// Iterate over all component names observed in spans, in id order.
    pub fn component_names(&self) -> impl Iterator<Item = &str> {
        self.components.iter()
    }

    /// Trace indices of an API, sorted by `(root_start_us, trace index)`.
    pub fn api_trace_indices(&self, api: &str) -> &[u32] {
        self.operations
            .get(api)
            .and_then(|id| self.by_api.get(&id))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of traces stored for an API.
    pub fn api_trace_count(&self, api: &str) -> usize {
        self.api_trace_indices(api).len()
    }

    /// Mean end-to-end latency (ms) over all traces of an API, summed in
    /// time order. Returns 0.0 for an unknown API.
    pub fn api_mean_latency_ms(&self, api: &str) -> f64 {
        let indices = self.api_trace_indices(api);
        if indices.is_empty() {
            return 0.0;
        }
        indices
            .iter()
            .map(|&t| us_to_ms(self.root_duration_us[t as usize]))
            .sum::<f64>()
            / indices.len() as f64
    }

    /// End-to-end latencies (ms) of all traces of an API, in time order.
    pub fn api_latencies_ms(&self, api: &str) -> Vec<f64> {
        self.api_trace_indices(api)
            .iter()
            .map(|&t| us_to_ms(self.root_duration_us[t as usize]))
            .collect()
    }

    /// Sorted names of the distinct components touched by an API's traces.
    pub fn api_component_names(&self, api: &str) -> Vec<String> {
        let mut seen = vec![false; self.components.len()];
        for &t in self.api_trace_indices(api) {
            let (lo, hi) = self.span_range(t);
            for &c in &self.span_component[lo..hi] {
                seen[c as usize] = true;
            }
        }
        let mut v: Vec<String> = seen
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(id, _)| self.components.resolve(id as u32).to_string())
            .collect();
        v.sort();
        v
    }

    /// Trace indices of an API whose root start lies in `[start_s, end_s)`,
    /// located by binary search over the time-sorted per-API index.
    pub fn api_trace_indices_in(&self, api: &str, start_s: Seconds, end_s: Seconds) -> &[u32] {
        let indices = self.api_trace_indices(api);
        let lo_us = start_s.saturating_mul(1_000_000);
        let hi_us = end_s.saturating_mul(1_000_000);
        let lo = indices.partition_point(|&t| self.root_start_us[t as usize] < lo_us);
        let hi = indices.partition_point(|&t| self.root_start_us[t as usize] < hi_us);
        &indices[lo..hi]
    }

    /// Requests per API whose root start falls in `[start_s, end_s)`,
    /// answered per API by binary search instead of a full-store scan.
    pub fn api_request_counts_in(&self, start_s: Seconds, end_s: Seconds) -> HashMap<String, u64> {
        let mut out = HashMap::new();
        for &id in self.by_api.keys() {
            let api = self.operations.resolve(id);
            let n = self.api_trace_indices_in(api, start_s, end_s).len() as u64;
            if n > 0 {
                out.insert(api.to_string(), n);
            }
        }
        out
    }

    /// Per-API windowed invocation counts on a directed component edge,
    /// answered from the per-edge posting list: only traces that actually
    /// cross the edge are touched, and each posting already carries its
    /// invocation count, so no per-trace tree walk or key rebuild happens.
    pub fn windowed_invocations(
        &self,
        pair: &PairKey,
        windowing: &Windowing,
        window_count: usize,
    ) -> HashMap<String, Vec<f64>> {
        let mut out = HashMap::new();
        let (Some(from), Some(to)) = (
            self.components.get(&pair.from),
            self.components.get(&pair.to),
        ) else {
            return out;
        };
        let Some(postings) = self.by_edge.get(&(from, to)) else {
            return out;
        };
        let mut by_api: HashMap<u32, Vec<f64>> = HashMap::new();
        for &(t, n) in postings {
            let idx = windowing.index_of_us(self.root_start_us[t as usize]);
            if idx >= window_count {
                continue;
            }
            by_api
                .entry(self.api[t as usize])
                .or_insert_with(|| vec![0.0; window_count])[idx] += n as f64;
        }
        for (api_id, windows) in by_api {
            out.insert(self.operations.resolve(api_id).to_string(), windows);
        }
        out
    }

    /// Rebuild an owned [`Trace`] from the columns.
    ///
    /// The spans are stored in validated `Trace::nodes` order, so the
    /// reconstruction reproduces the ingested trace exactly.
    pub fn materialize(&self, trace: u32) -> Trace {
        let (lo, hi) = self.span_range(trace);
        let trace_id = self.trace_ids[trace as usize];
        let spans: Vec<Span> = (lo..hi)
            .map(|s| {
                let parent = self.span_parent[s];
                let parent_id = if parent == NO_PARENT {
                    None
                } else {
                    Some(self.span_id[lo + parent as usize])
                };
                Span::new(
                    trace_id,
                    self.span_id[s],
                    parent_id,
                    self.components.resolve(self.span_component[s]),
                    self.operations.resolve(self.span_operation[s]),
                    self.span_start_us[s],
                    self.span_duration_us[s],
                )
            })
            .collect();
        Trace::from_spans(spans).expect("arena columns hold a validated trace")
    }

    /// Materialise every trace of an API in time order.
    pub fn traces_for_api(&self, api: &str) -> Vec<Trace> {
        self.api_trace_indices(api)
            .iter()
            .map(|&t| self.materialize(t))
            .collect()
    }

    /// Materialise the up-to-`limit` most recent traces of an API. Only the
    /// selected tail of the time-sorted index is materialised.
    pub fn recent_traces_for_api(&self, api: &str, limit: usize) -> Vec<Trace> {
        let indices = self.api_trace_indices(api);
        let skip = indices.len().saturating_sub(limit);
        indices[skip..]
            .iter()
            .map(|&t| self.materialize(t))
            .collect()
    }

    /// The structural signature of a trace: one packed `(parent index,
    /// component id)` word per span in node order. Two traces share a
    /// signature iff their call trees have the same shape over the same
    /// components — the exact inputs delay injection re-times a tree by.
    fn signature(&self, trace: u32) -> Vec<u64> {
        let (lo, hi) = self.span_range(trace);
        (lo..hi)
            .map(|s| ((self.span_parent[s] as u64) << 32) | self.span_component[s] as u64)
            .collect()
    }

    /// Collapse an API's traces into at most `cap` weighted representatives.
    ///
    /// Traces are grouped by structural signature in time order; each
    /// cluster keeps the member whose end-to-end latency is closest to the
    /// cluster mean (earliest member on ties) and is weighted by its member
    /// count. When more than `cap` clusters exist, the heaviest clusters are
    /// retained (most recent on equal weight), so with all-unique traces the
    /// retained set degenerates to the `cap` most recent traces — exactly
    /// the pre-clustering retention policy.
    pub fn weighted_representatives(&self, api: &str, cap: usize) -> Vec<WeightedTrace> {
        let indices = self.api_trace_indices(api);
        if indices.is_empty() || cap == 0 {
            return Vec::new();
        }
        // members[k] = trace indices of cluster k, in time order.
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut cluster_of: HashMap<Vec<u64>, usize> = HashMap::new();
        for &t in indices {
            let sig = self.signature(t);
            match cluster_of.get(&sig) {
                Some(&k) => members[k].push(t),
                None => {
                    cluster_of.insert(sig, members.len());
                    members.push(vec![t]);
                }
            }
        }
        let mut retained: Vec<usize> = (0..members.len()).collect();
        if retained.len() > cap {
            // Heaviest first; ties go to the cluster seen most recently.
            retained.sort_by_key(|&k| {
                let last = *members[k].last().expect("clusters are non-empty");
                (
                    std::cmp::Reverse(members[k].len()),
                    std::cmp::Reverse((self.root_start_us[last as usize], last)),
                )
            });
            retained.truncate(cap);
            // Emit representatives in first-seen order for determinism.
            retained.sort_unstable();
        }
        retained
            .into_iter()
            .map(|k| {
                let m = &members[k];
                let mean = m
                    .iter()
                    .map(|&t| self.root_duration_us[t as usize] as f64)
                    .sum::<f64>()
                    / m.len() as f64;
                let rep = *m
                    .iter()
                    .reduce(|best, t| {
                        let db = (self.root_duration_us[*best as usize] as f64 - mean).abs();
                        let dt = (self.root_duration_us[*t as usize] as f64 - mean).abs();
                        if dt < db {
                            t
                        } else {
                            best
                        }
                    })
                    .expect("clusters are non-empty");
                WeightedTrace {
                    trace: self.materialize(rep),
                    weight: m.len() as f64,
                }
            })
            .collect()
    }

    fn span_range(&self, trace: u32) -> (usize, usize) {
        let t = trace as usize;
        (
            self.trace_offsets[t] as usize,
            self.trace_offsets[t + 1] as usize,
        )
    }
}

/// A borrowed, allocation-free view over one trace stored in a
/// [`TraceArena`]. Spans are addressed by node index (root is index 0,
/// nodes ordered by `(start_us, span_id)` as in [`Trace::nodes`]).
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    arena: &'a TraceArena,
    trace: u32,
}

impl<'a> TraceView<'a> {
    /// The trace identifier.
    pub fn trace_id(&self) -> TraceId {
        self.arena.trace_ids[self.trace as usize]
    }

    /// The API endpoint (root operation name).
    pub fn api(&self) -> &'a str {
        self.arena
            .operations
            .resolve(self.arena.api[self.trace as usize])
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        let (lo, hi) = self.arena.span_range(self.trace);
        hi - lo
    }

    /// Whether the trace has no spans (never true for validated traces).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Root start timestamp (µs).
    pub fn root_start_us(&self) -> Micros {
        self.arena.root_start_us[self.trace as usize]
    }

    /// End-to-end latency (µs): the root span's duration.
    pub fn end_to_end_latency_us(&self) -> Micros {
        self.arena.root_duration_us[self.trace as usize]
    }

    /// Parent node index of span `i`, or `None` for the root.
    pub fn parent(&self, i: usize) -> Option<usize> {
        let (lo, _) = self.arena.span_range(self.trace);
        let p = self.arena.span_parent[lo + i];
        (p != NO_PARENT).then_some(p as usize)
    }

    /// Interned component id of span `i`.
    pub fn component_id(&self, i: usize) -> u32 {
        let (lo, _) = self.arena.span_range(self.trace);
        self.arena.span_component[lo + i]
    }

    /// Component name of span `i`.
    pub fn component(&self, i: usize) -> &'a str {
        self.arena.components.resolve(self.component_id(i))
    }

    /// Start timestamp (µs) of span `i`.
    pub fn start_us(&self, i: usize) -> Micros {
        let (lo, _) = self.arena.span_range(self.trace);
        self.arena.span_start_us[lo + i]
    }

    /// Duration (µs) of span `i`.
    pub fn duration_us(&self, i: usize) -> Micros {
        let (lo, _) = self.arena.span_range(self.trace);
        self.arena.span_duration_us[lo + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanId, TraceId};

    fn tree_trace(id: u64, api: &str, start: Micros, dur: Micros, comps: &[&str]) -> Trace {
        let t = TraceId(id);
        let mut spans = vec![Span::new(
            t,
            SpanId(id * 100),
            None,
            comps[0],
            api,
            start,
            dur,
        )];
        for (i, c) in comps.iter().enumerate().skip(1) {
            spans.push(Span::new(
                t,
                SpanId(id * 100 + i as u64),
                Some(SpanId(id * 100)),
                *c,
                "op",
                start + 10 * i as u64,
                dur / 2,
            ));
        }
        Trace::from_spans(spans).unwrap()
    }

    #[test]
    fn round_trips_traces_through_columns() {
        let mut arena = TraceArena::new();
        let t = tree_trace(1, "/a", 5, 100, &["Frontend", "User", "Media"]);
        let idx = arena.push(&t);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.span_count(), 3);
        assert_eq!(arena.materialize(idx), t);
        let v = arena.view(idx);
        assert_eq!(v.api(), "/a");
        assert_eq!(v.len(), 3);
        assert_eq!(v.parent(0), None);
        assert_eq!(v.parent(1), Some(0));
        assert_eq!(v.component(0), "Frontend");
    }

    #[test]
    fn per_api_index_stays_time_sorted_under_out_of_order_ingest() {
        let mut arena = TraceArena::new();
        arena.push(&tree_trace(1, "/a", 9_000_000, 10, &["F", "U"]));
        arena.push(&tree_trace(2, "/a", 1_000_000, 10, &["F", "U"]));
        arena.push(&tree_trace(3, "/a", 4_000_000, 10, &["F", "U"]));
        let starts: Vec<Micros> = arena
            .api_trace_indices("/a")
            .iter()
            .map(|&t| arena.view(t).root_start_us())
            .collect();
        assert_eq!(starts, vec![1_000_000, 4_000_000, 9_000_000]);
        assert_eq!(arena.api_trace_indices_in("/a", 1, 5).len(), 2);
        assert_eq!(arena.max_root_start_us(), Some(9_000_000));
    }

    #[test]
    fn clustering_collapses_identical_structures() {
        let mut arena = TraceArena::new();
        // Three structurally identical traces with latencies 100/200/900 and
        // one with a different component set.
        arena.push(&tree_trace(1, "/a", 0, 100, &["F", "U"]));
        arena.push(&tree_trace(2, "/a", 1_000, 200, &["F", "U"]));
        arena.push(&tree_trace(3, "/a", 2_000, 900, &["F", "U"]));
        arena.push(&tree_trace(4, "/a", 3_000, 50, &["F", "M"]));
        let reps = arena.weighted_representatives("/a", 10);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].weight, 3.0);
        // Mean latency is 400 µs; 200 µs is the closest member.
        assert_eq!(reps[0].trace.end_to_end_latency_us(), 200);
        assert_eq!(reps[1].weight, 1.0);
    }

    #[test]
    fn eviction_compacts_columns_and_keeps_indexes_consistent() {
        let mut arena = TraceArena::new();
        arena.push(&tree_trace(1, "/a", 1_000_000, 100, &["F", "U"]));
        arena.push(&tree_trace(2, "/b", 2_000_000, 200, &["F", "M"]));
        arena.push(&tree_trace(3, "/a", 5_000_000, 300, &["F", "U", "M"]));
        arena.push(&tree_trace(4, "/b", 9_000_000, 400, &["F", "M"]));

        let affected = arena.evict_older_than(3_000_000);
        assert_eq!(affected, vec!["/a", "/b"]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.span_count(), 5);
        assert_eq!(arena.max_root_start_us(), Some(9_000_000));

        // The kept traces round-trip exactly under their new indices.
        let a = arena.api_trace_indices("/a").to_vec();
        assert_eq!(a.len(), 1);
        let t = arena.materialize(a[0]);
        assert_eq!(t.trace_id, TraceId(3));
        assert_eq!(t.root().start_us, 5_000_000);
        assert_eq!(t.nodes.len(), 3);

        // The edge index survives the renumbering: /b's remaining trace
        // still answers windowed invocation queries.
        let w = crate::window::Windowing::new(0, 5);
        let inv = arena.windowed_invocations(&PairKey::new("F", "M"), &w, 2);
        assert_eq!(inv["/b"], vec![0.0, 1.0]);

        // Evicting nothing reports nothing.
        assert!(arena.evict_older_than(0).is_empty());

        // Evicting everything empties the arena.
        let affected = arena.evict_older_than(10_000_000);
        assert_eq!(affected, vec!["/a", "/b"]);
        assert!(arena.is_empty());
        assert_eq!(arena.span_count(), 0);
        assert_eq!(arena.max_root_start_us(), None);
        assert!(arena.api_names().is_empty());
    }

    #[test]
    fn eviction_preserves_time_sort_and_clustering() {
        let mut arena = TraceArena::new();
        // Out-of-order ingest across the cutoff.
        arena.push(&tree_trace(1, "/a", 9_000_000, 10, &["F", "U"]));
        arena.push(&tree_trace(2, "/a", 1_000_000, 10, &["F", "U"]));
        arena.push(&tree_trace(3, "/a", 4_000_000, 10, &["F", "U"]));
        arena.push(&tree_trace(4, "/a", 6_000_000, 10, &["F", "U", "M"]));
        arena.evict_older_than(4_000_000);
        let starts: Vec<Micros> = arena
            .api_trace_indices("/a")
            .iter()
            .map(|&t| arena.view(t).root_start_us())
            .collect();
        assert_eq!(starts, vec![4_000_000, 6_000_000, 9_000_000]);
        let reps = arena.weighted_representatives("/a", 10);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].weight, 2.0);
        assert_eq!(reps[1].weight, 1.0);
    }

    #[test]
    fn unique_structures_cap_to_the_most_recent_traces() {
        let mut arena = TraceArena::new();
        // Each trace has a distinct fanout, so every cluster has one member.
        for i in 1..=5u64 {
            let comps: Vec<String> = (0..=i).map(|j| format!("C{j}")).collect();
            let refs: Vec<&str> = comps.iter().map(String::as_str).collect();
            arena.push(&tree_trace(i, "/a", i * 1_000_000, 100, &refs));
        }
        let reps = arena.weighted_representatives("/a", 2);
        assert_eq!(reps.len(), 2);
        assert!(reps.iter().all(|r| r.weight == 1.0));
        let starts: Vec<Micros> = reps.iter().map(|r| r.trace.root().start_us).collect();
        assert_eq!(starts, vec![4_000_000, 5_000_000]);
    }
}
