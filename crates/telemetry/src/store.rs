//! The telemetry store: the "telemetry server" Atlas queries.
//!
//! In the paper's deployment this role is played by Jaeger's query service
//! and Prometheus. Here the store simply holds everything the simulator
//! emitted and offers the query surface Atlas needs during application
//! learning (paper §3): traces by API and time range, per-component metric
//! series, pairwise traffic aggregates, and trace-derived invocation counts
//! aligned on the same windows as the traffic counters.

use std::collections::{BTreeMap, HashMap};

use parking_lot::RwLock;

use crate::metrics::{ComponentMetrics, MetricKind};
use crate::network::{Direction, PairKey, PairwiseTraffic};
use crate::trace::Trace;
use crate::window::Windowing;
use crate::Seconds;

/// In-memory telemetry server.
///
/// The store is internally synchronised so that a simulator thread can keep
/// appending while the advisor reads, mirroring a live telemetry backend.
#[derive(Debug, Default)]
pub struct TelemetryStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    traces: Vec<Trace>,
    metrics: BTreeMap<String, ComponentMetrics>,
    traffic: PairwiseTraffic,
}

impl TelemetryStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Ingestion (used by the simulator).
    // ------------------------------------------------------------------

    /// Ingest a completed trace.
    pub fn ingest_trace(&self, trace: Trace) {
        self.inner.write().traces.push(trace);
    }

    /// Ingest many traces at once.
    pub fn ingest_traces(&self, traces: impl IntoIterator<Item = Trace>) {
        let mut inner = self.inner.write();
        inner.traces.extend(traces);
    }

    /// Record a component metric observation.
    pub fn record_metric(
        &self,
        component: &str,
        kind: MetricKind,
        timestamp_s: Seconds,
        value: f64,
    ) {
        let mut inner = self.inner.write();
        inner
            .metrics
            .entry(component.to_string())
            .or_insert_with(|| ComponentMetrics::new(component))
            .record(kind, timestamp_s, value);
    }

    /// Record pairwise traffic bytes.
    pub fn record_traffic(
        &self,
        from: &str,
        to: &str,
        direction: Direction,
        timestamp_s: Seconds,
        bytes: f64,
    ) {
        self.inner
            .write()
            .traffic
            .record(PairKey::new(from, to), direction, timestamp_s, bytes);
    }

    // ------------------------------------------------------------------
    // Query surface (used by Atlas and the baselines).
    // ------------------------------------------------------------------

    /// Total number of stored traces.
    pub fn trace_count(&self) -> usize {
        self.inner.read().traces.len()
    }

    /// Names of all user-facing APIs observed (root operations of traces),
    /// sorted and deduplicated.
    pub fn apis(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut v: Vec<String> = inner.traces.iter().map(|t| t.api().to_string()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Names of all components observed in traces or metrics, sorted.
    pub fn components(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut v: Vec<String> = inner.metrics.keys().cloned().collect();
        for t in &inner.traces {
            for c in t.components() {
                v.push(c.to_string());
            }
        }
        v.sort();
        v.dedup();
        v
    }

    /// All traces belonging to a given API, cloned out of the store.
    pub fn traces_for_api(&self, api: &str) -> Vec<Trace> {
        self.inner
            .read()
            .traces
            .iter()
            .filter(|t| t.api() == api)
            .cloned()
            .collect()
    }

    /// Up to `limit` most recent traces of an API (by root start time).
    pub fn recent_traces_for_api(&self, api: &str, limit: usize) -> Vec<Trace> {
        let mut traces = self.traces_for_api(api);
        traces.sort_by_key(|t| t.root().start_us);
        if traces.len() > limit {
            traces.split_off(traces.len() - limit)
        } else {
            traces
        }
    }

    /// All traces of an API whose root span starts inside `[start_s, end_s)`.
    pub fn traces_for_api_in(&self, api: &str, start_s: Seconds, end_s: Seconds) -> Vec<Trace> {
        self.inner
            .read()
            .traces
            .iter()
            .filter(|t| {
                let root_s = t.root().start_us / 1_000_000;
                t.api() == api && root_s >= start_s && root_s < end_s
            })
            .cloned()
            .collect()
    }

    /// Metrics of a component, if observed.
    pub fn component_metrics(&self, component: &str) -> Option<ComponentMetrics> {
        self.inner.read().metrics.get(component).cloned()
    }

    /// Convenience: mean of a metric for a component over the whole period.
    pub fn metric_mean(&self, component: &str, kind: MetricKind) -> f64 {
        self.inner
            .read()
            .metrics
            .get(component)
            .map_or(0.0, |m| m.mean(kind))
    }

    /// Convenience: peak of a metric for a component over the whole period.
    pub fn metric_max(&self, component: &str, kind: MetricKind) -> f64 {
        self.inner
            .read()
            .metrics
            .get(component)
            .map_or(0.0, |m| m.max(kind))
    }

    /// A clone of the pairwise traffic record.
    pub fn traffic(&self) -> PairwiseTraffic {
        self.inner.read().traffic.clone()
    }

    /// All directed communication edges observed by the network metrics.
    pub fn traffic_edges(&self) -> Vec<PairKey> {
        self.inner.read().traffic.edges()
    }

    /// `U^{req/resp}_{ci→cj}[t]`: bytes per window on an edge (Eq. 1 input).
    pub fn windowed_traffic(
        &self,
        pair: &PairKey,
        direction: Direction,
        windowing: &Windowing,
        window_count: usize,
    ) -> Vec<f64> {
        self.inner
            .read()
            .traffic
            .windowed_bytes(pair, direction, windowing, window_count)
    }

    /// `I^A_{ci→cj}[t]`: per-API invocation counts on an edge, per window
    /// (Eq. 1 input). Returns a map API → per-window invocation counts.
    ///
    /// A trace contributes all its edge invocations to the window containing
    /// its root start time, matching how the paper aligns traces with the
    /// network counters.
    pub fn windowed_invocations(
        &self,
        pair: &PairKey,
        windowing: &Windowing,
        window_count: usize,
    ) -> HashMap<String, Vec<f64>> {
        let inner = self.inner.read();
        let mut out: HashMap<String, Vec<f64>> = HashMap::new();
        for trace in &inner.traces {
            let idx = windowing.index_of_us(trace.root().start_us);
            if idx >= window_count {
                continue;
            }
            let counts = trace.invocation_counts();
            let key = (pair.from.clone(), pair.to.clone());
            if let Some(&n) = counts.get(&key) {
                out.entry(trace.api().to_string())
                    .or_insert_with(|| vec![0.0; window_count])[idx] += n as f64;
            }
        }
        out
    }

    /// Number of requests per API whose root start falls in `[start_s, end_s)`.
    pub fn api_request_counts_in(&self, start_s: Seconds, end_s: Seconds) -> HashMap<String, u64> {
        let inner = self.inner.read();
        let mut out = HashMap::new();
        for t in &inner.traces {
            let root_s = t.root().start_us / 1_000_000;
            if root_s >= start_s && root_s < end_s {
                *out.entry(t.api().to_string()).or_insert(0) += 1;
            }
        }
        out
    }

    /// End-to-end latencies (ms) of all traces of an API, in time order.
    pub fn api_latencies_ms(&self, api: &str) -> Vec<f64> {
        let mut traces = self.traces_for_api(api);
        traces.sort_by_key(|t| t.root().start_us);
        traces
            .iter()
            .map(|t| crate::us_to_ms(t.end_to_end_latency_us()))
            .collect()
    }

    /// Remove every stored trace, metric, and traffic sample.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.traces.clear();
        inner.metrics.clear();
        inner.traffic = PairwiseTraffic::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanId, TraceId};

    fn trace(id: u64, api: &str, start_us: u64, latency_us: u64) -> Trace {
        let t = TraceId(id);
        let spans = vec![
            Span::new(
                t,
                SpanId(id * 10),
                None,
                "Frontend",
                api,
                start_us,
                latency_us,
            ),
            Span::new(
                t,
                SpanId(id * 10 + 1),
                Some(SpanId(id * 10)),
                "UserService",
                "op",
                start_us + 10,
                latency_us / 2,
            ),
        ];
        Trace::from_spans(spans).unwrap()
    }

    #[test]
    fn ingest_and_query_traces() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.ingest_trace(trace(2, "/login", 5_000_000, 2000));
        store.ingest_trace(trace(3, "/register", 1_000_000, 3000));
        assert_eq!(store.trace_count(), 3);
        assert_eq!(store.apis(), vec!["/login", "/register"]);
        assert_eq!(store.traces_for_api("/login").len(), 2);
        assert_eq!(store.traces_for_api("/missing").len(), 0);
        assert_eq!(store.traces_for_api_in("/login", 0, 5).len(), 1);
        assert_eq!(store.api_latencies_ms("/login"), vec![1.0, 2.0]);
    }

    #[test]
    fn recent_traces_respects_limit_and_order() {
        let store = TelemetryStore::new();
        for i in 0..10 {
            store.ingest_trace(trace(i, "/x", i * 1_000_000, 100));
        }
        let recent = store.recent_traces_for_api("/x", 3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].root().start_us, 7_000_000);
        assert_eq!(recent[2].root().start_us, 9_000_000);
        assert_eq!(store.recent_traces_for_api("/x", 100).len(), 10);
    }

    #[test]
    fn metric_ingestion_and_queries() {
        let store = TelemetryStore::new();
        store.record_metric("A", MetricKind::CpuCores, 0, 1.0);
        store.record_metric("A", MetricKind::CpuCores, 1, 3.0);
        store.record_metric("B", MetricKind::MemoryGb, 0, 4.0);
        assert_eq!(store.metric_mean("A", MetricKind::CpuCores), 2.0);
        assert_eq!(store.metric_max("A", MetricKind::CpuCores), 3.0);
        assert_eq!(store.metric_mean("C", MetricKind::CpuCores), 0.0);
        assert!(store.component_metrics("B").is_some());
        assert!(store.component_metrics("C").is_none());
    }

    #[test]
    fn components_cover_metrics_and_traces() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.record_metric("OnlyMetrics", MetricKind::CpuCores, 0, 1.0);
        let comps = store.components();
        assert!(comps.contains(&"Frontend".to_string()));
        assert!(comps.contains(&"UserService".to_string()));
        assert!(comps.contains(&"OnlyMetrics".to_string()));
    }

    #[test]
    fn traffic_and_invocation_windows_align() {
        let store = TelemetryStore::new();
        // Two /login traces in window 0, one in window 1.
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.ingest_trace(trace(2, "/login", 2_000_000, 1000));
        store.ingest_trace(trace(3, "/login", 6_000_000, 1000));
        store.record_traffic("Frontend", "UserService", Direction::Request, 0, 600.0);
        store.record_traffic("Frontend", "UserService", Direction::Request, 6, 300.0);

        let w = Windowing::new(0, 5);
        let pair = PairKey::new("Frontend", "UserService");
        let traffic = store.windowed_traffic(&pair, Direction::Request, &w, 2);
        assert_eq!(traffic, vec![600.0, 300.0]);

        let inv = store.windowed_invocations(&pair, &w, 2);
        assert_eq!(inv["/login"], vec![2.0, 1.0]);
    }

    #[test]
    fn api_request_counts_by_window() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/a", 0, 10));
        store.ingest_trace(trace(2, "/a", 1_000_000, 10));
        store.ingest_trace(trace(3, "/b", 9_000_000, 10));
        let counts = store.api_request_counts_in(0, 5);
        assert_eq!(counts["/a"], 2);
        assert!(!counts.contains_key("/b"));
    }

    #[test]
    fn clear_removes_everything() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/a", 0, 10));
        store.record_metric("A", MetricKind::CpuCores, 0, 1.0);
        store.record_traffic("A", "B", Direction::Request, 0, 1.0);
        store.clear();
        assert_eq!(store.trace_count(), 0);
        assert!(store.apis().is_empty());
        assert!(store.traffic_edges().is_empty());
        assert!(store.component_metrics("A").is_none());
    }
}
