//! The telemetry store: the "telemetry server" Atlas queries.
//!
//! In the paper's deployment this role is played by Jaeger's query service
//! and Prometheus. Here the store holds everything the simulator emitted and
//! offers the query surface Atlas needs during application learning (paper
//! §3): traces by API and time range, per-component metric series, pairwise
//! traffic aggregates, and trace-derived invocation counts aligned on the
//! same windows as the traffic counters.
//!
//! Traces are not kept as a flat `Vec<Trace>`: they are normalised into a
//! columnar [`TraceArena`] at ingest (interned names, SoA span columns,
//! per-API and per-edge indexes), so every query answers from an index
//! instead of rescanning the whole store, and learning-stage consumers can
//! borrow [`crate::arena::TraceView`]s instead of cloning span trees.

use std::collections::{BTreeMap, HashMap};

use parking_lot::RwLock;

use crate::arena::{TraceArena, WeightedTrace};
use crate::metrics::{ComponentMetrics, MetricKind};
use crate::network::{Direction, PairKey, PairwiseTraffic};
use crate::trace::Trace;
use crate::window::Windowing;
use crate::Seconds;

/// In-memory telemetry server.
///
/// The store is internally synchronised so that a simulator thread can keep
/// appending while the advisor reads, mirroring a live telemetry backend.
#[derive(Debug, Default)]
pub struct TelemetryStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    arena: TraceArena,
    metrics: BTreeMap<String, ComponentMetrics>,
    traffic: PairwiseTraffic,
}

impl TelemetryStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Ingestion (used by the simulator).
    // ------------------------------------------------------------------

    /// Ingest a completed trace.
    pub fn ingest_trace(&self, trace: Trace) {
        self.inner.write().arena.push(&trace);
    }

    /// Ingest many traces at once.
    pub fn ingest_traces(&self, traces: impl IntoIterator<Item = Trace>) {
        let mut inner = self.inner.write();
        for trace in traces {
            inner.arena.push(&trace);
        }
    }

    /// Record a component metric observation.
    pub fn record_metric(
        &self,
        component: &str,
        kind: MetricKind,
        timestamp_s: Seconds,
        value: f64,
    ) {
        let mut inner = self.inner.write();
        inner
            .metrics
            .entry(component.to_string())
            .or_insert_with(|| ComponentMetrics::new(component))
            .record(kind, timestamp_s, value);
    }

    /// Record pairwise traffic bytes.
    pub fn record_traffic(
        &self,
        from: &str,
        to: &str,
        direction: Direction,
        timestamp_s: Seconds,
        bytes: f64,
    ) {
        self.inner
            .write()
            .traffic
            .record(PairKey::new(from, to), direction, timestamp_s, bytes);
    }

    // ------------------------------------------------------------------
    // Query surface (used by Atlas and the baselines).
    // ------------------------------------------------------------------

    /// Run `f` against the columnar trace arena under the read lock.
    ///
    /// This is the borrow-based escape hatch for learning-stage consumers
    /// that want [`crate::arena::TraceView`]s instead of owned [`Trace`]s.
    pub fn with_arena<R>(&self, f: impl FnOnce(&TraceArena) -> R) -> R {
        f(&self.inner.read().arena)
    }

    /// Total number of stored traces.
    pub fn trace_count(&self) -> usize {
        self.inner.read().arena.len()
    }

    /// Total number of stored spans.
    pub fn span_count(&self) -> usize {
        self.inner.read().arena.span_count()
    }

    /// Names of all user-facing APIs observed (root operations of traces),
    /// sorted and deduplicated. Answered from the per-API index: O(#APIs),
    /// not O(#traces).
    pub fn apis(&self) -> Vec<String> {
        self.inner.read().arena.api_names()
    }

    /// Names of all components observed in traces or metrics, sorted.
    /// Answered from the interner and the metric keys: no per-span scan.
    pub fn components(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut v: Vec<String> = inner.metrics.keys().cloned().collect();
        v.extend(inner.arena.component_names().map(str::to_string));
        v.sort();
        v.dedup();
        v
    }

    /// All traces belonging to a given API, materialised in time order.
    pub fn traces_for_api(&self, api: &str) -> Vec<Trace> {
        self.inner.read().arena.traces_for_api(api)
    }

    /// Up to `limit` most recent traces of an API (by root start time).
    /// Only the selected traces are materialised.
    pub fn recent_traces_for_api(&self, api: &str, limit: usize) -> Vec<Trace> {
        self.inner.read().arena.recent_traces_for_api(api, limit)
    }

    /// All traces of an API whose root span starts inside `[start_s, end_s)`,
    /// located by binary search over the time-sorted per-API index.
    pub fn traces_for_api_in(&self, api: &str, start_s: Seconds, end_s: Seconds) -> Vec<Trace> {
        let inner = self.inner.read();
        inner
            .arena
            .api_trace_indices_in(api, start_s, end_s)
            .iter()
            .map(|&t| inner.arena.materialize(t))
            .collect()
    }

    /// Number of traces stored for an API (no materialisation).
    pub fn api_trace_count(&self, api: &str) -> usize {
        self.inner.read().arena.api_trace_count(api)
    }

    /// Mean end-to-end latency (ms) over all traces of an API, computed from
    /// the root-latency column without materialising a single trace.
    pub fn api_mean_latency_ms(&self, api: &str) -> f64 {
        self.inner.read().arena.api_mean_latency_ms(api)
    }

    /// Sorted names of the distinct components touched by an API's traces.
    pub fn api_components(&self, api: &str) -> Vec<String> {
        self.inner.read().arena.api_component_names(api)
    }

    /// Collapse an API's traces into at most `cap` weighted representative
    /// traces by structural signature (see
    /// [`TraceArena::weighted_representatives`]).
    pub fn weighted_traces_for_api(&self, api: &str, cap: usize) -> Vec<WeightedTrace> {
        self.inner.read().arena.weighted_representatives(api, cap)
    }

    /// Latest root start time over all traces, in whole seconds.
    pub fn latest_trace_second(&self) -> Option<Seconds> {
        self.inner
            .read()
            .arena
            .max_root_start_us()
            .map(|us| us / 1_000_000)
    }

    /// Metrics of a component, if observed.
    pub fn component_metrics(&self, component: &str) -> Option<ComponentMetrics> {
        self.inner.read().metrics.get(component).cloned()
    }

    /// Convenience: mean of a metric for a component over the whole period.
    pub fn metric_mean(&self, component: &str, kind: MetricKind) -> f64 {
        self.inner
            .read()
            .metrics
            .get(component)
            .map_or(0.0, |m| m.mean(kind))
    }

    /// Convenience: peak of a metric for a component over the whole period.
    pub fn metric_max(&self, component: &str, kind: MetricKind) -> f64 {
        self.inner
            .read()
            .metrics
            .get(component)
            .map_or(0.0, |m| m.max(kind))
    }

    /// A clone of the pairwise traffic record.
    pub fn traffic(&self) -> PairwiseTraffic {
        self.inner.read().traffic.clone()
    }

    /// All directed communication edges observed by the network metrics.
    pub fn traffic_edges(&self) -> Vec<PairKey> {
        self.inner.read().traffic.edges()
    }

    /// `U^{req/resp}_{ci→cj}[t]`: bytes per window on an edge (Eq. 1 input).
    pub fn windowed_traffic(
        &self,
        pair: &PairKey,
        direction: Direction,
        windowing: &Windowing,
        window_count: usize,
    ) -> Vec<f64> {
        self.inner
            .read()
            .traffic
            .windowed_bytes(pair, direction, windowing, window_count)
    }

    /// `I^A_{ci→cj}[t]`: per-API invocation counts on an edge, per window
    /// (Eq. 1 input). Returns a map API → per-window invocation counts.
    ///
    /// A trace contributes all its edge invocations to the window containing
    /// its root start time, matching how the paper aligns traces with the
    /// network counters. Invocation counts are pre-aggregated per edge at
    /// ingest, so only traces that cross the edge are visited.
    pub fn windowed_invocations(
        &self,
        pair: &PairKey,
        windowing: &Windowing,
        window_count: usize,
    ) -> HashMap<String, Vec<f64>> {
        self.inner
            .read()
            .arena
            .windowed_invocations(pair, windowing, window_count)
    }

    /// Number of requests per API whose root start falls in `[start_s, end_s)`.
    pub fn api_request_counts_in(&self, start_s: Seconds, end_s: Seconds) -> HashMap<String, u64> {
        self.inner
            .read()
            .arena
            .api_request_counts_in(start_s, end_s)
    }

    /// End-to-end latencies (ms) of all traces of an API, in time order.
    /// Read straight from the root-latency column.
    pub fn api_latencies_ms(&self, api: &str) -> Vec<f64> {
        self.inner.read().arena.api_latencies_ms(api)
    }

    /// Remove every stored trace, metric, and traffic sample.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.arena.clear();
        inner.metrics.clear();
        inner.traffic = PairwiseTraffic::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanId, TraceId};

    fn trace(id: u64, api: &str, start_us: u64, latency_us: u64) -> Trace {
        let t = TraceId(id);
        let spans = vec![
            Span::new(
                t,
                SpanId(id * 10),
                None,
                "Frontend",
                api,
                start_us,
                latency_us,
            ),
            Span::new(
                t,
                SpanId(id * 10 + 1),
                Some(SpanId(id * 10)),
                "UserService",
                "op",
                start_us + 10,
                latency_us / 2,
            ),
        ];
        Trace::from_spans(spans).unwrap()
    }

    #[test]
    fn ingest_and_query_traces() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.ingest_trace(trace(2, "/login", 5_000_000, 2000));
        store.ingest_trace(trace(3, "/register", 1_000_000, 3000));
        assert_eq!(store.trace_count(), 3);
        assert_eq!(store.apis(), vec!["/login", "/register"]);
        assert_eq!(store.traces_for_api("/login").len(), 2);
        assert_eq!(store.traces_for_api("/missing").len(), 0);
        assert_eq!(store.traces_for_api_in("/login", 0, 5).len(), 1);
        assert_eq!(store.api_latencies_ms("/login"), vec![1.0, 2.0]);
        assert_eq!(store.api_trace_count("/login"), 2);
        assert_eq!(store.api_mean_latency_ms("/login"), 1.5);
        assert_eq!(store.latest_trace_second(), Some(5));
        assert_eq!(
            store.api_components("/login"),
            vec!["Frontend", "UserService"]
        );
    }

    #[test]
    fn recent_traces_respects_limit_and_order() {
        let store = TelemetryStore::new();
        for i in 0..10 {
            store.ingest_trace(trace(i, "/x", i * 1_000_000, 100));
        }
        let recent = store.recent_traces_for_api("/x", 3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].root().start_us, 7_000_000);
        assert_eq!(recent[2].root().start_us, 9_000_000);
        assert_eq!(store.recent_traces_for_api("/x", 100).len(), 10);
    }

    #[test]
    fn metric_ingestion_and_queries() {
        let store = TelemetryStore::new();
        store.record_metric("A", MetricKind::CpuCores, 0, 1.0);
        store.record_metric("A", MetricKind::CpuCores, 1, 3.0);
        store.record_metric("B", MetricKind::MemoryGb, 0, 4.0);
        assert_eq!(store.metric_mean("A", MetricKind::CpuCores), 2.0);
        assert_eq!(store.metric_max("A", MetricKind::CpuCores), 3.0);
        assert_eq!(store.metric_mean("C", MetricKind::CpuCores), 0.0);
        assert!(store.component_metrics("B").is_some());
        assert!(store.component_metrics("C").is_none());
    }

    #[test]
    fn components_cover_metrics_and_traces() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.record_metric("OnlyMetrics", MetricKind::CpuCores, 0, 1.0);
        let comps = store.components();
        assert!(comps.contains(&"Frontend".to_string()));
        assert!(comps.contains(&"UserService".to_string()));
        assert!(comps.contains(&"OnlyMetrics".to_string()));
    }

    #[test]
    fn traffic_and_invocation_windows_align() {
        let store = TelemetryStore::new();
        // Two /login traces in window 0, one in window 1.
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.ingest_trace(trace(2, "/login", 2_000_000, 1000));
        store.ingest_trace(trace(3, "/login", 6_000_000, 1000));
        store.record_traffic("Frontend", "UserService", Direction::Request, 0, 600.0);
        store.record_traffic("Frontend", "UserService", Direction::Request, 6, 300.0);

        let w = Windowing::new(0, 5);
        let pair = PairKey::new("Frontend", "UserService");
        let traffic = store.windowed_traffic(&pair, Direction::Request, &w, 2);
        assert_eq!(traffic, vec![600.0, 300.0]);

        let inv = store.windowed_invocations(&pair, &w, 2);
        assert_eq!(inv["/login"], vec![2.0, 1.0]);
    }

    #[test]
    fn api_request_counts_by_window() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/a", 0, 10));
        store.ingest_trace(trace(2, "/a", 1_000_000, 10));
        store.ingest_trace(trace(3, "/b", 9_000_000, 10));
        let counts = store.api_request_counts_in(0, 5);
        assert_eq!(counts["/a"], 2);
        assert!(!counts.contains_key("/b"));
    }

    #[test]
    fn weighted_traces_collapse_structural_duplicates() {
        let store = TelemetryStore::new();
        for i in 0..6 {
            store.ingest_trace(trace(i, "/a", i * 1_000_000, 100 * (i + 1)));
        }
        let reps = store.weighted_traces_for_api("/a", 50);
        assert_eq!(reps.len(), 1, "six structurally identical traces");
        assert_eq!(reps[0].weight, 6.0);
    }

    #[test]
    fn clear_removes_everything() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/a", 0, 10));
        store.record_metric("A", MetricKind::CpuCores, 0, 1.0);
        store.record_traffic("A", "B", Direction::Request, 0, 1.0);
        store.clear();
        assert_eq!(store.trace_count(), 0);
        assert!(store.apis().is_empty());
        assert!(store.traffic_edges().is_empty());
        assert!(store.component_metrics("A").is_none());
    }
}
