//! The telemetry store: the "telemetry server" Atlas queries.
//!
//! In the paper's deployment this role is played by Jaeger's query service
//! and Prometheus. Here the store holds everything the simulator emitted and
//! offers the query surface Atlas needs during application learning (paper
//! §3): traces by API and time range, per-component metric series, pairwise
//! traffic aggregates, and trace-derived invocation counts aligned on the
//! same windows as the traffic counters.
//!
//! Traces are not kept as a flat `Vec<Trace>`: they are normalised into a
//! columnar [`TraceArena`] at ingest (interned names, SoA span columns,
//! per-API and per-edge indexes), so every query answers from an index
//! instead of rescanning the whole store, and learning-stage consumers can
//! borrow [`crate::arena::TraceView`]s instead of cloning span trees.

use std::collections::{BTreeMap, HashMap};

use parking_lot::RwLock;

use crate::arena::{TraceArena, WeightedTrace};
use crate::metrics::{ComponentMetrics, MetricKind};
use crate::network::{Direction, PairKey, PairwiseTraffic};
use crate::trace::Trace;
use crate::window::Windowing;
use crate::Seconds;

/// In-memory telemetry server.
///
/// The store is internally synchronised so that a simulator thread can keep
/// appending while the advisor reads, mirroring a live telemetry backend.
///
/// # Streaming ingest
///
/// Beyond the batch surface, the store supports resident-service operation:
/// [`TelemetryStore::ingest_batch`] appends a batch of traces and (when a
/// retention window is configured) evicts traces older than the window
/// behind the latest observed root start, keeping every index consistent.
/// Every mutation of an API's trace set — ingest or eviction — stamps that
/// API with a monotonically increasing store epoch, so incremental consumers
/// can ask [`TelemetryStore::dirty_apis_since`] "which APIs changed since my
/// last sync" instead of relearning the world.
#[derive(Debug, Default)]
pub struct TelemetryStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    arena: TraceArena,
    metrics: BTreeMap<String, ComponentMetrics>,
    traffic: PairwiseTraffic,
    /// Monotonic change counter: bumped once per mutating ingest call.
    epoch: u64,
    /// API → the epoch of the last change to its trace set (ingest or
    /// eviction). A `BTreeMap` so dirty sets come out sorted.
    api_epochs: BTreeMap<String, u64>,
    /// When set, [`TelemetryStore::ingest_batch`] evicts traces whose root
    /// starts more than this many seconds before the latest root start.
    retention_window_s: Option<Seconds>,
}

impl StoreInner {
    /// Push one trace, stamping its API with the current epoch.
    fn push_stamped(&mut self, trace: &Trace) {
        let api = &trace.root().operation;
        match self.api_epochs.get_mut(api) {
            Some(e) => *e = self.epoch,
            None => {
                self.api_epochs.insert(api.clone(), self.epoch);
            }
        }
        self.arena.push(trace);
    }

    /// Enforce the retention window, if any. Returns the eviction count.
    fn enforce_retention(&mut self) -> usize {
        let (Some(window_s), Some(max_us)) =
            (self.retention_window_s, self.arena.max_root_start_us())
        else {
            return 0;
        };
        let cutoff_us = max_us.saturating_sub(window_s.saturating_mul(1_000_000));
        if cutoff_us == 0 {
            return 0;
        }
        let before = self.arena.len();
        for api in self.arena.evict_older_than(cutoff_us) {
            self.api_epochs.insert(api, self.epoch);
        }
        before - self.arena.len()
    }
}

/// What one [`TelemetryStore::ingest_batch`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Number of traces appended by the batch.
    pub ingested: usize,
    /// Number of traces evicted by the retention window.
    pub evicted: usize,
    /// The store epoch after the batch. Pass it (or the epoch returned by
    /// [`TelemetryStore::dirty_apis_since`]) as the next sync point.
    pub epoch: u64,
}

impl TelemetryStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty store that retains only the trailing `window_s`
    /// seconds of traces (relative to the latest observed root start).
    /// Retention is enforced on every [`TelemetryStore::ingest_batch`].
    pub fn with_retention_window_s(window_s: Seconds) -> Self {
        let store = Self::default();
        store.inner.write().retention_window_s = Some(window_s);
        store
    }

    /// Change (or clear) the retention window. Takes effect on the next
    /// [`TelemetryStore::ingest_batch`].
    pub fn set_retention_window_s(&self, window_s: Option<Seconds>) {
        self.inner.write().retention_window_s = window_s;
    }

    /// The configured retention window, if any.
    pub fn retention_window_s(&self) -> Option<Seconds> {
        self.inner.read().retention_window_s
    }

    // ------------------------------------------------------------------
    // Ingestion (used by the simulator and the resident service).
    // ------------------------------------------------------------------

    /// Ingest a completed trace.
    pub fn ingest_trace(&self, trace: Trace) {
        let mut inner = self.inner.write();
        inner.epoch += 1;
        inner.push_stamped(&trace);
    }

    /// Ingest many traces at once.
    pub fn ingest_traces(&self, traces: impl IntoIterator<Item = Trace>) {
        let mut inner = self.inner.write();
        let mut bumped = false;
        for trace in traces {
            if !bumped {
                inner.epoch += 1;
                bumped = true;
            }
            inner.push_stamped(&trace);
        }
    }

    /// Streaming ingest: append a batch of traces, then enforce the
    /// retention window (evicting traces older than the window behind the
    /// latest root start, with every index kept consistent).
    ///
    /// The whole batch shares one epoch; every API whose trace set changed —
    /// by ingest or by eviction — is stamped with it, so
    /// [`TelemetryStore::dirty_apis_since`] reports exactly the APIs a
    /// consumer needs to resync.
    pub fn ingest_batch(&self, traces: impl IntoIterator<Item = Trace>) -> IngestReport {
        let mut inner = self.inner.write();
        let before = inner.arena.len();
        let mut bumped = false;
        for trace in traces {
            if !bumped {
                inner.epoch += 1;
                bumped = true;
            }
            inner.push_stamped(&trace);
        }
        let ingested = inner.arena.len() - before;
        let evicted = if bumped { inner.enforce_retention() } else { 0 };
        IngestReport {
            ingested,
            evicted,
            epoch: inner.epoch,
        }
    }

    // ------------------------------------------------------------------
    // Incremental sync surface (used by the resident advisor).
    // ------------------------------------------------------------------

    /// The current store epoch. Starts at 0; bumped once per mutating
    /// ingest call.
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    /// The APIs whose trace set changed after epoch `since` (sorted), and
    /// the current epoch to use as the next sync point.
    ///
    /// An API evicted down to zero traces still appears here — consumers
    /// observe the disappearance and drop the endpoint.
    pub fn dirty_apis_since(&self, since: u64) -> (u64, Vec<String>) {
        let inner = self.inner.read();
        let dirty = inner
            .api_epochs
            .iter()
            .filter(|&(_, &e)| e > since)
            .map(|(api, _)| api.clone())
            .collect();
        (inner.epoch, dirty)
    }

    /// Record a component metric observation.
    pub fn record_metric(
        &self,
        component: &str,
        kind: MetricKind,
        timestamp_s: Seconds,
        value: f64,
    ) {
        let mut inner = self.inner.write();
        inner
            .metrics
            .entry(component.to_string())
            .or_insert_with(|| ComponentMetrics::new(component))
            .record(kind, timestamp_s, value);
    }

    /// Record pairwise traffic bytes.
    pub fn record_traffic(
        &self,
        from: &str,
        to: &str,
        direction: Direction,
        timestamp_s: Seconds,
        bytes: f64,
    ) {
        self.inner
            .write()
            .traffic
            .record(PairKey::new(from, to), direction, timestamp_s, bytes);
    }

    // ------------------------------------------------------------------
    // Query surface (used by Atlas and the baselines).
    // ------------------------------------------------------------------

    /// Run `f` against the columnar trace arena under the read lock.
    ///
    /// This is the borrow-based escape hatch for learning-stage consumers
    /// that want [`crate::arena::TraceView`]s instead of owned [`Trace`]s.
    pub fn with_arena<R>(&self, f: impl FnOnce(&TraceArena) -> R) -> R {
        f(&self.inner.read().arena)
    }

    /// Total number of stored traces.
    pub fn trace_count(&self) -> usize {
        self.inner.read().arena.len()
    }

    /// Total number of stored spans.
    pub fn span_count(&self) -> usize {
        self.inner.read().arena.span_count()
    }

    /// Names of all user-facing APIs observed (root operations of traces),
    /// sorted and deduplicated. Answered from the per-API index: O(#APIs),
    /// not O(#traces).
    pub fn apis(&self) -> Vec<String> {
        self.inner.read().arena.api_names()
    }

    /// Names of all components observed in traces or metrics, sorted.
    /// Answered from the interner and the metric keys: no per-span scan.
    pub fn components(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut v: Vec<String> = inner.metrics.keys().cloned().collect();
        v.extend(inner.arena.component_names().map(str::to_string));
        v.sort();
        v.dedup();
        v
    }

    /// All traces belonging to a given API, materialised in time order.
    pub fn traces_for_api(&self, api: &str) -> Vec<Trace> {
        self.inner.read().arena.traces_for_api(api)
    }

    /// Up to `limit` most recent traces of an API (by root start time).
    /// Only the selected traces are materialised.
    pub fn recent_traces_for_api(&self, api: &str, limit: usize) -> Vec<Trace> {
        self.inner.read().arena.recent_traces_for_api(api, limit)
    }

    /// All traces of an API whose root span starts inside `[start_s, end_s)`,
    /// located by binary search over the time-sorted per-API index.
    pub fn traces_for_api_in(&self, api: &str, start_s: Seconds, end_s: Seconds) -> Vec<Trace> {
        let inner = self.inner.read();
        inner
            .arena
            .api_trace_indices_in(api, start_s, end_s)
            .iter()
            .map(|&t| inner.arena.materialize(t))
            .collect()
    }

    /// Number of traces stored for an API (no materialisation).
    pub fn api_trace_count(&self, api: &str) -> usize {
        self.inner.read().arena.api_trace_count(api)
    }

    /// Mean end-to-end latency (ms) over all traces of an API, computed from
    /// the root-latency column without materialising a single trace.
    pub fn api_mean_latency_ms(&self, api: &str) -> f64 {
        self.inner.read().arena.api_mean_latency_ms(api)
    }

    /// Sorted names of the distinct components touched by an API's traces.
    pub fn api_components(&self, api: &str) -> Vec<String> {
        self.inner.read().arena.api_component_names(api)
    }

    /// Collapse an API's traces into at most `cap` weighted representative
    /// traces by structural signature (see
    /// [`TraceArena::weighted_representatives`]).
    pub fn weighted_traces_for_api(&self, api: &str, cap: usize) -> Vec<WeightedTrace> {
        self.inner.read().arena.weighted_representatives(api, cap)
    }

    /// Latest root start time over all traces, in whole seconds.
    pub fn latest_trace_second(&self) -> Option<Seconds> {
        self.inner
            .read()
            .arena
            .max_root_start_us()
            .map(|us| us / 1_000_000)
    }

    /// Metrics of a component, if observed.
    pub fn component_metrics(&self, component: &str) -> Option<ComponentMetrics> {
        self.inner.read().metrics.get(component).cloned()
    }

    /// Convenience: mean of a metric for a component over the whole period.
    pub fn metric_mean(&self, component: &str, kind: MetricKind) -> f64 {
        self.inner
            .read()
            .metrics
            .get(component)
            .map_or(0.0, |m| m.mean(kind))
    }

    /// Convenience: peak of a metric for a component over the whole period.
    pub fn metric_max(&self, component: &str, kind: MetricKind) -> f64 {
        self.inner
            .read()
            .metrics
            .get(component)
            .map_or(0.0, |m| m.max(kind))
    }

    /// A clone of the pairwise traffic record.
    pub fn traffic(&self) -> PairwiseTraffic {
        self.inner.read().traffic.clone()
    }

    /// All directed communication edges observed by the network metrics.
    pub fn traffic_edges(&self) -> Vec<PairKey> {
        self.inner.read().traffic.edges()
    }

    /// `U^{req/resp}_{ci→cj}[t]`: bytes per window on an edge (Eq. 1 input).
    pub fn windowed_traffic(
        &self,
        pair: &PairKey,
        direction: Direction,
        windowing: &Windowing,
        window_count: usize,
    ) -> Vec<f64> {
        self.inner
            .read()
            .traffic
            .windowed_bytes(pair, direction, windowing, window_count)
    }

    /// `I^A_{ci→cj}[t]`: per-API invocation counts on an edge, per window
    /// (Eq. 1 input). Returns a map API → per-window invocation counts.
    ///
    /// A trace contributes all its edge invocations to the window containing
    /// its root start time, matching how the paper aligns traces with the
    /// network counters. Invocation counts are pre-aggregated per edge at
    /// ingest, so only traces that cross the edge are visited.
    pub fn windowed_invocations(
        &self,
        pair: &PairKey,
        windowing: &Windowing,
        window_count: usize,
    ) -> HashMap<String, Vec<f64>> {
        self.inner
            .read()
            .arena
            .windowed_invocations(pair, windowing, window_count)
    }

    /// Number of requests per API whose root start falls in `[start_s, end_s)`.
    pub fn api_request_counts_in(&self, start_s: Seconds, end_s: Seconds) -> HashMap<String, u64> {
        self.inner
            .read()
            .arena
            .api_request_counts_in(start_s, end_s)
    }

    /// End-to-end latencies (ms) of all traces of an API, in time order.
    /// Read straight from the root-latency column.
    pub fn api_latencies_ms(&self, api: &str) -> Vec<f64> {
        self.inner.read().arena.api_latencies_ms(api)
    }

    /// Remove every stored trace, metric, and traffic sample. The epoch
    /// keeps counting (a clear is a change), the dirty set resets, and the
    /// retention window is preserved.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.arena.clear();
        inner.metrics.clear();
        inner.traffic = PairwiseTraffic::new();
        inner.epoch += 1;
        inner.api_epochs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanId, TraceId};

    fn trace(id: u64, api: &str, start_us: u64, latency_us: u64) -> Trace {
        let t = TraceId(id);
        let spans = vec![
            Span::new(
                t,
                SpanId(id * 10),
                None,
                "Frontend",
                api,
                start_us,
                latency_us,
            ),
            Span::new(
                t,
                SpanId(id * 10 + 1),
                Some(SpanId(id * 10)),
                "UserService",
                "op",
                start_us + 10,
                latency_us / 2,
            ),
        ];
        Trace::from_spans(spans).unwrap()
    }

    #[test]
    fn ingest_and_query_traces() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.ingest_trace(trace(2, "/login", 5_000_000, 2000));
        store.ingest_trace(trace(3, "/register", 1_000_000, 3000));
        assert_eq!(store.trace_count(), 3);
        assert_eq!(store.apis(), vec!["/login", "/register"]);
        assert_eq!(store.traces_for_api("/login").len(), 2);
        assert_eq!(store.traces_for_api("/missing").len(), 0);
        assert_eq!(store.traces_for_api_in("/login", 0, 5).len(), 1);
        assert_eq!(store.api_latencies_ms("/login"), vec![1.0, 2.0]);
        assert_eq!(store.api_trace_count("/login"), 2);
        assert_eq!(store.api_mean_latency_ms("/login"), 1.5);
        assert_eq!(store.latest_trace_second(), Some(5));
        assert_eq!(
            store.api_components("/login"),
            vec!["Frontend", "UserService"]
        );
    }

    #[test]
    fn recent_traces_respects_limit_and_order() {
        let store = TelemetryStore::new();
        for i in 0..10 {
            store.ingest_trace(trace(i, "/x", i * 1_000_000, 100));
        }
        let recent = store.recent_traces_for_api("/x", 3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].root().start_us, 7_000_000);
        assert_eq!(recent[2].root().start_us, 9_000_000);
        assert_eq!(store.recent_traces_for_api("/x", 100).len(), 10);
    }

    #[test]
    fn metric_ingestion_and_queries() {
        let store = TelemetryStore::new();
        store.record_metric("A", MetricKind::CpuCores, 0, 1.0);
        store.record_metric("A", MetricKind::CpuCores, 1, 3.0);
        store.record_metric("B", MetricKind::MemoryGb, 0, 4.0);
        assert_eq!(store.metric_mean("A", MetricKind::CpuCores), 2.0);
        assert_eq!(store.metric_max("A", MetricKind::CpuCores), 3.0);
        assert_eq!(store.metric_mean("C", MetricKind::CpuCores), 0.0);
        assert!(store.component_metrics("B").is_some());
        assert!(store.component_metrics("C").is_none());
    }

    #[test]
    fn components_cover_metrics_and_traces() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.record_metric("OnlyMetrics", MetricKind::CpuCores, 0, 1.0);
        let comps = store.components();
        assert!(comps.contains(&"Frontend".to_string()));
        assert!(comps.contains(&"UserService".to_string()));
        assert!(comps.contains(&"OnlyMetrics".to_string()));
    }

    #[test]
    fn traffic_and_invocation_windows_align() {
        let store = TelemetryStore::new();
        // Two /login traces in window 0, one in window 1.
        store.ingest_trace(trace(1, "/login", 0, 1000));
        store.ingest_trace(trace(2, "/login", 2_000_000, 1000));
        store.ingest_trace(trace(3, "/login", 6_000_000, 1000));
        store.record_traffic("Frontend", "UserService", Direction::Request, 0, 600.0);
        store.record_traffic("Frontend", "UserService", Direction::Request, 6, 300.0);

        let w = Windowing::new(0, 5);
        let pair = PairKey::new("Frontend", "UserService");
        let traffic = store.windowed_traffic(&pair, Direction::Request, &w, 2);
        assert_eq!(traffic, vec![600.0, 300.0]);

        let inv = store.windowed_invocations(&pair, &w, 2);
        assert_eq!(inv["/login"], vec![2.0, 1.0]);
    }

    #[test]
    fn api_request_counts_by_window() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/a", 0, 10));
        store.ingest_trace(trace(2, "/a", 1_000_000, 10));
        store.ingest_trace(trace(3, "/b", 9_000_000, 10));
        let counts = store.api_request_counts_in(0, 5);
        assert_eq!(counts["/a"], 2);
        assert!(!counts.contains_key("/b"));
    }

    #[test]
    fn weighted_traces_collapse_structural_duplicates() {
        let store = TelemetryStore::new();
        for i in 0..6 {
            store.ingest_trace(trace(i, "/a", i * 1_000_000, 100 * (i + 1)));
        }
        let reps = store.weighted_traces_for_api("/a", 50);
        assert_eq!(reps.len(), 1, "six structurally identical traces");
        assert_eq!(reps[0].weight, 6.0);
    }

    #[test]
    fn ingest_batch_reports_and_stamps_epochs() {
        let store = TelemetryStore::new();
        assert_eq!(store.epoch(), 0);
        let report = store.ingest_batch([trace(1, "/a", 0, 10), trace(2, "/b", 1_000_000, 10)]);
        assert_eq!(report.ingested, 2);
        assert_eq!(report.evicted, 0);
        assert_eq!(report.epoch, 1);

        // Both APIs are dirty relative to epoch 0; none relative to 1.
        let (epoch, dirty) = store.dirty_apis_since(0);
        assert_eq!(epoch, 1);
        assert_eq!(dirty, vec!["/a", "/b"]);
        assert_eq!(store.dirty_apis_since(1).1, Vec::<String>::new());

        // A second batch touching only /b dirties only /b.
        let report = store.ingest_batch([trace(3, "/b", 2_000_000, 10)]);
        assert_eq!(report.epoch, 2);
        assert_eq!(store.dirty_apis_since(1).1, vec!["/b"]);

        // Empty batches change nothing.
        let report = store.ingest_batch(std::iter::empty());
        assert_eq!((report.ingested, report.evicted, report.epoch), (0, 0, 2));

        // Single-trace ingest shares the same epoch discipline.
        store.ingest_trace(trace(4, "/a", 3_000_000, 10));
        assert_eq!(store.dirty_apis_since(2), (3, vec!["/a".to_string()]));
    }

    #[test]
    fn retention_window_evicts_and_dirties_affected_apis() {
        let store = TelemetryStore::with_retention_window_s(10);
        assert_eq!(store.retention_window_s(), Some(10));
        let report = store.ingest_batch([
            trace(1, "/old", 0, 10),
            trace(2, "/both", 2_000_000, 10),
            trace(3, "/both", 5_000_000, 10),
        ]);
        assert_eq!(report.evicted, 0, "everything inside the window");

        // A batch at t=15s pushes the cutoff to 5s: /old's trace and
        // /both's first trace fall out.
        let report = store.ingest_batch([trace(4, "/new", 15_000_000, 10)]);
        assert_eq!(report.ingested, 1);
        assert_eq!(report.evicted, 2);
        assert_eq!(store.trace_count(), 2);
        assert_eq!(store.apis(), vec!["/both", "/new"]);
        assert_eq!(store.api_trace_count("/old"), 0);
        // Everything that changed this epoch is dirty: the ingested API and
        // both evicted ones.
        let (_, dirty) = store.dirty_apis_since(1);
        assert_eq!(dirty, vec!["/both", "/new", "/old"]);

        // Widening the window stops further eviction.
        store.set_retention_window_s(Some(1_000));
        let report = store.ingest_batch([trace(5, "/new", 16_000_000, 10)]);
        assert_eq!(report.evicted, 0);
        assert_eq!(store.trace_count(), 3);
    }

    #[test]
    fn clear_removes_everything() {
        let store = TelemetryStore::new();
        store.ingest_trace(trace(1, "/a", 0, 10));
        store.record_metric("A", MetricKind::CpuCores, 0, 1.0);
        store.record_traffic("A", "B", Direction::Request, 0, 1.0);
        store.clear();
        assert_eq!(store.trace_count(), 0);
        assert!(store.apis().is_empty());
        assert!(store.traffic_edges().is_empty());
        assert!(store.component_metrics("A").is_none());
    }
}
