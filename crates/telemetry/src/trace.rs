//! Traces: trees of spans describing the lifetime of one API request.
//!
//! The trace structure is what lets Atlas learn execution workflows without
//! any knowledge of the application implementation (paper §4.1.1): sibling
//! spans can run in *parallel*, *sequentially*, or in the *background*
//! relative to their parent, and delay injection must respect those
//! relations when propagating a network delay through the tree.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::span::{Span, SpanId, TraceId};
use crate::Micros;

/// Relation between two sibling spans (children of the same parent), derived
/// from their temporal overlap as described in paper §4.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiblingRelation {
    /// The two spans' durations overlap significantly: they execute in
    /// parallel (e.g. `URLShortenService` and `MediaService` in Figure 6).
    Parallel,
    /// The spans do not overlap: the later one starts only after the earlier
    /// one finished.
    Sequential,
}

/// Error raised when a set of spans cannot be assembled into a valid trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The span set is empty.
    Empty,
    /// No root span (span without a parent) was found.
    MissingRoot,
    /// More than one root span was found.
    MultipleRoots,
    /// A span references a parent id that is not part of the trace.
    DanglingParent(SpanId),
    /// Two spans share the same span id.
    DuplicateSpan(SpanId),
    /// Spans from different trace ids were mixed together.
    MixedTraceIds,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no spans"),
            TraceError::MissingRoot => write!(f, "trace has no root span"),
            TraceError::MultipleRoots => write!(f, "trace has more than one root span"),
            TraceError::DanglingParent(id) => {
                write!(f, "span references unknown parent {id}")
            }
            TraceError::DuplicateSpan(id) => write!(f, "duplicate span id {id}"),
            TraceError::MixedTraceIds => write!(f, "spans from different traces were mixed"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A node of the reconstructed trace tree: a span plus the indices of its
/// children, ordered by start time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceNode {
    /// The span stored at this node.
    pub span: Span,
    /// Indices (into [`Trace::nodes`]) of the children, ordered by start
    /// timestamp.
    pub children: Vec<usize>,
    /// Index of the parent node, if any.
    pub parent: Option<usize>,
}

/// A fully-assembled distributed trace: a tree of spans rooted at the entry
/// component that received the API request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Trace identifier shared by all spans.
    pub trace_id: TraceId,
    /// All nodes; index 0 is always the root.
    pub nodes: Vec<TraceNode>,
    index_of: HashMap<SpanId, usize>,
}

impl Trace {
    /// Fraction of mutual overlap above which two siblings are considered to
    /// run in parallel. The paper says the durations "overlap significantly";
    /// a 10 % threshold of the shorter sibling's duration is used here so
    /// that incidental microsecond overlaps caused by clock granularity are
    /// still classified as sequential.
    pub const PARALLEL_OVERLAP_FRACTION: f64 = 0.10;

    /// Assemble a trace from an unordered set of spans.
    ///
    /// Validates that the spans form a single-rooted tree and share a trace
    /// id. Children are ordered by start timestamp, which the delay-injection
    /// algorithm relies on.
    pub fn from_spans(mut spans: Vec<Span>) -> Result<Self, TraceError> {
        if spans.is_empty() {
            return Err(TraceError::Empty);
        }
        let trace_id = spans[0].trace_id;
        if spans.iter().any(|s| s.trace_id != trace_id) {
            return Err(TraceError::MixedTraceIds);
        }
        // Stable order: by start time, then span id, so tree construction is
        // deterministic regardless of input order.
        spans.sort_by_key(|s| (s.start_us, s.span_id));

        let mut index_of: HashMap<SpanId, usize> = HashMap::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            if index_of.insert(s.span_id, i).is_some() {
                return Err(TraceError::DuplicateSpan(s.span_id));
            }
        }

        let mut roots = 0usize;
        let mut nodes: Vec<TraceNode> = spans
            .into_iter()
            .map(|span| TraceNode {
                span,
                children: Vec::new(),
                parent: None,
            })
            .collect();

        for i in 0..nodes.len() {
            match nodes[i].span.parent_id {
                None => roots += 1,
                Some(pid) => {
                    let Some(&pi) = index_of.get(&pid) else {
                        return Err(TraceError::DanglingParent(nodes[i].span.span_id));
                    };
                    nodes[i].parent = Some(pi);
                    nodes[pi].children.push(i);
                }
            }
        }
        if roots == 0 {
            return Err(TraceError::MissingRoot);
        }
        if roots > 1 {
            return Err(TraceError::MultipleRoots);
        }
        // Children are already in start-time order because the node vector is
        // sorted by start time and we push in index order.

        // Move the root to index 0 for convenient access.
        let root_idx = nodes
            .iter()
            .position(|n| n.parent.is_none())
            .expect("root existence checked above");
        if root_idx != 0 {
            // Rebuild with the root first by remapping indices.
            let mut order: Vec<usize> = (0..nodes.len()).collect();
            order.swap(0, root_idx);
            let mut remap = vec![0usize; nodes.len()];
            for (new_i, &old_i) in order.iter().enumerate() {
                remap[old_i] = new_i;
            }
            let mut new_nodes: Vec<TraceNode> =
                order.iter().map(|&old_i| nodes[old_i].clone()).collect();
            for n in &mut new_nodes {
                n.parent = n.parent.map(|p| remap[p]);
                for c in &mut n.children {
                    *c = remap[*c];
                }
            }
            // Restore child ordering by start time under the new indices.
            let starts: Vec<Micros> = new_nodes.iter().map(|n| n.span.start_us).collect();
            for n in &mut new_nodes {
                n.children.sort_by_key(|&c| (starts[c], c));
            }
            nodes = new_nodes;
            index_of = nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (n.span.span_id, i))
                .collect();
        }

        Ok(Self {
            trace_id,
            nodes,
            index_of,
        })
    }

    /// The root span (entry component of the API request).
    pub fn root(&self) -> &Span {
        &self.nodes[0].span
    }

    /// Name of the user-facing API endpoint this trace belongs to, which by
    /// convention is the operation name of the root span.
    pub fn api(&self) -> &str {
        &self.root().operation
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the trace is empty (never true for a validated trace).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// End-to-end latency of the API request in microseconds.
    ///
    /// This is the makespan of the foreground work: from the root's start to
    /// the root span's end. Background spans that outlive the root do not
    /// contribute (the client has already received its response).
    pub fn end_to_end_latency_us(&self) -> Micros {
        self.root().duration_us
    }

    /// Index of a node given its span id.
    pub fn index_of(&self, span: SpanId) -> Option<usize> {
        self.index_of.get(&span).copied()
    }

    /// Iterate over all spans (pre-order is not guaranteed; use
    /// [`Trace::preorder`] for tree order).
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.nodes.iter().map(|n| &n.span)
    }

    /// Pre-order traversal of node indices (root first, children in start
    /// time order).
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            out.push(i);
            // Push children in reverse start order so they pop in order.
            for &c in self.nodes[i].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Set of distinct component names touched by this trace.
    pub fn components(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .nodes
            .iter()
            .map(|n| n.span.component.as_str())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Count the number of caller→callee invocations between distinct
    /// components, i.e. `I^A_{ci→cj}` of paper Eq. (1) for this single trace.
    ///
    /// Self-calls (parent and child on the same component) are ignored since
    /// they do not cross the network.
    pub fn invocation_counts(&self) -> HashMap<(String, String), u64> {
        let mut counts: HashMap<(String, String), u64> = HashMap::new();
        for node in &self.nodes {
            let Some(pi) = node.parent else { continue };
            let caller = &self.nodes[pi].span.component;
            let callee = &node.span.component;
            if caller == callee {
                continue;
            }
            *counts.entry((caller.clone(), callee.clone())).or_insert(0) += 1;
        }
        counts
    }

    /// Classify the relation between a span and its *background* status:
    /// a span is a background operation if it ends after its parent ends
    /// (paper §4.1.1, e.g. `WriteHomeTimeline`).
    pub fn is_background(&self, node_idx: usize) -> bool {
        let node = &self.nodes[node_idx];
        match node.parent {
            None => false,
            Some(pi) => node.span.end_us() > self.nodes[pi].span.end_us(),
        }
    }

    /// Classify the relation between two sibling spans.
    ///
    /// Returns `None` if the spans are not siblings (different parents).
    pub fn sibling_relation(&self, a: usize, b: usize) -> Option<SiblingRelation> {
        let (na, nb) = (&self.nodes[a], &self.nodes[b]);
        if na.parent != nb.parent || na.parent.is_none() {
            return None;
        }
        let overlap = na.span.overlap_us(&nb.span) as f64;
        let shorter = na.span.duration_us.min(nb.span.duration_us).max(1) as f64;
        if overlap / shorter >= Self::PARALLEL_OVERLAP_FRACTION {
            Some(SiblingRelation::Parallel)
        } else {
            Some(SiblingRelation::Sequential)
        }
    }

    /// The depth of the trace tree (root has depth 1).
    pub fn depth(&self) -> usize {
        fn rec(t: &Trace, i: usize) -> usize {
            1 + t.nodes[i]
                .children
                .iter()
                .map(|&c| rec(t, c))
                .max()
                .unwrap_or(0)
        }
        rec(self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, TraceId};

    /// Build the /compose-like trace of paper Figure 6a:
    /// Frontend (0..1000)
    ///   ├── URLShorten  (100..300)   parallel with Media
    ///   ├── Media       (150..400)
    ///   ├── PostStorage (450..600)   sequential after the two
    ///   └── WriteHomeTimeline (650..1500)  background (ends after parent)
    fn compose_trace() -> Trace {
        let t = TraceId(9);
        let spans = vec![
            Span::new(t, SpanId(0), None, "FrontendNGINX", "/composeAPI", 0, 1000),
            Span::new(
                t,
                SpanId(1),
                Some(SpanId(0)),
                "URLShortenService",
                "shorten",
                100,
                200,
            ),
            Span::new(
                t,
                SpanId(2),
                Some(SpanId(0)),
                "MediaService",
                "store",
                150,
                250,
            ),
            Span::new(
                t,
                SpanId(3),
                Some(SpanId(0)),
                "PostStorageService",
                "write",
                450,
                150,
            ),
            Span::new(
                t,
                SpanId(4),
                Some(SpanId(0)),
                "WriteHomeTimelineService",
                "fanout",
                650,
                850,
            ),
        ];
        Trace::from_spans(spans).unwrap()
    }

    #[test]
    fn builds_tree_and_finds_root() {
        let tr = compose_trace();
        assert_eq!(tr.len(), 5);
        assert_eq!(tr.root().component, "FrontendNGINX");
        assert_eq!(tr.api(), "/composeAPI");
        assert_eq!(tr.end_to_end_latency_us(), 1000);
        assert_eq!(tr.depth(), 2);
    }

    #[test]
    fn children_sorted_by_start_time() {
        let tr = compose_trace();
        let starts: Vec<u64> = tr.nodes[0]
            .children
            .iter()
            .map(|&c| tr.nodes[c].span.start_us)
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn root_is_index_zero_even_if_not_first_by_time() {
        // A root span starting *after* one of its children's recorded start
        // (possible with clock skew) must still end up at index 0.
        let t = TraceId(1);
        let spans = vec![
            Span::new(t, SpanId(10), Some(SpanId(11)), "B", "op", 5, 10),
            Span::new(t, SpanId(11), None, "A", "/api", 6, 100),
        ];
        let tr = Trace::from_spans(spans).unwrap();
        assert_eq!(tr.root().component, "A");
        assert!(tr.nodes[0].parent.is_none());
    }

    #[test]
    fn rejects_invalid_span_sets() {
        assert_eq!(Trace::from_spans(vec![]).unwrap_err(), TraceError::Empty);

        let t = TraceId(2);
        let no_root = vec![Span::new(t, SpanId(0), Some(SpanId(99)), "A", "x", 0, 1)];
        assert_eq!(
            Trace::from_spans(no_root).unwrap_err(),
            TraceError::DanglingParent(SpanId(0))
        );

        let two_roots = vec![
            Span::new(t, SpanId(0), None, "A", "x", 0, 1),
            Span::new(t, SpanId(1), None, "B", "y", 0, 1),
        ];
        assert_eq!(
            Trace::from_spans(two_roots).unwrap_err(),
            TraceError::MultipleRoots
        );

        let dup = vec![
            Span::new(t, SpanId(0), None, "A", "x", 0, 1),
            Span::new(t, SpanId(0), Some(SpanId(0)), "B", "y", 0, 1),
        ];
        assert_eq!(
            Trace::from_spans(dup).unwrap_err(),
            TraceError::DuplicateSpan(SpanId(0))
        );

        let mixed = vec![
            Span::new(TraceId(1), SpanId(0), None, "A", "x", 0, 1),
            Span::new(TraceId(2), SpanId(1), Some(SpanId(0)), "B", "y", 0, 1),
        ];
        assert_eq!(
            Trace::from_spans(mixed).unwrap_err(),
            TraceError::MixedTraceIds
        );
    }

    #[test]
    fn sibling_relations_match_figure6() {
        let tr = compose_trace();
        let url = tr.index_of(SpanId(1)).unwrap();
        let media = tr.index_of(SpanId(2)).unwrap();
        let post = tr.index_of(SpanId(3)).unwrap();
        assert_eq!(
            tr.sibling_relation(url, media),
            Some(SiblingRelation::Parallel)
        );
        assert_eq!(
            tr.sibling_relation(url, post),
            Some(SiblingRelation::Sequential)
        );
        // Root has no sibling.
        assert_eq!(tr.sibling_relation(0, url), None);
    }

    #[test]
    fn background_detection_matches_figure6() {
        let tr = compose_trace();
        let wht = tr.index_of(SpanId(4)).unwrap();
        let post = tr.index_of(SpanId(3)).unwrap();
        assert!(tr.is_background(wht));
        assert!(!tr.is_background(post));
        assert!(!tr.is_background(0), "root is never background");
    }

    #[test]
    fn invocation_counts_cover_all_cross_component_edges() {
        let tr = compose_trace();
        let counts = tr.invocation_counts();
        assert_eq!(counts.len(), 4);
        assert_eq!(
            counts[&("FrontendNGINX".to_string(), "URLShortenService".to_string())],
            1
        );
    }

    #[test]
    fn self_calls_are_not_counted_as_invocations() {
        let t = TraceId(3);
        let spans = vec![
            Span::new(t, SpanId(0), None, "A", "/x", 0, 100),
            Span::new(t, SpanId(1), Some(SpanId(0)), "A", "internal", 10, 20),
            Span::new(t, SpanId(2), Some(SpanId(1)), "B", "db", 12, 5),
        ];
        let tr = Trace::from_spans(spans).unwrap();
        let counts = tr.invocation_counts();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&("A".to_string(), "B".to_string())], 1);
    }

    #[test]
    fn preorder_visits_every_node_once_root_first() {
        let tr = compose_trace();
        let order = tr.preorder();
        assert_eq!(order.len(), tr.len());
        assert_eq!(order[0], 0);
        let mut seen = order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), tr.len());
    }

    #[test]
    fn components_are_deduplicated_and_sorted() {
        let tr = compose_trace();
        let comps = tr.components();
        assert_eq!(comps.len(), 5);
        let mut sorted = comps.clone();
        sorted.sort_unstable();
        assert_eq!(comps, sorted);
    }
}
