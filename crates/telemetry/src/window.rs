//! Time-window utilities shared by metric and network-traffic series.
//!
//! The footprint-learning step of Atlas (paper Eq. 1) aligns two telemetry
//! streams on common windows: the Istio byte counters and the trace-derived
//! invocation counts. Both are aggregated over fixed-length windows (the
//! paper uses 5-second windows), so the same [`Windowing`] description is
//! used across the workspace.

use serde::{Deserialize, Serialize};

use crate::Seconds;

/// A half-open time window `[start, end)` expressed in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Inclusive start of the window, in seconds since the epoch.
    pub start_s: Seconds,
    /// Exclusive end of the window, in seconds since the epoch.
    pub end_s: Seconds,
}

impl TimeWindow {
    /// Create a window; `end_s` must be strictly greater than `start_s`.
    pub fn new(start_s: Seconds, end_s: Seconds) -> Self {
        assert!(end_s > start_s, "time window must have positive length");
        Self { start_s, end_s }
    }

    /// Length of the window in seconds.
    pub fn len_s(&self) -> Seconds {
        self.end_s - self.start_s
    }

    /// Whether a timestamp (in seconds) falls inside the window.
    pub fn contains_s(&self, t_s: Seconds) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }

    /// Whether a timestamp in microseconds falls inside the window.
    pub fn contains_us(&self, t_us: u64) -> bool {
        self.contains_s(t_us / 1_000_000)
    }
}

/// A uniform partition of an observation period into fixed-length windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Windowing {
    /// Start of the observation period in seconds.
    pub origin_s: Seconds,
    /// Window length in seconds (the paper uses 5 s for footprint learning).
    pub width_s: Seconds,
}

impl Windowing {
    /// Create a windowing scheme. `width_s` must be non-zero.
    pub fn new(origin_s: Seconds, width_s: Seconds) -> Self {
        assert!(width_s > 0, "window width must be positive");
        Self { origin_s, width_s }
    }

    /// Index of the window containing the given timestamp (seconds).
    ///
    /// Timestamps before the origin map to window 0.
    pub fn index_of_s(&self, t_s: Seconds) -> usize {
        (t_s.saturating_sub(self.origin_s) / self.width_s) as usize
    }

    /// Index of the window containing the given timestamp (microseconds).
    pub fn index_of_us(&self, t_us: u64) -> usize {
        self.index_of_s(t_us / 1_000_000)
    }

    /// The window with the given index.
    pub fn window(&self, index: usize) -> TimeWindow {
        let start = self.origin_s + index as Seconds * self.width_s;
        TimeWindow::new(start, start + self.width_s)
    }

    /// Number of windows needed to cover `[origin, end_s)`.
    pub fn count_until(&self, end_s: Seconds) -> usize {
        if end_s <= self.origin_s {
            0
        } else {
            ((end_s - self.origin_s) + self.width_s - 1) as usize / self.width_s as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_boundaries_half_open() {
        let w = TimeWindow::new(10, 15);
        assert_eq!(w.len_s(), 5);
        assert!(w.contains_s(10));
        assert!(w.contains_s(14));
        assert!(!w.contains_s(15));
        assert!(!w.contains_s(9));
        assert!(w.contains_us(12_000_000));
        assert!(!w.contains_us(15_000_000));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_window_panics() {
        let _ = TimeWindow::new(5, 5);
    }

    #[test]
    fn windowing_maps_timestamps_to_indices() {
        let w = Windowing::new(100, 5);
        assert_eq!(w.index_of_s(100), 0);
        assert_eq!(w.index_of_s(104), 0);
        assert_eq!(w.index_of_s(105), 1);
        assert_eq!(w.index_of_s(99), 0, "pre-origin timestamps clamp to 0");
        assert_eq!(w.index_of_us(105_000_000), 1);
    }

    #[test]
    fn windowing_index_and_window_are_consistent() {
        let w = Windowing::new(0, 5);
        for idx in 0..20 {
            let win = w.window(idx);
            assert_eq!(w.index_of_s(win.start_s), idx);
            assert_eq!(w.index_of_s(win.end_s - 1), idx);
        }
    }

    #[test]
    fn count_until_rounds_up() {
        let w = Windowing::new(0, 5);
        assert_eq!(w.count_until(0), 0);
        assert_eq!(w.count_until(1), 1);
        assert_eq!(w.count_until(5), 1);
        assert_eq!(w.count_until(6), 2);
        assert_eq!(w.count_until(50), 10);
        let w2 = Windowing::new(100, 10);
        assert_eq!(w2.count_until(90), 0);
        assert_eq!(w2.count_until(125), 3);
    }
}
