//! Spans: the unit of work recorded by distributed tracing.
//!
//! A span corresponds to one operation executed by one component while
//! serving a single API request (paper §3, Figure 4). Spans carry the parent
//! span that triggered them, so a set of spans sharing a trace id forms a
//! tree rooted at the entry component (e.g. `FrontendNGINX`).

use serde::{Deserialize, Serialize};

use crate::Micros;

/// Identifier of a trace: one trace per API request received by the
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceId(pub u64);

/// Identifier of a span within the whole telemetry stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace-{:016x}", self.0)
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span-{:016x}", self.0)
    }
}

/// A single operation executed by a component on behalf of an API request.
///
/// The attribute set intentionally mirrors the Jaeger span model the paper
/// relies on: component (service) name, operation name, start timestamp and
/// duration, plus the parent span id that lets a [`crate::Trace`] reconstruct
/// the execution tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: TraceId,
    /// Unique id of this span.
    pub span_id: SpanId,
    /// Parent span that triggered this operation (`None` for the root span).
    pub parent_id: Option<SpanId>,
    /// Name of the component (container / service) executing the operation.
    pub component: String,
    /// Operation name, e.g. `/composeAPI` or `MongoFind`.
    pub operation: String,
    /// Start timestamp in microseconds since the observation epoch.
    pub start_us: Micros,
    /// Duration of the operation in microseconds.
    pub duration_us: Micros,
}

impl Span {
    /// Create a new span.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        trace_id: TraceId,
        span_id: SpanId,
        parent_id: Option<SpanId>,
        component: impl Into<String>,
        operation: impl Into<String>,
        start_us: Micros,
        duration_us: Micros,
    ) -> Self {
        Self {
            trace_id,
            span_id,
            parent_id,
            component: component.into(),
            operation: operation.into(),
            start_us,
            duration_us,
        }
    }

    /// End timestamp (start + duration) in microseconds.
    #[inline]
    pub fn end_us(&self) -> Micros {
        self.start_us + self.duration_us
    }

    /// Whether this is the root span of its trace.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.parent_id.is_none()
    }

    /// Whether the execution intervals of two spans overlap.
    ///
    /// Half-open intervals are used: `[start, end)`. Two spans that merely
    /// touch at a boundary do not overlap.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start_us < other.end_us() && other.start_us < self.end_us()
    }

    /// Length of the overlap between the two spans' execution intervals, in
    /// microseconds.
    pub fn overlap_us(&self, other: &Span) -> Micros {
        let start = self.start_us.max(other.start_us);
        let end = self.end_us().min(other.end_us());
        end.saturating_sub(start)
    }
}

/// Monotonic generator for span / trace identifiers.
///
/// The simulator uses one generator per run so that ids are deterministic
/// given a seed, which keeps the experiments reproducible.
#[derive(Debug, Default, Clone)]
pub struct IdGenerator {
    next_trace: u64,
    next_span: u64,
}

impl IdGenerator {
    /// Create a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next trace id.
    pub fn next_trace_id(&mut self) -> TraceId {
        let id = TraceId(self.next_trace);
        self.next_trace += 1;
        id
    }

    /// Allocate the next span id.
    pub fn next_span_id(&mut self) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: Micros, dur: Micros) -> Span {
        Span::new(TraceId(1), SpanId(1), None, "A", "op", start, dur)
    }

    #[test]
    fn end_is_start_plus_duration() {
        let s = span(100, 50);
        assert_eq!(s.end_us(), 150);
    }

    #[test]
    fn root_detection() {
        let mut s = span(0, 1);
        assert!(s.is_root());
        s.parent_id = Some(SpanId(7));
        assert!(!s.is_root());
    }

    #[test]
    fn overlap_detection_and_length() {
        let a = span(0, 100);
        let b = span(50, 100);
        let c = span(100, 10);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
        assert_eq!(a.overlap_us(&b), 50);
        assert_eq!(a.overlap_us(&c), 0);
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = span(10, 30);
        let b = span(25, 100);
        assert_eq!(a.overlap_us(&b), b.overlap_us(&a));
    }

    #[test]
    fn id_generator_is_monotonic_and_unique() {
        let mut g = IdGenerator::new();
        let t0 = g.next_trace_id();
        let t1 = g.next_trace_id();
        let s0 = g.next_span_id();
        let s1 = g.next_span_id();
        assert_ne!(t0, t1);
        assert_ne!(s0, s1);
        assert!(t0 < t1);
        assert!(s0 < s1);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(TraceId(255).to_string(), "trace-00000000000000ff");
        assert_eq!(SpanId(16).to_string(), "span-0000000000000010");
    }
}
