//! Shared inputs of all baseline advisors.

use atlas_cloud::{CostModel, ResourceDemand};
use atlas_core::MigrationPreferences;
use atlas_sim::Location;
use atlas_telemetry::TelemetryStore;

use crate::affinity::AffinityMatrix;

/// Everything a baseline advisor needs: the component index, the expected
/// resource demand, the pairwise affinity observed by the network metrics,
/// the owner's preferences and the cloud cost model.
#[derive(Debug, Clone)]
pub struct BaselineContext {
    /// Component names in plan-index order.
    pub component_index: Vec<String>,
    /// Expected resource demand over the period of interest.
    pub demand: ResourceDemand,
    /// Pairwise affinity (bytes and message counts).
    pub affinity: AffinityMatrix,
    /// The owner's constraints (the same ones Atlas receives).
    pub preferences: MigrationPreferences,
    /// Cloud cost model (the paper gives the affinity GA the same cost model
    /// as Atlas).
    pub cost_model: CostModel,
}

impl BaselineContext {
    /// Build a context from the telemetry store and the shared inputs.
    pub fn from_store(
        store: &TelemetryStore,
        component_index: Vec<String>,
        demand: ResourceDemand,
        preferences: MigrationPreferences,
        cost_model: CostModel,
    ) -> Self {
        let affinity = AffinityMatrix::from_store(store, &component_index);
        Self {
            component_index,
            demand,
            affinity,
            preferences,
            cost_model,
        }
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.component_index.len()
    }

    /// Peak expected CPU (cores) of one component over the horizon.
    pub fn peak_cpu_of(&self, c: usize) -> f64 {
        self.demand.peak_cpu(&[c])
    }

    /// Whether a placement (as cloud flags) satisfies the on-prem limits and
    /// placement pins of the preferences.
    pub fn satisfies_constraints(&self, in_cloud: &[bool]) -> bool {
        // Pins.
        for (&c, &loc) in &self.preferences.pinned {
            if c.0 < in_cloud.len() {
                let is_cloud = in_cloud[c.0];
                if (loc == Location::OnPrem && is_cloud) || (loc == Location::Cloud && !is_cloud) {
                    return false;
                }
            }
        }
        // On-prem resource limits.
        let onprem: Vec<usize> = (0..in_cloud.len()).filter(|&i| !in_cloud[i]).collect();
        if self.demand.peak_cpu(&onprem) > self.preferences.onprem_cpu_limit {
            return false;
        }
        if self.demand.peak_memory_gb(&onprem) > self.preferences.onprem_memory_limit_gb {
            return false;
        }
        if self.demand.peak_storage_gb(&onprem) > self.preferences.onprem_storage_limit_gb {
            return false;
        }
        // Budget.
        if let Some(budget) = self.preferences.budget {
            if self.cost_model.evaluate(&self.demand, in_cloud).total() > budget {
                return false;
            }
        }
        true
    }

    /// Cross-datacenter traffic (bytes over the learning period) of a
    /// placement: the affinity objective of REMaP/IntMA and the affinity GA.
    pub fn cross_dc_bytes(&self, in_cloud: &[bool]) -> f64 {
        self.affinity.cross_boundary_bytes(in_cloud)
    }

    /// Cloud cost of a placement under the shared cost model.
    pub fn cost(&self, in_cloud: &[bool]) -> f64 {
        self.cost_model.evaluate(&self.demand, in_cloud).total()
    }

    /// Apply the placement pins to a cloud-flag vector.
    pub fn apply_pins(&self, in_cloud: &mut [bool]) {
        for (&c, &loc) in &self.preferences.pinned {
            if c.0 < in_cloud.len() {
                in_cloud[c.0] = loc == Location::Cloud;
            }
        }
    }

    /// Convert cloud flags to a plan bit vector.
    pub fn to_bits(in_cloud: &[bool]) -> Vec<u8> {
        in_cloud.iter().map(|&b| u8::from(b)).collect()
    }
}

/// Helper shared by the tests of this crate: ingest a tiny three-component
/// store with known traffic.
#[cfg(test)]
pub(crate) fn test_context(cpu_limit: f64) -> BaselineContext {
    use atlas_cloud::PricingModel;
    use atlas_telemetry::Direction;

    let store = TelemetryStore::new();
    let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
    for t in 0..20u64 {
        store.record_traffic("A", "B", Direction::Request, t, 10_000.0);
        store.record_traffic("A", "B", Direction::Response, t, 5_000.0);
        store.record_traffic("B", "C", Direction::Request, t, 100.0);
        store.record_traffic("B", "C", Direction::Response, t, 50.0);
    }
    let mut demand = ResourceDemand::zeros(names.clone(), 4, 600);
    demand.fill_cpu(0, 2.0);
    demand.fill_cpu(1, 6.0);
    demand.fill_cpu(2, 3.0);
    demand.fill_memory(0, 1.0);
    demand.fill_memory(1, 2.0);
    demand.fill_memory(2, 1.0);
    demand.fill_edge(0, 1, 1.0e7);
    demand.fill_edge(1, 2, 1.0e5);
    let preferences = MigrationPreferences::with_cpu_limit(cpu_limit);
    BaselineContext::from_store(
        &store,
        names,
        demand,
        preferences,
        CostModel::new(PricingModel::default()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_sim::ComponentId as Cid;

    #[test]
    fn constraint_checks_cover_cpu_and_pins() {
        let ctx = test_context(7.0);
        // All on-prem: 11 cores > 7 → infeasible.
        assert!(!ctx.satisfies_constraints(&[false, false, false]));
        // Offload B (6 cores): 5 remain → feasible.
        assert!(ctx.satisfies_constraints(&[false, true, false]));

        let mut pinned = test_context(100.0);
        pinned.preferences = pinned.preferences.pin(Cid(1), Location::OnPrem);
        assert!(!pinned.satisfies_constraints(&[false, true, false]));
        assert!(pinned.satisfies_constraints(&[true, false, false]));
    }

    #[test]
    fn cross_dc_bytes_reflects_the_heavy_edge() {
        let ctx = test_context(7.0);
        let split_heavy = ctx.cross_dc_bytes(&[false, true, true]); // cuts A-B
        let split_light = ctx.cross_dc_bytes(&[false, false, true]); // cuts B-C
        assert!(split_heavy > split_light);
        assert_eq!(ctx.cross_dc_bytes(&[false, false, false]), 0.0);
    }

    #[test]
    fn pins_are_applied_and_bits_convert() {
        let mut ctx = test_context(7.0);
        ctx.preferences = ctx.preferences.clone().pin(Cid(0), Location::Cloud);
        let mut flags = vec![false, false, false];
        ctx.apply_pins(&mut flags);
        assert_eq!(flags, vec![true, false, false]);
        assert_eq!(BaselineContext::to_bits(&flags), vec![1, 0, 0]);
        assert_eq!(ctx.component_count(), 3);
        assert!(ctx.peak_cpu_of(1) > ctx.peak_cpu_of(0));
        assert!(ctx.cost(&[false, true, false]) > 0.0);
    }
}
