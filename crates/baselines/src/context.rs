//! Shared inputs of all baseline advisors, plus the cached placement scorer
//! every baseline routes its objective/constraint queries through.

use atlas_cloud::{CompiledCost, CostModel, CostScratch, ResourceDemand, SiteCostModel};
use atlas_core::eval::{effective_threads, EvalStats, MemoCache};
use atlas_core::kernel::{with_scratch, ConstraintKernel, EvalScratch};
use atlas_core::{MigrationPlan, MigrationPreferences};
use atlas_sim::{OwnedSiteLimits, SiteCatalog, SiteId};
use atlas_telemetry::TelemetryStore;

use crate::affinity::AffinityMatrix;

/// Everything a baseline advisor needs: the component index, the expected
/// resource demand, the pairwise affinity observed by the network metrics,
/// the owner's preferences and the per-site cost model.
///
/// The baselines search the same N-site space as Atlas: build a two-site
/// context with [`BaselineContext::from_store`] (the paper's comparison) or
/// generalise it with [`BaselineContext::with_catalog`].
#[derive(Debug, Clone)]
pub struct BaselineContext {
    /// Component names in plan-index order.
    pub component_index: Vec<String>,
    /// Expected resource demand over the period of interest.
    pub demand: ResourceDemand,
    /// Pairwise affinity (bytes and message counts).
    pub affinity: AffinityMatrix,
    /// The owner's constraints (the same ones Atlas receives).
    pub preferences: MigrationPreferences,
    /// Per-site cost model (the paper gives the affinity GA the same cost
    /// model as Atlas; a two-site instance reproduces it exactly).
    pub cost_model: SiteCostModel,
    /// Number of sites placements range over (2 without a catalog).
    pub site_count: usize,
    /// The elastic site single-target advisors (greedy) offload to: the
    /// catalog's cheapest elastic site, or site 1 in the two-site model.
    pub offload_site: SiteId,
    /// Eq. 4 capacity limits of owned sites at index > 0 (from the
    /// catalog; empty in the two-site model, where site 1 is elastic).
    pub owned_site_limits: Vec<OwnedSiteLimits>,
}

impl BaselineContext {
    /// Build a two-site context from the telemetry store and the shared
    /// inputs.
    pub fn from_store(
        store: &TelemetryStore,
        component_index: Vec<String>,
        demand: ResourceDemand,
        preferences: MigrationPreferences,
        cost_model: CostModel,
    ) -> Self {
        let affinity = AffinityMatrix::from_store(store, &component_index);
        Self {
            component_index,
            demand,
            affinity,
            preferences,
            cost_model: SiteCostModel::from_models(vec![None, Some(cost_model)]),
            site_count: 2,
            offload_site: SiteId::CLOUD,
            owned_site_limits: Vec::new(),
        }
    }

    /// Generalise the context to an N-site catalog (builder style): the
    /// cost model bills each elastic site under its own pricing and the
    /// searches range over the catalog's site alphabet.
    pub fn with_catalog(mut self, catalog: &SiteCatalog) -> Self {
        self.cost_model = catalog.cost_model();
        self.site_count = catalog.len();
        self.offload_site = catalog.cheapest_elastic_site().unwrap_or(SiteId::CLOUD);
        self.owned_site_limits = catalog.owned_site_limits();
        self
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.component_index.len()
    }

    /// Peak expected CPU (cores) of one component over the horizon.
    pub fn peak_cpu_of(&self, c: usize) -> f64 {
        self.demand.peak_cpu(&[c])
    }

    /// Whether a site assignment satisfies the on-prem limits and placement
    /// pins of the preferences.
    pub fn satisfies_site_constraints(&self, sites: &[SiteId]) -> bool {
        // Exact pins.
        for (&c, &site) in &self.preferences.pinned {
            if c.0 < sites.len() && sites[c.0] != site {
                return false;
            }
        }
        // Site-set pins.
        for (&c, allowed) in &self.preferences.allowed_sites {
            if c.0 < sites.len() && !allowed.contains(&sites[c.0]) {
                return false;
            }
        }
        // On-prem resource limits.
        let onprem: Vec<usize> = (0..sites.len())
            .filter(|&i| sites[i].is_on_prem())
            .collect();
        if self.demand.peak_cpu(&onprem) > self.preferences.onprem_cpu_limit {
            return false;
        }
        if self.demand.peak_memory_gb(&onprem) > self.preferences.onprem_memory_limit_gb {
            return false;
        }
        if self.demand.peak_storage_gb(&onprem) > self.preferences.onprem_storage_limit_gb {
            return false;
        }
        // Capacity limits of owned sites at index > 0 (catalog-declared).
        for limits in &self.owned_site_limits {
            let members: Vec<usize> = (0..sites.len())
                .filter(|&i| sites[i] == limits.site)
                .collect();
            if limits.cpu_cores.is_finite() && self.demand.peak_cpu(&members) > limits.cpu_cores {
                return false;
            }
            if limits.memory_gb.is_finite()
                && self.demand.peak_memory_gb(&members) > limits.memory_gb
            {
                return false;
            }
            if limits.storage_gb.is_finite()
                && self.demand.peak_storage_gb(&members) > limits.storage_gb
            {
                return false;
            }
        }
        // Budget.
        if let Some(budget) = self.preferences.budget {
            if self.cost_model.evaluate(&self.demand, sites).total() > budget {
                return false;
            }
        }
        true
    }

    /// Two-site convenience over [`Self::satisfies_site_constraints`].
    pub fn satisfies_constraints(&self, in_cloud: &[bool]) -> bool {
        self.satisfies_site_constraints(&Self::flags_to_sites(in_cloud))
    }

    /// Cross-site traffic (bytes over the learning period) of a site
    /// assignment: the affinity objective of REMaP/IntMA and the affinity
    /// GA, generalised to N sites.
    pub fn cross_site_bytes(&self, sites: &[SiteId]) -> f64 {
        self.affinity.cross_site_bytes(sites)
    }

    /// Two-site convenience over [`Self::cross_site_bytes`].
    pub fn cross_dc_bytes(&self, in_cloud: &[bool]) -> f64 {
        self.affinity.cross_boundary_bytes(in_cloud)
    }

    /// Hosting cost of a site assignment under the shared cost model.
    pub fn site_cost(&self, sites: &[SiteId]) -> f64 {
        self.cost_model.evaluate(&self.demand, sites).total()
    }

    /// Two-site convenience over [`Self::site_cost`].
    pub fn cost(&self, in_cloud: &[bool]) -> f64 {
        self.site_cost(&Self::flags_to_sites(in_cloud))
    }

    /// Apply the placement pins to a site assignment (exact pins overwrite;
    /// site-set pins snap violating genes to the set's first site).
    pub fn apply_pins(&self, sites: &mut [SiteId]) {
        for (&c, &site) in &self.preferences.pinned {
            if c.0 < sites.len() {
                sites[c.0] = site;
            }
        }
        for (&c, allowed) in &self.preferences.allowed_sites {
            if c.0 < sites.len() && !allowed.contains(&sites[c.0]) {
                sites[c.0] = allowed[0];
            }
        }
    }

    /// Convert cloud flags to a plan bit vector.
    pub fn to_bits(in_cloud: &[bool]) -> Vec<u8> {
        in_cloud.iter().map(|&b| u8::from(b)).collect()
    }

    /// Convert cloud flags to the equivalent two-site assignment.
    pub fn flags_to_sites(in_cloud: &[bool]) -> Vec<SiteId> {
        in_cloud
            .iter()
            .map(|&b| if b { SiteId::CLOUD } else { SiteId::ON_PREM })
            .collect()
    }

    /// Wrap a site assignment as a migration plan.
    pub fn to_plan(sites: &[SiteId]) -> MigrationPlan {
        MigrationPlan::from_sites(sites.to_vec())
    }

    /// Wrap this context in a cached, batched placement scorer with one
    /// worker per available core (see [`BaselineScorer`]).
    pub fn scorer(&self) -> BaselineScorer<'_> {
        BaselineScorer::new(self)
    }
}

/// Everything a baseline ever asks about one placement, scored once: the two
/// affinity objectives, the hosting cost and the constraint check of Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementScore {
    /// Cross-site traffic bytes (REMaP/IntMA/affinity-GA objective; the
    /// two-site model's cross-datacenter bytes).
    pub cross_dc_bytes: f64,
    /// Cross-site message exchanges (REMaP's second affinity term).
    pub cross_dc_messages: f64,
    /// Hosting cost over the horizon under the shared per-site cost model.
    pub cost: f64,
    /// Whether the placement satisfies pins, on-prem limits and budget.
    pub feasible: bool,
}

/// The baselines' counterpart of `atlas-core`'s `PlanEvaluator`: a cached,
/// batched, thread-parallel scorer over [`BaselineContext`] placements,
/// backed by the same [`MemoCache`] machinery.
///
/// The GA-style baselines batch whole generations through
/// [`BaselineScorer::score_batch`]; the greedy/affinity single-plan advisors
/// route their repeated constraint and affinity probes through
/// [`BaselineScorer::score`], where local-search re-probes hit the cache.
///
/// Since PR 4 the scorer rides the same evaluation kernel as the core
/// quality model: constraints are checked through a precompiled
/// [`ConstraintKernel`], the cloud cost is computed with the kernel's
/// reusable scratch buffers, and the cost feeding `PlacementScore::cost` is
/// reused by the budget constraint instead of being evaluated twice.
#[derive(Debug)]
pub struct BaselineScorer<'a> {
    ctx: &'a BaselineContext,
    threads: usize,
    delta: bool,
    constraints: ConstraintKernel,
    /// The context's cost model pre-bound to its demand (bit-identical,
    /// allocation-free; see [`atlas_cloud::CompiledCost`]).
    cost: CompiledCost,
    cache: MemoCache<Vec<SiteId>, PlacementScore>,
}

impl<'a> BaselineScorer<'a> {
    /// Wrap a context with one worker per available core.
    pub fn new(ctx: &'a BaselineContext) -> Self {
        Self {
            ctx,
            threads: effective_threads(0),
            delta: true,
            constraints: ConstraintKernel::new(&ctx.preferences)
                .with_owned_site_limits(ctx.owned_site_limits.clone()),
            cost: ctx.cost_model.compile(&ctx.demand),
            cache: MemoCache::default(),
        }
    }

    /// Set the worker-thread count (builder style); `0` restores the
    /// one-per-core default. Thread count never changes scores, only speed.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = effective_threads(threads);
        self
    }

    /// Enable or disable the delta probe path of [`Self::score_move`] and
    /// [`Self::score_changes`] (builder style; on by default). Disabled,
    /// probes clone the base placement and go through [`Self::score`] —
    /// same scores, same cache accounting, just one allocation per probe.
    pub fn with_delta_path(mut self, on: bool) -> Self {
        self.delta = on;
        self
    }

    /// Whether the allocation-free delta probe path is enabled.
    pub fn delta_path(&self) -> bool {
        self.delta
    }

    /// The wrapped context.
    pub fn context(&self) -> &'a BaselineContext {
        self.ctx
    }

    /// Score one placement using caller-supplied scratch buffers (the body
    /// of every scoring path; pure in `sites`).
    fn compute_on(&self, sites: &[SiteId], cost_scratch: &mut CostScratch) -> PlacementScore {
        let (breakdown, peaks) = self.cost.evaluate_with_peaks(sites, cost_scratch);
        let cost = breakdown.total();
        PlacementScore {
            cross_dc_bytes: self.ctx.affinity.cross_site_bytes(sites),
            cross_dc_messages: self.ctx.affinity.cross_site_messages(sites),
            cost,
            feasible: self.constraints.feasible_with_peaks(
                sites,
                &peaks,
                |site| self.cost.site_peaks(cost_scratch, site.index()),
                || cost,
            ),
        }
    }

    fn compute(&self, sites: &[SiteId]) -> PlacementScore {
        with_scratch(|s| self.compute_on(sites, &mut s.cost))
    }

    /// Score one site assignment, serving duplicates from the cache.
    pub fn score(&self, sites: &[SiteId]) -> PlacementScore {
        let key = sites.to_vec();
        self.cache.get_or_compute(&key, |k| self.compute(k))
    }

    /// Score `base` with one component moved to another site — the shape of
    /// every REMaP/IntMA local-search probe. See [`Self::score_changes`].
    pub fn score_move(&self, base: &[SiteId], component: usize, site: SiteId) -> PlacementScore {
        self.score_changes(base, &[(component, site)])
    }

    /// Score `base` with a few components moved — the shape of a GA
    /// mutation offspring whose parent is known. With the delta path on,
    /// the probe placement is materialised in the thread-local scratch and
    /// looked up in the cache by reference, so a cache hit (the common case
    /// of local search re-probing its neighbourhood) allocates nothing.
    /// Scores and cache accounting are identical to cloning the base and
    /// calling [`Self::score`], which is what the disabled path does.
    pub fn score_changes(&self, base: &[SiteId], changes: &[(usize, SiteId)]) -> PlacementScore {
        if !self.delta {
            let mut sites = base.to_vec();
            for &(c, s) in changes {
                sites[c] = s;
            }
            return self.score(&sites);
        }
        with_scratch(|s| {
            let EvalScratch { sites, cost, .. } = s;
            sites.clear();
            sites.extend_from_slice(base);
            for &(c, s2) in changes {
                sites[c] = s2;
            }
            self.cache.get_or_compute_with(
                sites.as_slice(),
                |k: &[SiteId]| k.to_vec(),
                |k| self.compute_on(k, cost),
            )
        })
    }

    /// Score a batch of site assignments, returning scores in input order.
    /// Cached and in-batch duplicates are scored once; the remaining unique
    /// placements are fanned out across the scorer's worker threads.
    pub fn score_batch(&self, placements: &[Vec<SiteId>]) -> Vec<PlacementScore> {
        self.cache
            .get_or_compute_batch(placements, self.threads, |p| self.compute(p))
    }

    /// Distinct placements scored so far (what GA-style visit budgets
    /// count — cache hits are free).
    pub fn unique_evaluations(&self) -> usize {
        self.cache.unique()
    }

    /// Snapshot of the scoring statistics (same shape as the core
    /// evaluator's).
    pub fn stats(&self) -> EvalStats {
        self.cache.stats(self.threads)
    }
}

/// Helper shared by the tests of this crate: ingest a tiny three-component
/// store with known traffic.
#[cfg(test)]
pub(crate) fn test_context(cpu_limit: f64) -> BaselineContext {
    use atlas_cloud::PricingModel;
    use atlas_telemetry::Direction;

    let store = TelemetryStore::new();
    let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
    for t in 0..20u64 {
        store.record_traffic("A", "B", Direction::Request, t, 10_000.0);
        store.record_traffic("A", "B", Direction::Response, t, 5_000.0);
        store.record_traffic("B", "C", Direction::Request, t, 100.0);
        store.record_traffic("B", "C", Direction::Response, t, 50.0);
    }
    let mut demand = ResourceDemand::zeros(names.clone(), 4, 600);
    demand.fill_cpu(0, 2.0);
    demand.fill_cpu(1, 6.0);
    demand.fill_cpu(2, 3.0);
    demand.fill_memory(0, 1.0);
    demand.fill_memory(1, 2.0);
    demand.fill_memory(2, 1.0);
    demand.fill_edge(0, 1, 1.0e7);
    demand.fill_edge(1, 2, 1.0e5);
    let preferences = MigrationPreferences::with_cpu_limit(cpu_limit);
    BaselineContext::from_store(
        &store,
        names,
        demand,
        preferences,
        CostModel::new(PricingModel::default()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_sim::ComponentId as Cid;
    use atlas_sim::Location;

    #[test]
    fn constraint_checks_cover_cpu_and_pins() {
        let ctx = test_context(7.0);
        // All on-prem: 11 cores > 7 → infeasible.
        assert!(!ctx.satisfies_constraints(&[false, false, false]));
        // Offload B (6 cores): 5 remain → feasible.
        assert!(ctx.satisfies_constraints(&[false, true, false]));

        let mut pinned = test_context(100.0);
        pinned.preferences = pinned.preferences.pin(Cid(1), Location::OnPrem);
        assert!(!pinned.satisfies_constraints(&[false, true, false]));
        assert!(pinned.satisfies_constraints(&[true, false, false]));
    }

    /// Eq. 4 owned-site limits at sites beyond index 0: `with_catalog`
    /// extracts the owned edge site's finite pools, and the interpretive
    /// check and the compiled scorer agree that the undersized site
    /// rejects components its pools cannot hold.
    #[test]
    fn owned_site_limits_gate_baseline_feasibility() {
        use atlas_cloud::PricingModel;
        use atlas_sim::{ClusterSpec, SiteNetwork, SiteSpec};

        let cluster = ClusterSpec::default();
        let links = (0..9).map(|_| cluster.network.intra).collect();
        // Site 2 is owned hardware with 4 cores: B (6 cores) cannot go
        // there, A (2 cores) can.
        let catalog = SiteCatalog::new(
            vec![
                SiteSpec::owned(
                    "on-prem",
                    cluster.onprem_cpu_cores,
                    cluster.onprem_memory_gb,
                    cluster.onprem_storage_gb,
                ),
                SiteSpec::elastic("east", PricingModel::default()),
                SiteSpec::owned("edge", 4.0, 64.0, 100.0),
            ],
            SiteNetwork::from_links(3, links),
        );
        let ctx = test_context(100.0).with_catalog(&catalog);
        assert_eq!(
            ctx.owned_site_limits,
            vec![OwnedSiteLimits {
                site: SiteId(2),
                cpu_cores: 4.0,
                memory_gb: 64.0,
                storage_gb: 100.0,
            }]
        );

        let b_on_edge = vec![SiteId(0), SiteId(2), SiteId(0)];
        let a_on_edge = vec![SiteId(2), SiteId(0), SiteId(0)];
        assert!(!ctx.satisfies_site_constraints(&b_on_edge));
        assert!(ctx.satisfies_site_constraints(&a_on_edge));

        let scorer = ctx.scorer();
        assert!(!scorer.score(&b_on_edge).feasible);
        assert!(scorer.score(&a_on_edge).feasible);
    }

    #[test]
    fn cross_dc_bytes_reflects_the_heavy_edge() {
        let ctx = test_context(7.0);
        let split_heavy = ctx.cross_dc_bytes(&[false, true, true]); // cuts A-B
        let split_light = ctx.cross_dc_bytes(&[false, false, true]); // cuts B-C
        assert!(split_heavy > split_light);
        assert_eq!(ctx.cross_dc_bytes(&[false, false, false]), 0.0);
    }

    #[test]
    fn scorer_matches_direct_queries_and_caches_duplicates() {
        let ctx = test_context(7.0);
        let scorer = ctx.scorer().with_threads(2);
        let flags: Vec<Vec<bool>> = vec![
            vec![false, false, false],
            vec![false, true, false],
            vec![true, true, true],
            vec![false, true, false], // duplicate
        ];
        let placements: Vec<Vec<SiteId>> = flags
            .iter()
            .map(|f| BaselineContext::flags_to_sites(f))
            .collect();
        let scores = scorer.score_batch(&placements);
        for ((in_cloud, sites), score) in flags.iter().zip(&placements).zip(&scores) {
            assert_eq!(score.cross_dc_bytes, ctx.cross_dc_bytes(in_cloud));
            assert_eq!(score.cross_dc_bytes, ctx.cross_site_bytes(sites));
            assert_eq!(
                score.cross_dc_messages,
                ctx.affinity.cross_boundary_messages(in_cloud)
            );
            assert_eq!(score.cost, ctx.cost(in_cloud));
            assert_eq!(score.cost, ctx.site_cost(sites));
            assert_eq!(score.feasible, ctx.satisfies_constraints(in_cloud));
            assert_eq!(score.feasible, ctx.satisfies_site_constraints(sites));
        }
        assert_eq!(scores[1], scores[3]);
        assert_eq!(scorer.unique_evaluations(), 3);
        let stats = scorer.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.threads, 2);
        // Single queries hit the same cache.
        let single = scorer.score(&placements[0]);
        assert_eq!(single, scores[0]);
        assert_eq!(scorer.stats().cache_hits, 2);
    }

    /// The delta probe path returns the same scores and burns the same
    /// cache accounting as cloning the base placement, toggle on or off.
    #[test]
    fn delta_probes_match_cloned_scores_and_accounting() {
        let ctx = test_context(7.0);
        for delta in [true, false] {
            let scorer = ctx.scorer().with_delta_path(delta);
            assert_eq!(scorer.delta_path(), delta);
            let base = vec![SiteId::ON_PREM; 3];
            let moved = scorer.score_move(&base, 1, SiteId::CLOUD);
            let mut clone = base.clone();
            clone[1] = SiteId::CLOUD;
            assert_eq!(moved, scorer.score(&clone));
            // Re-probing is a cache hit, not a new evaluation.
            let again = scorer.score_move(&base, 1, SiteId::CLOUD);
            assert_eq!(again, moved);
            let multi = scorer.score_changes(&base, &[(0, SiteId::CLOUD), (2, SiteId::CLOUD)]);
            assert_eq!(
                multi,
                scorer.score(&[SiteId::CLOUD, SiteId::ON_PREM, SiteId::CLOUD])
            );
            assert_eq!(scorer.unique_evaluations(), 2);
            assert_eq!(scorer.stats().cache_hits, 3, "delta={delta}");
        }
    }

    /// Later changes overwrite earlier ones for the same component, exactly
    /// like applying them in order to a cloned placement.
    #[test]
    fn score_changes_applies_changes_in_order() {
        let ctx = test_context(7.0);
        let scorer = ctx.scorer();
        let base = vec![SiteId::ON_PREM; 3];
        let score = scorer.score_changes(&base, &[(1, SiteId::CLOUD), (1, SiteId::ON_PREM)]);
        assert_eq!(score, scorer.score(&base));
    }

    #[test]
    fn pins_are_applied_and_bits_convert() {
        let mut ctx = test_context(7.0);
        ctx.preferences = ctx.preferences.clone().pin(Cid(0), Location::Cloud);
        let mut sites = vec![SiteId::ON_PREM; 3];
        ctx.apply_pins(&mut sites);
        assert_eq!(sites, vec![SiteId::CLOUD, SiteId::ON_PREM, SiteId::ON_PREM]);
        assert_eq!(
            BaselineContext::to_bits(&[true, false, false]),
            vec![1, 0, 0]
        );
        assert_eq!(
            BaselineContext::flags_to_sites(&[true, false, false]),
            vec![SiteId(1), SiteId(0), SiteId(0)]
        );
        assert_eq!(BaselineContext::to_plan(&sites).to_bits(), vec![1, 0, 0]);
        assert_eq!(ctx.component_count(), 3);
        assert!(ctx.peak_cpu_of(1) > ctx.peak_cpu_of(0));
        assert!(ctx.cost(&[false, true, false]) > 0.0);
    }

    #[test]
    fn site_set_pins_snap_to_the_first_allowed_site() {
        let mut ctx = test_context(100.0);
        ctx.preferences = ctx
            .preferences
            .clone()
            .pin_to_sites(Cid(1), vec![SiteId(1)]);
        let mut sites = vec![SiteId::ON_PREM; 3];
        ctx.apply_pins(&mut sites);
        assert_eq!(sites[1], SiteId(1), "snapped to the set's first site");
        assert!(ctx.satisfies_site_constraints(&sites));
        let violating = vec![SiteId(0), SiteId(0), SiteId(0)];
        assert!(!ctx.satisfies_site_constraints(&violating));
        // A gene already inside the set is left untouched.
        let mut inside = vec![SiteId(0), SiteId(1), SiteId(0)];
        ctx.apply_pins(&mut inside);
        assert_eq!(inside[1], SiteId(1));
    }
}
