//! Shared inputs of all baseline advisors, plus the cached placement scorer
//! every baseline routes its objective/constraint queries through.

use atlas_cloud::{CostModel, ResourceDemand};
use atlas_core::eval::{effective_threads, EvalStats, MemoCache};
use atlas_core::kernel::{with_scratch, ConstraintKernel};
use atlas_core::MigrationPreferences;
use atlas_sim::Location;
use atlas_telemetry::TelemetryStore;

use crate::affinity::AffinityMatrix;

/// Everything a baseline advisor needs: the component index, the expected
/// resource demand, the pairwise affinity observed by the network metrics,
/// the owner's preferences and the cloud cost model.
#[derive(Debug, Clone)]
pub struct BaselineContext {
    /// Component names in plan-index order.
    pub component_index: Vec<String>,
    /// Expected resource demand over the period of interest.
    pub demand: ResourceDemand,
    /// Pairwise affinity (bytes and message counts).
    pub affinity: AffinityMatrix,
    /// The owner's constraints (the same ones Atlas receives).
    pub preferences: MigrationPreferences,
    /// Cloud cost model (the paper gives the affinity GA the same cost model
    /// as Atlas).
    pub cost_model: CostModel,
}

impl BaselineContext {
    /// Build a context from the telemetry store and the shared inputs.
    pub fn from_store(
        store: &TelemetryStore,
        component_index: Vec<String>,
        demand: ResourceDemand,
        preferences: MigrationPreferences,
        cost_model: CostModel,
    ) -> Self {
        let affinity = AffinityMatrix::from_store(store, &component_index);
        Self {
            component_index,
            demand,
            affinity,
            preferences,
            cost_model,
        }
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.component_index.len()
    }

    /// Peak expected CPU (cores) of one component over the horizon.
    pub fn peak_cpu_of(&self, c: usize) -> f64 {
        self.demand.peak_cpu(&[c])
    }

    /// Whether a placement (as cloud flags) satisfies the on-prem limits and
    /// placement pins of the preferences.
    pub fn satisfies_constraints(&self, in_cloud: &[bool]) -> bool {
        // Pins.
        for (&c, &loc) in &self.preferences.pinned {
            if c.0 < in_cloud.len() {
                let is_cloud = in_cloud[c.0];
                if (loc == Location::OnPrem && is_cloud) || (loc == Location::Cloud && !is_cloud) {
                    return false;
                }
            }
        }
        // On-prem resource limits.
        let onprem: Vec<usize> = (0..in_cloud.len()).filter(|&i| !in_cloud[i]).collect();
        if self.demand.peak_cpu(&onprem) > self.preferences.onprem_cpu_limit {
            return false;
        }
        if self.demand.peak_memory_gb(&onprem) > self.preferences.onprem_memory_limit_gb {
            return false;
        }
        if self.demand.peak_storage_gb(&onprem) > self.preferences.onprem_storage_limit_gb {
            return false;
        }
        // Budget.
        if let Some(budget) = self.preferences.budget {
            if self.cost_model.evaluate(&self.demand, in_cloud).total() > budget {
                return false;
            }
        }
        true
    }

    /// Cross-datacenter traffic (bytes over the learning period) of a
    /// placement: the affinity objective of REMaP/IntMA and the affinity GA.
    pub fn cross_dc_bytes(&self, in_cloud: &[bool]) -> f64 {
        self.affinity.cross_boundary_bytes(in_cloud)
    }

    /// Cloud cost of a placement under the shared cost model.
    pub fn cost(&self, in_cloud: &[bool]) -> f64 {
        self.cost_model.evaluate(&self.demand, in_cloud).total()
    }

    /// Apply the placement pins to a cloud-flag vector.
    pub fn apply_pins(&self, in_cloud: &mut [bool]) {
        for (&c, &loc) in &self.preferences.pinned {
            if c.0 < in_cloud.len() {
                in_cloud[c.0] = loc == Location::Cloud;
            }
        }
    }

    /// Convert cloud flags to a plan bit vector.
    pub fn to_bits(in_cloud: &[bool]) -> Vec<u8> {
        in_cloud.iter().map(|&b| u8::from(b)).collect()
    }

    /// Wrap this context in a cached, batched placement scorer with one
    /// worker per available core (see [`BaselineScorer`]).
    pub fn scorer(&self) -> BaselineScorer<'_> {
        BaselineScorer::new(self)
    }
}

/// Everything a baseline ever asks about one placement, scored once: the two
/// affinity objectives, the cloud cost and the constraint check of Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementScore {
    /// Cross-datacenter traffic bytes (REMaP/IntMA/affinity-GA objective).
    pub cross_dc_bytes: f64,
    /// Cross-datacenter message exchanges (REMaP's second affinity term).
    pub cross_dc_messages: f64,
    /// Cloud hosting cost over the horizon under the shared cost model.
    pub cost: f64,
    /// Whether the placement satisfies pins, on-prem limits and budget.
    pub feasible: bool,
}

/// The baselines' counterpart of `atlas-core`'s `PlanEvaluator`: a cached,
/// batched, thread-parallel scorer over [`BaselineContext`] placements,
/// backed by the same [`MemoCache`] machinery.
///
/// The GA-style baselines batch whole generations through
/// [`BaselineScorer::score_batch`]; the greedy/affinity single-plan advisors
/// route their repeated constraint and affinity probes through
/// [`BaselineScorer::score`], where local-search re-probes hit the cache.
///
/// Since PR 4 the scorer rides the same evaluation kernel as the core
/// quality model: constraints are checked through a precompiled
/// [`ConstraintKernel`], the cloud cost is computed with the kernel's
/// reusable scratch buffers, and the cost feeding `PlacementScore::cost` is
/// reused by the budget constraint instead of being evaluated twice.
#[derive(Debug)]
pub struct BaselineScorer<'a> {
    ctx: &'a BaselineContext,
    threads: usize,
    constraints: ConstraintKernel,
    cache: MemoCache<Vec<bool>, PlacementScore>,
}

impl<'a> BaselineScorer<'a> {
    /// Wrap a context with one worker per available core.
    pub fn new(ctx: &'a BaselineContext) -> Self {
        Self {
            ctx,
            threads: effective_threads(0),
            constraints: ConstraintKernel::new(&ctx.preferences),
            cache: MemoCache::default(),
        }
    }

    /// Set the worker-thread count (builder style); `0` restores the
    /// one-per-core default. Thread count never changes scores, only speed.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = effective_threads(threads);
        self
    }

    /// The wrapped context.
    pub fn context(&self) -> &'a BaselineContext {
        self.ctx
    }

    fn compute(&self, in_cloud: &[bool]) -> PlacementScore {
        with_scratch(|s| {
            let cost = self
                .ctx
                .cost_model
                .evaluate_with_scratch(&self.ctx.demand, in_cloud, &mut s.cost)
                .total();
            PlacementScore {
                cross_dc_bytes: self.ctx.affinity.cross_boundary_bytes(in_cloud),
                cross_dc_messages: self.ctx.affinity.cross_boundary_messages(in_cloud),
                cost,
                feasible: self.constraints.feasible(
                    &self.ctx.demand,
                    in_cloud,
                    &mut s.subset,
                    || cost,
                ),
            }
        })
    }

    /// Score one placement, serving duplicates from the cache.
    pub fn score(&self, in_cloud: &[bool]) -> PlacementScore {
        let key = in_cloud.to_vec();
        self.cache.get_or_compute(&key, |k| self.compute(k))
    }

    /// Score a batch of placements, returning scores in input order. Cached
    /// and in-batch duplicates are scored once; the remaining unique
    /// placements are fanned out across the scorer's worker threads.
    pub fn score_batch(&self, placements: &[Vec<bool>]) -> Vec<PlacementScore> {
        self.cache
            .get_or_compute_batch(placements, self.threads, |p| self.compute(p))
    }

    /// Distinct placements scored so far (what GA-style visit budgets
    /// count — cache hits are free).
    pub fn unique_evaluations(&self) -> usize {
        self.cache.unique()
    }

    /// Snapshot of the scoring statistics (same shape as the core
    /// evaluator's).
    pub fn stats(&self) -> EvalStats {
        self.cache.stats(self.threads)
    }
}

/// Helper shared by the tests of this crate: ingest a tiny three-component
/// store with known traffic.
#[cfg(test)]
pub(crate) fn test_context(cpu_limit: f64) -> BaselineContext {
    use atlas_cloud::PricingModel;
    use atlas_telemetry::Direction;

    let store = TelemetryStore::new();
    let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
    for t in 0..20u64 {
        store.record_traffic("A", "B", Direction::Request, t, 10_000.0);
        store.record_traffic("A", "B", Direction::Response, t, 5_000.0);
        store.record_traffic("B", "C", Direction::Request, t, 100.0);
        store.record_traffic("B", "C", Direction::Response, t, 50.0);
    }
    let mut demand = ResourceDemand::zeros(names.clone(), 4, 600);
    demand.fill_cpu(0, 2.0);
    demand.fill_cpu(1, 6.0);
    demand.fill_cpu(2, 3.0);
    demand.fill_memory(0, 1.0);
    demand.fill_memory(1, 2.0);
    demand.fill_memory(2, 1.0);
    demand.fill_edge(0, 1, 1.0e7);
    demand.fill_edge(1, 2, 1.0e5);
    let preferences = MigrationPreferences::with_cpu_limit(cpu_limit);
    BaselineContext::from_store(
        &store,
        names,
        demand,
        preferences,
        CostModel::new(PricingModel::default()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_sim::ComponentId as Cid;

    #[test]
    fn constraint_checks_cover_cpu_and_pins() {
        let ctx = test_context(7.0);
        // All on-prem: 11 cores > 7 → infeasible.
        assert!(!ctx.satisfies_constraints(&[false, false, false]));
        // Offload B (6 cores): 5 remain → feasible.
        assert!(ctx.satisfies_constraints(&[false, true, false]));

        let mut pinned = test_context(100.0);
        pinned.preferences = pinned.preferences.pin(Cid(1), Location::OnPrem);
        assert!(!pinned.satisfies_constraints(&[false, true, false]));
        assert!(pinned.satisfies_constraints(&[true, false, false]));
    }

    #[test]
    fn cross_dc_bytes_reflects_the_heavy_edge() {
        let ctx = test_context(7.0);
        let split_heavy = ctx.cross_dc_bytes(&[false, true, true]); // cuts A-B
        let split_light = ctx.cross_dc_bytes(&[false, false, true]); // cuts B-C
        assert!(split_heavy > split_light);
        assert_eq!(ctx.cross_dc_bytes(&[false, false, false]), 0.0);
    }

    #[test]
    fn scorer_matches_direct_queries_and_caches_duplicates() {
        let ctx = test_context(7.0);
        let scorer = ctx.scorer().with_threads(2);
        let placements: Vec<Vec<bool>> = vec![
            vec![false, false, false],
            vec![false, true, false],
            vec![true, true, true],
            vec![false, true, false], // duplicate
        ];
        let scores = scorer.score_batch(&placements);
        for (placement, score) in placements.iter().zip(&scores) {
            assert_eq!(score.cross_dc_bytes, ctx.cross_dc_bytes(placement));
            assert_eq!(
                score.cross_dc_messages,
                ctx.affinity.cross_boundary_messages(placement)
            );
            assert_eq!(score.cost, ctx.cost(placement));
            assert_eq!(score.feasible, ctx.satisfies_constraints(placement));
        }
        assert_eq!(scores[1], scores[3]);
        assert_eq!(scorer.unique_evaluations(), 3);
        let stats = scorer.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.threads, 2);
        // Single queries hit the same cache.
        let single = scorer.score(&placements[0]);
        assert_eq!(single, scores[0]);
        assert_eq!(scorer.stats().cache_hits, 2);
    }

    #[test]
    fn pins_are_applied_and_bits_convert() {
        let mut ctx = test_context(7.0);
        ctx.preferences = ctx.preferences.clone().pin(Cid(0), Location::Cloud);
        let mut flags = vec![false, false, false];
        ctx.apply_pins(&mut flags);
        assert_eq!(flags, vec![true, false, false]);
        assert_eq!(BaselineContext::to_bits(&flags), vec![1, 0, 0]);
        assert_eq!(ctx.component_count(), 3);
        assert!(ctx.peak_cpu_of(1) > ctx.peak_cpu_of(0));
        assert!(ctx.cost(&[false, true, false]) > 0.0);
    }
}
