//! Greedy cloud-bursting baselines (Seagull-style \[45\]).
//!
//! The simplest policies in the paper's comparison: offload the busiest (or
//! the least busy) components one by one until the remaining on-prem demand
//! fits the cluster. They ignore inter-component interactions entirely,
//! which is exactly why they incur large latency and egress costs.

use atlas_core::MigrationPlan;

use crate::context::BaselineContext;

/// Which end of the busyness ranking gets offloaded first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyOrder {
    /// Offload the busiest (largest CPU) components first — frees the most
    /// on-prem resources per move.
    LargestFirst,
    /// Offload the least busy (smallest CPU) components first.
    SmallestFirst,
}

/// The greedy advisor.
#[derive(Debug, Clone, Copy)]
pub struct GreedyAdvisor {
    /// Offloading order.
    pub order: GreedyOrder,
}

impl GreedyAdvisor {
    /// A largest-first advisor.
    pub fn largest_first() -> Self {
        Self {
            order: GreedyOrder::LargestFirst,
        }
    }

    /// A smallest-first advisor.
    pub fn smallest_first() -> Self {
        Self {
            order: GreedyOrder::SmallestFirst,
        }
    }

    /// Recommend a single placement: offload components in busyness order —
    /// to the context's offload site (the catalog's cheapest elastic site;
    /// the cloud in the paper's two-site model) — until the on-prem
    /// constraints are satisfied.
    ///
    /// Unlike the affinity/GA baselines, greedy probes each placement
    /// exactly once and only for feasibility, so it queries the context
    /// directly instead of paying for a full cached [`PlacementScore`]
    /// (see [`BaselineContext::scorer`]) it would never reuse.
    ///
    /// [`PlacementScore`]: crate::context::PlacementScore
    pub fn recommend(&self, ctx: &BaselineContext) -> MigrationPlan {
        let n = ctx.component_count();
        let mut sites = vec![atlas_sim::SiteId::ON_PREM; n];
        ctx.apply_pins(&mut sites);

        let mut candidates: Vec<usize> = (0..n)
            .filter(|&i| {
                !ctx.preferences
                    .pinned
                    .contains_key(&atlas_sim::ComponentId(i))
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let (ca, cb) = (ctx.peak_cpu_of(a), ctx.peak_cpu_of(b));
            match self.order {
                GreedyOrder::LargestFirst => cb.partial_cmp(&ca).expect("finite"),
                GreedyOrder::SmallestFirst => ca.partial_cmp(&cb).expect("finite"),
            }
        });

        for &c in &candidates {
            if ctx.satisfies_site_constraints(&sites) {
                break;
            }
            sites[c] = ctx.offload_site;
        }
        BaselineContext::to_plan(&sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_context;
    use atlas_sim::{ComponentId, Location};

    #[test]
    fn largest_first_offloads_the_busiest_component() {
        // CPU demands: A=2, B=6, C=3; limit 7 → offloading B alone suffices.
        let ctx = test_context(7.0);
        let plan = GreedyAdvisor::largest_first().recommend(&ctx);
        assert_eq!(plan.cloud_components(), vec![ComponentId(1)]);
    }

    #[test]
    fn smallest_first_offloads_more_components() {
        let ctx = test_context(7.0);
        let plan = GreedyAdvisor::smallest_first().recommend(&ctx);
        // A (2) then C (3) must both go before the limit is met (leaves 6).
        assert!(plan.cloud_components().len() >= 2);
        assert!(!plan.cloud_components().contains(&ComponentId(1)));
    }

    #[test]
    fn no_offloading_when_the_cluster_is_large_enough() {
        let ctx = test_context(100.0);
        for advisor in [
            GreedyAdvisor::largest_first(),
            GreedyAdvisor::smallest_first(),
        ] {
            assert!(advisor.recommend(&ctx).cloud_components().is_empty());
        }
    }

    #[test]
    fn pinned_components_stay_put() {
        let mut ctx = test_context(7.0);
        ctx.preferences = ctx
            .preferences
            .clone()
            .pin(ComponentId(1), Location::OnPrem);
        let plan = GreedyAdvisor::largest_first().recommend(&ctx);
        assert_eq!(plan.location(ComponentId(1)), Location::OnPrem);
        // It must offload others to compensate (A and C).
        assert!(plan.cloud_components().len() >= 2);
    }
}
