//! Affinity-based single-plan advisors: REMaP \[68\] and IntMA \[57\].
//!
//! Both manage placement by minimising the interaction between components
//! that end up in different locations. IntMA considers the overall traffic
//! size between component pairs; REMaP additionally considers the number of
//! message exchanges. Neither looks at how components serve end-to-end API
//! requests — the gap Atlas exploits.

use atlas_core::MigrationPlan;
use atlas_sim::SiteId;
use atlas_telemetry::{Direction, TelemetryStore};

use crate::context::{BaselineContext, PlacementScore};

/// Pairwise affinity between components: total bytes and message counts
/// observed over the learning period (symmetric).
#[derive(Debug, Clone, Default)]
pub struct AffinityMatrix {
    bytes: Vec<Vec<f64>>,
    messages: Vec<Vec<f64>>,
}

impl AffinityMatrix {
    /// Build the affinity matrix from the pairwise network metrics.
    pub fn from_store(store: &TelemetryStore, component_index: &[String]) -> Self {
        let n = component_index.len();
        let mut bytes = vec![vec![0.0; n]; n];
        let mut messages = vec![vec![0.0; n]; n];
        let traffic = store.traffic();
        for edge in traffic.edges() {
            let from = component_index.iter().position(|c| *c == edge.from);
            let to = component_index.iter().position(|c| *c == edge.to);
            let (Some(from), Some(to)) = (from, to) else {
                continue;
            };
            let req = traffic.total_bytes(&edge, Direction::Request);
            let resp = traffic.total_bytes(&edge, Direction::Response);
            bytes[from][to] += req + resp;
            bytes[to][from] += req + resp;
            let req_msgs = traffic
                .samples(&edge, Direction::Request)
                .map(|s| s.len() as f64)
                .unwrap_or(0.0);
            messages[from][to] += req_msgs;
            messages[to][from] += req_msgs;
        }
        Self { bytes, messages }
    }

    /// Number of components covered.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Bytes exchanged between two components (symmetric).
    pub fn bytes_between(&self, a: usize, b: usize) -> f64 {
        self.bytes[a][b]
    }

    /// Messages exchanged between two components (symmetric).
    pub fn messages_between(&self, a: usize, b: usize) -> f64 {
        self.messages[a][b]
    }

    /// Total bytes crossing the on-prem/cloud boundary for a placement.
    pub fn cross_boundary_bytes(&self, in_cloud: &[bool]) -> f64 {
        let n = self.len().min(in_cloud.len());
        let mut total = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                if in_cloud[i] != in_cloud[j] {
                    total += self.bytes[i][j];
                }
            }
        }
        total
    }

    /// Total messages crossing the boundary for a placement.
    pub fn cross_boundary_messages(&self, in_cloud: &[bool]) -> f64 {
        let n = self.len().min(in_cloud.len());
        let mut total = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                if in_cloud[i] != in_cloud[j] {
                    total += self.messages[i][j];
                }
            }
        }
        total
    }

    /// Total bytes on pairs whose endpoints sit at *different* sites — the
    /// N-site generalisation of [`Self::cross_boundary_bytes`], summing the
    /// pairs in the same order (for two sites the two are bit-identical).
    pub fn cross_site_bytes(&self, sites: &[SiteId]) -> f64 {
        let n = self.len().min(sites.len());
        let mut total = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                if sites[i] != sites[j] {
                    total += self.bytes[i][j];
                }
            }
        }
        total
    }

    /// Total messages on cross-site pairs (see [`Self::cross_site_bytes`]).
    pub fn cross_site_messages(&self, sites: &[SiteId]) -> f64 {
        let n = self.len().min(sites.len());
        let mut total = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                if sites[i] != sites[j] {
                    total += self.messages[i][j];
                }
            }
        }
        total
    }
}

/// The affinity score the two advisors minimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AffinityObjective {
    /// Traffic size only (IntMA).
    Bytes,
    /// Traffic size plus message exchanges (REMaP).
    BytesAndMessages,
}

fn affinity_of(score: &PlacementScore, objective: AffinityObjective) -> f64 {
    match objective {
        AffinityObjective::Bytes => score.cross_dc_bytes,
        AffinityObjective::BytesAndMessages => {
            // Normalise messages to a byte-comparable scale using the mean
            // message size so that neither term vanishes.
            score.cross_dc_bytes + score.cross_dc_messages * 1_000.0
        }
    }
}

/// Greedy affinity-minimising placement over the context's site alphabet:
/// offload components one `(component, site)` move at a time, always picking
/// the move with the smallest cross-site affinity, until the on-prem
/// constraints are satisfied; then keep moving components (to any site,
/// including back on-prem) while it strictly reduces the affinity. The
/// two-site case probes exactly the historical offload/flip moves.
fn affinity_search(ctx: &BaselineContext, objective: AffinityObjective) -> MigrationPlan {
    // Both phases repeatedly re-probe overlapping placements (each greedy
    // step re-scores every remaining candidate; each improvement round
    // re-tests rejected moves), so route everything through the shared
    // cached scorer.
    let scorer = ctx.scorer();
    let n = ctx.component_count();
    let site_count = ctx.site_count as u16;
    let mut sites = vec![SiteId::ON_PREM; n];
    ctx.apply_pins(&mut sites);

    let movable: Vec<usize> = (0..n)
        .filter(|&i| {
            !ctx.preferences
                .pinned
                .contains_key(&atlas_sim::ComponentId(i))
        })
        .collect();

    // Phase 1: reach feasibility by offloading on-prem components.
    let mut guard = 0;
    while !scorer.score(&sites).feasible && guard < n {
        guard += 1;
        let candidate = movable
            .iter()
            .copied()
            .filter(|&i| sites[i].is_on_prem())
            .flat_map(|i| (1..site_count).map(move |s| (i, SiteId(s))))
            .min_by(|&(ia, sa), &(ib, sb)| {
                let mut with_a = sites.clone();
                with_a[ia] = sa;
                let mut with_b = sites.clone();
                with_b[ib] = sb;
                affinity_of(&scorer.score(&with_a), objective)
                    .partial_cmp(&affinity_of(&scorer.score(&with_b), objective))
                    .expect("finite affinity")
            });
        match candidate {
            Some((c, s)) => sites[c] = s,
            None => break,
        }
    }

    // Phase 2: local improvement — move any component to any other site if
    // it strictly reduces the affinity while staying feasible.
    let mut improved = true;
    let mut rounds = 0;
    'improve: while improved && rounds < 2 * n {
        improved = false;
        rounds += 1;
        let current = affinity_of(&scorer.score(&sites), objective);
        for &i in &movable {
            for s in 0..site_count {
                let target = SiteId(s);
                if sites[i] == target {
                    continue;
                }
                let mut moved = sites.clone();
                moved[i] = target;
                let score = scorer.score(&moved);
                if score.feasible && affinity_of(&score, objective) + 1e-9 < current {
                    sites = moved;
                    improved = true;
                    continue 'improve;
                }
            }
        }
    }

    BaselineContext::to_plan(&sites)
}

/// REMaP-style advisor: minimise cross-datacenter traffic size and message
/// exchanges.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemapAdvisor;

impl RemapAdvisor {
    /// Recommend a single placement.
    pub fn recommend(&self, ctx: &BaselineContext) -> MigrationPlan {
        affinity_search(ctx, AffinityObjective::BytesAndMessages)
    }
}

/// IntMA-style advisor: minimise cross-datacenter traffic size.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntMaAdvisor;

impl IntMaAdvisor {
    /// Recommend a single placement.
    pub fn recommend(&self, ctx: &BaselineContext) -> MigrationPlan {
        affinity_search(ctx, AffinityObjective::Bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_context;

    #[test]
    fn affinity_matrix_is_symmetric_and_counts_both_directions() {
        let ctx = test_context(7.0);
        let m = &ctx.affinity;
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.bytes_between(0, 1), m.bytes_between(1, 0));
        assert!(m.bytes_between(0, 1) > m.bytes_between(1, 2));
        assert!(m.messages_between(0, 1) > 0.0);
        assert_eq!(m.bytes_between(0, 2), 0.0);
    }

    #[test]
    fn advisors_produce_feasible_plans() {
        let ctx = test_context(7.0);
        for plan in [RemapAdvisor.recommend(&ctx), IntMaAdvisor.recommend(&ctx)] {
            let in_cloud: Vec<bool> = plan.to_bits().iter().map(|&b| b == 1).collect();
            assert!(
                ctx.satisfies_constraints(&in_cloud),
                "plan {:?}",
                plan.to_bits()
            );
            assert!(
                plan.cloud_components().len() >= 1,
                "the CPU limit forces offloading"
            );
        }
    }

    #[test]
    fn affinity_advisors_avoid_cutting_the_chatty_edge() {
        // A-B exchange 100× more data than B-C; with a limit that forces one
        // offload, both advisors should prefer cutting B-C (offload C) or
        // moving A+B together rather than splitting A and B.
        let ctx = test_context(8.5); // needs ≥ 3 cores offloaded
        let plan = IntMaAdvisor.recommend(&ctx);
        let in_cloud: Vec<bool> = plan.to_bits().iter().map(|&b| b == 1).collect();
        assert!(
            in_cloud[0] == in_cloud[1],
            "IntMA should keep the chatty A-B pair collocated: {in_cloud:?}"
        );
        let remap = RemapAdvisor.recommend(&ctx);
        let in_cloud: Vec<bool> = remap.to_bits().iter().map(|&b| b == 1).collect();
        assert!(in_cloud[0] == in_cloud[1]);
    }

    #[test]
    fn unconstrained_context_keeps_everything_onprem() {
        let ctx = test_context(1_000.0);
        let plan = IntMaAdvisor.recommend(&ctx);
        assert!(plan.cloud_components().is_empty());
    }

    #[test]
    fn pinned_components_are_respected() {
        let mut ctx = test_context(7.0);
        ctx.preferences = ctx
            .preferences
            .clone()
            .pin(atlas_sim::ComponentId(1), atlas_sim::Location::OnPrem);
        let plan = RemapAdvisor.recommend(&ctx);
        assert_eq!(
            plan.location(atlas_sim::ComponentId(1)),
            atlas_sim::Location::OnPrem
        );
    }
}
