//! Affinity-based single-plan advisors: REMaP \[68\] and IntMA \[57\].
//!
//! Both manage placement by minimising the interaction between components
//! that end up in different locations. IntMA considers the overall traffic
//! size between component pairs; REMaP additionally considers the number of
//! message exchanges. Neither looks at how components serve end-to-end API
//! requests — the gap Atlas exploits.

use atlas_core::MigrationPlan;
use atlas_sim::SiteId;
use atlas_telemetry::{Direction, TelemetryStore};

use crate::context::{BaselineContext, BaselineScorer, PlacementScore};

/// Pairwise affinity between components: total bytes and message counts
/// observed over the learning period (symmetric).
///
/// Besides the dense matrices, the constructor compiles the *sparse* pair
/// list of the upper triangle — every `(i, j)` with `i < j` whose bytes or
/// message count is nonzero, in lexicographic order. The cross-site sums
/// iterate that list, so a probe costs O(observed edges) instead of O(n²);
/// skipping the all-zero pairs adds nothing to the accumulator, so the sums
/// stay bit-identical to the historical dense loops.
#[derive(Debug, Clone, Default)]
pub struct AffinityMatrix {
    bytes: Vec<Vec<f64>>,
    messages: Vec<Vec<f64>>,
    pairs: Vec<AffinityPair>,
}

/// One compiled nonzero pair of the upper triangle (`i < j`).
#[derive(Debug, Clone, Copy)]
struct AffinityPair {
    i: u32,
    j: u32,
    bytes: f64,
    messages: f64,
}

impl AffinityMatrix {
    /// Build the affinity matrix from the pairwise network metrics.
    pub fn from_store(store: &TelemetryStore, component_index: &[String]) -> Self {
        let n = component_index.len();
        let mut bytes = vec![vec![0.0; n]; n];
        let mut messages = vec![vec![0.0; n]; n];
        let traffic = store.traffic();
        for edge in traffic.edges() {
            let from = component_index.iter().position(|c| *c == edge.from);
            let to = component_index.iter().position(|c| *c == edge.to);
            let (Some(from), Some(to)) = (from, to) else {
                continue;
            };
            let req = traffic.total_bytes(&edge, Direction::Request);
            let resp = traffic.total_bytes(&edge, Direction::Response);
            bytes[from][to] += req + resp;
            bytes[to][from] += req + resp;
            let req_msgs = traffic
                .samples(&edge, Direction::Request)
                .map(|s| s.len() as f64)
                .unwrap_or(0.0);
            messages[from][to] += req_msgs;
            messages[to][from] += req_msgs;
        }
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if bytes[i][j] != 0.0 || messages[i][j] != 0.0 {
                    pairs.push(AffinityPair {
                        i: i as u32,
                        j: j as u32,
                        bytes: bytes[i][j],
                        messages: messages[i][j],
                    });
                }
            }
        }
        Self {
            bytes,
            messages,
            pairs,
        }
    }

    /// Number of components covered.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Bytes exchanged between two components (symmetric).
    pub fn bytes_between(&self, a: usize, b: usize) -> f64 {
        self.bytes[a][b]
    }

    /// Messages exchanged between two components (symmetric).
    pub fn messages_between(&self, a: usize, b: usize) -> f64 {
        self.messages[a][b]
    }

    /// Total bytes crossing the on-prem/cloud boundary for a placement.
    pub fn cross_boundary_bytes(&self, in_cloud: &[bool]) -> f64 {
        let n = self.len().min(in_cloud.len());
        let mut total = 0.0;
        for p in &self.pairs {
            let (i, j) = (p.i as usize, p.j as usize);
            if j < n && in_cloud[i] != in_cloud[j] {
                total += p.bytes;
            }
        }
        total
    }

    /// Total messages crossing the boundary for a placement.
    pub fn cross_boundary_messages(&self, in_cloud: &[bool]) -> f64 {
        let n = self.len().min(in_cloud.len());
        let mut total = 0.0;
        for p in &self.pairs {
            let (i, j) = (p.i as usize, p.j as usize);
            if j < n && in_cloud[i] != in_cloud[j] {
                total += p.messages;
            }
        }
        total
    }

    /// Total bytes on pairs whose endpoints sit at *different* sites — the
    /// N-site generalisation of [`Self::cross_boundary_bytes`], summing the
    /// pairs in the same order (for two sites the two are bit-identical).
    pub fn cross_site_bytes(&self, sites: &[SiteId]) -> f64 {
        let n = self.len().min(sites.len());
        let mut total = 0.0;
        for p in &self.pairs {
            let (i, j) = (p.i as usize, p.j as usize);
            if j < n && sites[i] != sites[j] {
                total += p.bytes;
            }
        }
        total
    }

    /// Total messages on cross-site pairs (see [`Self::cross_site_bytes`]).
    pub fn cross_site_messages(&self, sites: &[SiteId]) -> f64 {
        let n = self.len().min(sites.len());
        let mut total = 0.0;
        for p in &self.pairs {
            let (i, j) = (p.i as usize, p.j as usize);
            if j < n && sites[i] != sites[j] {
                total += p.messages;
            }
        }
        total
    }
}

/// The affinity score the two advisors minimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AffinityObjective {
    /// Traffic size only (IntMA).
    Bytes,
    /// Traffic size plus message exchanges (REMaP).
    BytesAndMessages,
}

fn affinity_of(score: &PlacementScore, objective: AffinityObjective) -> f64 {
    match objective {
        AffinityObjective::Bytes => score.cross_dc_bytes,
        AffinityObjective::BytesAndMessages => {
            // Normalise messages to a byte-comparable scale using the mean
            // message size so that neither term vanishes.
            score.cross_dc_bytes + score.cross_dc_messages * 1_000.0
        }
    }
}

/// Greedy affinity-minimising placement over the context's site alphabet:
/// offload components one `(component, site)` move at a time, always picking
/// the move with the smallest cross-site affinity, until the on-prem
/// constraints are satisfied; then keep moving components (to any site,
/// including back on-prem) while it strictly reduces the affinity. The
/// two-site case probes exactly the historical offload/flip moves.
fn affinity_search(scorer: &BaselineScorer<'_>, objective: AffinityObjective) -> MigrationPlan {
    // Both phases repeatedly re-probe overlapping placements (each greedy
    // step re-scores every remaining candidate; each improvement round
    // re-tests rejected moves), so route everything through the shared
    // cached scorer. Every probe is the current assignment plus one move,
    // so it goes through the scorer's allocation-free delta path.
    let ctx = scorer.context();
    let n = ctx.component_count();
    let site_count = ctx.site_count as u16;
    let mut sites = vec![SiteId::ON_PREM; n];
    ctx.apply_pins(&mut sites);

    let movable: Vec<usize> = (0..n)
        .filter(|&i| {
            !ctx.preferences
                .pinned
                .contains_key(&atlas_sim::ComponentId(i))
        })
        .collect();

    // Phase 1: reach feasibility by offloading on-prem components.
    let mut guard = 0;
    while !scorer.score(&sites).feasible && guard < n {
        guard += 1;
        let candidate = movable
            .iter()
            .copied()
            .filter(|&i| sites[i].is_on_prem())
            .flat_map(|i| (1..site_count).map(move |s| (i, SiteId(s))))
            .min_by(|&(ia, sa), &(ib, sb)| {
                affinity_of(&scorer.score_move(&sites, ia, sa), objective)
                    .partial_cmp(&affinity_of(&scorer.score_move(&sites, ib, sb), objective))
                    .expect("finite affinity")
            });
        match candidate {
            Some((c, s)) => sites[c] = s,
            None => break,
        }
    }

    // Phase 2: local improvement — move any component to any other site if
    // it strictly reduces the affinity while staying feasible.
    let mut improved = true;
    let mut rounds = 0;
    'improve: while improved && rounds < 2 * n {
        improved = false;
        rounds += 1;
        let current = affinity_of(&scorer.score(&sites), objective);
        for &i in &movable {
            for s in 0..site_count {
                let target = SiteId(s);
                if sites[i] == target {
                    continue;
                }
                let score = scorer.score_move(&sites, i, target);
                if score.feasible && affinity_of(&score, objective) + 1e-9 < current {
                    sites[i] = target;
                    improved = true;
                    continue 'improve;
                }
            }
        }
    }

    BaselineContext::to_plan(&sites)
}

/// REMaP-style advisor: minimise cross-datacenter traffic size and message
/// exchanges.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemapAdvisor;

impl RemapAdvisor {
    /// Recommend a single placement. Scoring goes through a fresh
    /// [`BaselineScorer`]; use [`Self::recommend_with`] to share one (or to
    /// disable its delta path).
    pub fn recommend(&self, ctx: &BaselineContext) -> MigrationPlan {
        self.recommend_with(&ctx.scorer())
    }

    /// Recommend on a caller-supplied scorer, sharing its memo cache.
    pub fn recommend_with(&self, scorer: &BaselineScorer<'_>) -> MigrationPlan {
        affinity_search(scorer, AffinityObjective::BytesAndMessages)
    }
}

/// IntMA-style advisor: minimise cross-datacenter traffic size.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntMaAdvisor;

impl IntMaAdvisor {
    /// Recommend a single placement. Scoring goes through a fresh
    /// [`BaselineScorer`]; use [`Self::recommend_with`] to share one (or to
    /// disable its delta path).
    pub fn recommend(&self, ctx: &BaselineContext) -> MigrationPlan {
        self.recommend_with(&ctx.scorer())
    }

    /// Recommend on a caller-supplied scorer, sharing its memo cache.
    pub fn recommend_with(&self, scorer: &BaselineScorer<'_>) -> MigrationPlan {
        affinity_search(scorer, AffinityObjective::Bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_context;

    #[test]
    fn affinity_matrix_is_symmetric_and_counts_both_directions() {
        let ctx = test_context(7.0);
        let m = &ctx.affinity;
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.bytes_between(0, 1), m.bytes_between(1, 0));
        assert!(m.bytes_between(0, 1) > m.bytes_between(1, 2));
        assert!(m.messages_between(0, 1) > 0.0);
        assert_eq!(m.bytes_between(0, 2), 0.0);
    }

    /// The compiled sparse pair list reproduces the dense upper-triangle
    /// sums bit-for-bit (the skipped pairs are exactly the all-zero ones).
    #[test]
    fn sparse_pair_sums_match_a_dense_recount() {
        let ctx = test_context(7.0);
        let m = &ctx.affinity;
        let n = m.len();
        for sites in [
            vec![SiteId(0), SiteId(1), SiteId(0)],
            vec![SiteId(1), SiteId(0), SiteId(2)],
            vec![SiteId(2), SiteId(2), SiteId(2)],
            vec![SiteId(0), SiteId(1)], // shorter than the matrix
        ] {
            let k = n.min(sites.len());
            let mut bytes = 0.0;
            let mut messages = 0.0;
            for i in 0..k {
                for j in (i + 1)..k {
                    if sites[i] != sites[j] {
                        bytes += m.bytes_between(i, j);
                        messages += m.messages_between(i, j);
                    }
                }
            }
            assert_eq!(m.cross_site_bytes(&sites), bytes, "sites {sites:?}");
            assert_eq!(m.cross_site_messages(&sites), messages, "sites {sites:?}");
        }
        let flags = [false, true, false];
        assert_eq!(
            m.cross_boundary_bytes(&flags),
            m.cross_site_bytes(&BaselineContext::flags_to_sites(&flags))
        );
        assert_eq!(
            m.cross_boundary_messages(&flags),
            m.cross_site_messages(&BaselineContext::flags_to_sites(&flags))
        );
    }

    /// REMaP and IntMA recommend byte-identical plans with the scorer's
    /// delta path on and off.
    #[test]
    fn advisors_are_identical_with_and_without_the_delta_path() {
        let ctx = test_context(7.0);
        let on = RemapAdvisor.recommend_with(&ctx.scorer().with_delta_path(true));
        let off = RemapAdvisor.recommend_with(&ctx.scorer().with_delta_path(false));
        assert_eq!(on, off);
        let on = IntMaAdvisor.recommend_with(&ctx.scorer().with_delta_path(true));
        let off = IntMaAdvisor.recommend_with(&ctx.scorer().with_delta_path(false));
        assert_eq!(on, off);
    }

    #[test]
    fn advisors_produce_feasible_plans() {
        let ctx = test_context(7.0);
        for plan in [RemapAdvisor.recommend(&ctx), IntMaAdvisor.recommend(&ctx)] {
            let in_cloud: Vec<bool> = plan.to_bits().iter().map(|&b| b == 1).collect();
            assert!(
                ctx.satisfies_constraints(&in_cloud),
                "plan {:?}",
                plan.to_bits()
            );
            assert!(
                plan.cloud_components().len() >= 1,
                "the CPU limit forces offloading"
            );
        }
    }

    #[test]
    fn affinity_advisors_avoid_cutting_the_chatty_edge() {
        // A-B exchange 100× more data than B-C; with a limit that forces one
        // offload, both advisors should prefer cutting B-C (offload C) or
        // moving A+B together rather than splitting A and B.
        let ctx = test_context(8.5); // needs ≥ 3 cores offloaded
        let plan = IntMaAdvisor.recommend(&ctx);
        let in_cloud: Vec<bool> = plan.to_bits().iter().map(|&b| b == 1).collect();
        assert!(
            in_cloud[0] == in_cloud[1],
            "IntMA should keep the chatty A-B pair collocated: {in_cloud:?}"
        );
        let remap = RemapAdvisor.recommend(&ctx);
        let in_cloud: Vec<bool> = remap.to_bits().iter().map(|&b| b == 1).collect();
        assert!(in_cloud[0] == in_cloud[1]);
    }

    #[test]
    fn unconstrained_context_keeps_everything_onprem() {
        let ctx = test_context(1_000.0);
        let plan = IntMaAdvisor.recommend(&ctx);
        assert!(plan.cloud_components().is_empty());
    }

    #[test]
    fn pinned_components_are_respected() {
        let mut ctx = test_context(7.0);
        ctx.preferences = ctx
            .preferences
            .clone()
            .pin(atlas_sim::ComponentId(1), atlas_sim::Location::OnPrem);
        let plan = RemapAdvisor.recommend(&ctx);
        assert_eq!(
            plan.location(atlas_sim::ComponentId(1)),
            atlas_sim::Location::OnPrem
        );
    }
}
