//! The affinity-based NSGA-II baseline (paper §5.2, "affinity-based GA").
//!
//! A multi-plan approach representative of \[29, 39, 44, 47, 53\]: NSGA-II
//! with two objectives — cross-datacenter traffic (a proxy for performance)
//! and cloud hosting cost (using the same cost model as Atlas) — with
//! uniform crossover and bit-flip mutation. It has no notion of per-API
//! workflows, which is what Figures 12–15 exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atlas_core::MigrationPlan;
use atlas_ga::nsga2::{rank_and_crowding, select_survivors};
use atlas_ga::{binary_tournament, bit_flip_mutation, pareto_front_indices, uniform_crossover};

use crate::context::BaselineContext;

/// The affinity-based NSGA-II advisor.
#[derive(Debug, Clone, Copy)]
pub struct AffinityGaAdvisor {
    /// Population size (the paper uses 100, like Atlas).
    pub population: usize,
    /// Total candidate plans visited (the paper caps at 10,000).
    pub max_visited: usize,
    /// Mutation rate of offspring.
    pub mutation_rate: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for AffinityGaAdvisor {
    fn default() -> Self {
        Self {
            population: 100,
            max_visited: 10_000,
            mutation_rate: 0.02,
            seed: 41,
        }
    }
}

impl AffinityGaAdvisor {
    /// A small configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            population: 20,
            max_visited: 500,
            mutation_rate: 0.03,
            seed: 41,
        }
    }

    fn objectives(&self, ctx: &BaselineContext, in_cloud: &[bool]) -> Vec<f64> {
        vec![ctx.cross_dc_bytes(in_cloud), ctx.cost(in_cloud)]
    }

    /// Run the search and return the Pareto-optimal plans under the
    /// traffic/cost objectives.
    pub fn recommend(&self, ctx: &BaselineContext) -> Vec<MigrationPlan> {
        let n = ctx.component_count();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut visited = 0usize;

        let mut population: Vec<Vec<bool>> = (0..self.population)
            .map(|_| {
                let fraction = rng.gen_range(0.05..0.95);
                let mut flags: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < fraction).collect();
                ctx.apply_pins(&mut flags);
                flags
            })
            .collect();
        let mut objectives: Vec<Vec<f64>> =
            population.iter().map(|p| self.objectives(ctx, p)).collect();
        let mut feasible: Vec<bool> = population
            .iter()
            .map(|p| ctx.satisfies_constraints(p))
            .collect();
        visited += population.len();

        while visited < self.max_visited {
            let survivors = select_survivors(&objectives, &feasible, self.population);
            population = survivors.iter().map(|&i| population[i].clone()).collect();
            objectives = survivors.iter().map(|&i| objectives[i].clone()).collect();
            feasible = survivors.iter().map(|&i| feasible[i]).collect();

            let (rank, crowding) = rank_and_crowding(&objectives, &feasible);
            let offspring_target = self.population.min(self.max_visited - visited);
            let mut offspring = Vec::with_capacity(offspring_target);
            while offspring.len() < offspring_target {
                let a = binary_tournament(&mut rng, &rank, &crowding);
                let b = binary_tournament(&mut rng, &rank, &crowding);
                let pa: Vec<u8> = population[a].iter().map(|&x| u8::from(x)).collect();
                let pb: Vec<u8> = population[b].iter().map(|&x| u8::from(x)).collect();
                let mut bits = uniform_crossover(&mut rng, &pa, &pb);
                bit_flip_mutation(&mut rng, &mut bits, self.mutation_rate);
                let mut flags: Vec<bool> = bits.iter().map(|&x| x == 1).collect();
                ctx.apply_pins(&mut flags);
                offspring.push(flags);
            }
            for child in offspring {
                objectives.push(self.objectives(ctx, &child));
                feasible.push(ctx.satisfies_constraints(&child));
                population.push(child);
                visited += 1;
            }
        }

        // Pareto front over the feasible members.
        let feasible_idx: Vec<usize> = (0..population.len()).filter(|&i| feasible[i]).collect();
        let candidates: Vec<usize> = if feasible_idx.is_empty() {
            (0..population.len()).collect()
        } else {
            feasible_idx
        };
        let objs: Vec<Vec<f64>> = candidates.iter().map(|&i| objectives[i].clone()).collect();
        let front = pareto_front_indices(&objs);
        let mut seen = std::collections::HashSet::new();
        front
            .into_iter()
            .map(|k| &population[candidates[k]])
            .filter(|p| seen.insert((*p).clone()))
            .map(|p| MigrationPlan::from_bits(&BaselineContext::to_bits(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_context;

    #[test]
    fn produces_feasible_pareto_plans() {
        let ctx = test_context(7.0);
        let plans = AffinityGaAdvisor::fast().recommend(&ctx);
        assert!(!plans.is_empty());
        for plan in &plans {
            let flags: Vec<bool> = plan.to_bits().iter().map(|&b| b == 1).collect();
            assert!(ctx.satisfies_constraints(&flags));
        }
        // No plan dominates another under the GA's own objectives.
        let advisor = AffinityGaAdvisor::fast();
        for a in &plans {
            for b in &plans {
                if a != b {
                    let fa: Vec<bool> = a.to_bits().iter().map(|&x| x == 1).collect();
                    let fb: Vec<bool> = b.to_bits().iter().map(|&x| x == 1).collect();
                    assert!(
                        !atlas_ga::dominates(
                            &advisor.objectives(&ctx, &fa),
                            &advisor.objectives(&ctx, &fb)
                        ) || a.to_bits() == b.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn respects_the_visit_budget() {
        let ctx = test_context(7.0);
        let advisor = AffinityGaAdvisor {
            population: 10,
            max_visited: 50,
            mutation_rate: 0.05,
            seed: 3,
        };
        // Just check it terminates quickly and returns something sane.
        let plans = advisor.recommend(&ctx);
        assert!(!plans.is_empty());
        assert!(plans.len() <= 50);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let ctx = test_context(7.0);
        let a = AffinityGaAdvisor::fast().recommend(&ctx);
        let b = AffinityGaAdvisor::fast().recommend(&ctx);
        assert_eq!(a, b);
    }
}
