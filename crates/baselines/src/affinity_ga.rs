//! The affinity-based NSGA-II baseline (paper §5.2, "affinity-based GA").
//!
//! A multi-plan approach representative of \[29, 39, 44, 47, 53\]: NSGA-II
//! with two objectives — cross-datacenter traffic (a proxy for performance)
//! and cloud hosting cost (using the same cost model as Atlas) — with
//! uniform crossover and bit-flip mutation. It has no notion of per-API
//! workflows, which is what Figures 12–15 exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atlas_core::{random_site, MigrationPlan, ARCHIVE_CAPACITY};
use atlas_ga::nsga2::{survive, take_selected};
use atlas_ga::{
    alphabet_mutation, binary_tournament, pareto_front_indices, uniform_crossover, ParetoArchive,
};
use atlas_sim::SiteId;

use crate::context::{BaselineContext, BaselineScorer, PlacementScore};

/// The affinity-based NSGA-II advisor.
#[derive(Debug, Clone, Copy)]
pub struct AffinityGaAdvisor {
    /// Population size (the paper uses 100, like Atlas).
    pub population: usize,
    /// Search budget: *unique* candidate placements scored (the paper caps
    /// at 10,000). Duplicates are served from the shared scorer's cache and
    /// do not burn budget, matching the Atlas recommender's semantics.
    pub max_visited: usize,
    /// Mutation rate of offspring.
    pub mutation_rate: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for AffinityGaAdvisor {
    fn default() -> Self {
        Self {
            population: 100,
            max_visited: 10_000,
            mutation_rate: 0.02,
            seed: 41,
        }
    }
}

impl AffinityGaAdvisor {
    /// A small configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            population: 20,
            max_visited: 500,
            mutation_rate: 0.03,
            seed: 41,
        }
    }

    fn objectives_of(score: &PlacementScore) -> [f64; 2] {
        [score.cross_dc_bytes, score.cost]
    }

    /// Run the search and return the Pareto-optimal plans under the
    /// traffic/cost objectives. Scoring goes through a fresh
    /// [`BaselineScorer`]; use [`Self::recommend_with`] to share one.
    pub fn recommend(&self, ctx: &BaselineContext) -> Vec<MigrationPlan> {
        self.recommend_with(&ctx.scorer())
    }

    /// Run the search on a caller-supplied scorer, sharing its memo cache.
    /// The budget counts unique placements scored by this run.
    pub fn recommend_with(&self, scorer: &BaselineScorer<'_>) -> Vec<MigrationPlan> {
        let ctx = scorer.context();
        let n = ctx.component_count();
        let site_alphabet: Vec<SiteId> = (0..ctx.site_count as u16).map(SiteId).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let already_cached = scorer.unique_evaluations();
        let visited = |scorer: &BaselineScorer<'_>| {
            scorer.unique_evaluations().saturating_sub(already_cached)
        };
        // Safety valve against a converged population producing only cached
        // offspring (see the same guard in the Atlas recommender).
        let mut requested = 0usize;
        let request_cap = self.max_visited.saturating_mul(8).max(64);

        // Every feasible placement scored during the search is offered to
        // the external archive under the GA's own two objectives, so the
        // final front survives population churn.
        let mut archive: ParetoArchive<Vec<SiteId>, [f64; 2]> =
            ParetoArchive::new(ARCHIVE_CAPACITY);
        // The delta path routes children whose diff against their nearer
        // tournament parent stays small; larger diffs are batch-scored.
        let change_cap = ((n as f64 * atlas_core::DELTA_DIFF_THRESHOLD) as usize).max(1);

        let mut population: Vec<Vec<SiteId>> = (0..self.population)
            .map(|_| {
                let fraction = rng.gen_range(0.05..0.95);
                let mut sites: Vec<SiteId> = (0..n)
                    .map(|_| random_site(&mut rng, fraction, ctx.site_count))
                    .collect();
                ctx.apply_pins(&mut sites);
                sites
            })
            .collect();
        let scores = scorer.score_batch(&population);
        requested += population.len();
        let mut objectives: Vec<[f64; 2]> = scores.iter().map(Self::objectives_of).collect();
        let mut feasible: Vec<bool> = scores.iter().map(|s| s.feasible).collect();
        for (member, score) in population.iter().zip(&scores) {
            if score.feasible {
                archive.insert(member, Self::objectives_of(score));
            }
        }

        while visited(scorer) < self.max_visited && requested < request_cap {
            let survival = survive(&objectives, &feasible, self.population);
            population = take_selected(population, &survival.selected);
            objectives = survival.selected.iter().map(|&i| objectives[i]).collect();
            feasible = survival.selected.iter().map(|&i| feasible[i]).collect();
            let (rank, crowding) = (survival.rank, survival.crowding);

            // saturating: a concurrently shared scorer can grow between the
            // loop guard and this read.
            let offspring_target = self
                .population
                .min(self.max_visited.saturating_sub(visited(scorer)))
                .max(1);
            let mut offspring = Vec::with_capacity(offspring_target);
            // Provenance of each child: the population index of its nearer
            // tournament parent (fewest differing genes, ties to the first)
            // plus those gene changes. Small-diff children are scored
            // through the scorer's allocation-free delta path; children
            // whose diff exceeds the cap are batched.
            let mut provenance: Vec<Option<(usize, Vec<(usize, SiteId)>)>> =
                Vec::with_capacity(offspring_target);
            while offspring.len() < offspring_target {
                let a = binary_tournament(&mut rng, &rank, &crowding);
                let b = binary_tournament(&mut rng, &rank, &crowding);
                let mut sites = uniform_crossover(&mut rng, &population[a], &population[b]);
                alphabet_mutation(&mut rng, &mut sites, &site_alphabet, self.mutation_rate);
                ctx.apply_pins(&mut sites);
                // Diff after pinning: pins can revert a mutated gene, and
                // population members already satisfy them.
                let diff = |p: &[SiteId]| -> Vec<(usize, SiteId)> {
                    (0..n)
                        .filter(|&g| p[g] != sites[g])
                        .map(|g| (g, sites[g]))
                        .collect()
                };
                let da = diff(&population[a]);
                let db = diff(&population[b]);
                let (parent, changes) = if db.len() < da.len() {
                    (b, db)
                } else {
                    (a, da)
                };
                provenance.push((changes.len() <= change_cap).then_some((parent, changes)));
                offspring.push(sites);
            }
            let child_scores = if scorer.delta_path() {
                let mut scores: Vec<Option<PlacementScore>> = vec![None; offspring.len()];
                let mut batched: Vec<usize> = Vec::new();
                for (k, prov) in provenance.iter().enumerate() {
                    match prov {
                        Some((p, changes)) => {
                            scores[k] = Some(scorer.score_changes(&population[*p], changes));
                        }
                        None => batched.push(k),
                    }
                }
                let fresh: Vec<Vec<SiteId>> =
                    batched.iter().map(|&k| offspring[k].clone()).collect();
                for (k, score) in batched.iter().zip(scorer.score_batch(&fresh)) {
                    scores[*k] = Some(score);
                }
                scores.into_iter().map(|s| s.expect("scored")).collect()
            } else {
                scorer.score_batch(&offspring)
            };
            requested += offspring.len();
            for (child, score) in offspring.into_iter().zip(&child_scores) {
                if score.feasible {
                    archive.insert(&child, Self::objectives_of(score));
                }
                objectives.push(Self::objectives_of(score));
                feasible.push(score.feasible);
                population.push(child);
            }
        }

        // The answer is the archive front; an empty archive (no feasible
        // placement within budget) falls back to the Pareto front of the
        // final population, deduped by borrowed genome (no allocation).
        if !archive.is_empty() {
            return archive
                .entries()
                .iter()
                .map(|(sites, _)| BaselineContext::to_plan(sites))
                .collect();
        }
        let front = pareto_front_indices(&objectives);
        let mut seen: std::collections::HashSet<&[SiteId]> = std::collections::HashSet::new();
        front
            .into_iter()
            .filter(|&i| seen.insert(&population[i]))
            .map(|i| BaselineContext::to_plan(&population[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_context;

    #[test]
    fn produces_feasible_pareto_plans() {
        let ctx = test_context(7.0);
        let plans = AffinityGaAdvisor::fast().recommend(&ctx);
        assert!(!plans.is_empty());
        for plan in &plans {
            let flags: Vec<bool> = plan.to_bits().iter().map(|&b| b == 1).collect();
            assert!(ctx.satisfies_constraints(&flags));
        }
        // No plan dominates another under the GA's own objectives.
        for a in &plans {
            for b in &plans {
                if a != b {
                    let fa: Vec<bool> = a.to_bits().iter().map(|&x| x == 1).collect();
                    let fb: Vec<bool> = b.to_bits().iter().map(|&x| x == 1).collect();
                    let oa = vec![ctx.cross_dc_bytes(&fa), ctx.cost(&fa)];
                    let ob = vec![ctx.cross_dc_bytes(&fb), ctx.cost(&fb)];
                    assert!(!atlas_ga::dominates(&oa, &ob) || a.to_bits() == b.to_bits());
                }
            }
        }
    }

    #[test]
    fn respects_the_visit_budget() {
        let ctx = test_context(7.0);
        let advisor = AffinityGaAdvisor {
            population: 10,
            max_visited: 50,
            mutation_rate: 0.05,
            seed: 3,
        };
        // Just check it terminates quickly and returns something sane.
        let plans = advisor.recommend(&ctx);
        assert!(!plans.is_empty());
        assert!(plans.len() <= 50);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let ctx = test_context(7.0);
        let a = AffinityGaAdvisor::fast().recommend(&ctx);
        let b = AffinityGaAdvisor::fast().recommend(&ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn searches_the_full_site_alphabet_of_a_catalog() {
        use atlas_sim::{ClusterSpec, SiteCatalog, SiteNetwork, SiteSpec};

        let cluster = ClusterSpec::default();
        let pricing = atlas_cloud::PricingModel::default();
        let catalog = SiteCatalog::new(
            vec![
                SiteSpec::owned("dc", cluster.onprem_cpu_cores, 1_000.0, 1_000.0),
                SiteSpec::elastic("east", pricing.clone()),
                SiteSpec::elastic("west", pricing),
            ],
            SiteNetwork::from_links(3, vec![cluster.network.intra; 9]),
        );
        let ctx = test_context(7.0).with_catalog(&catalog);
        assert_eq!(ctx.site_count, 3);

        let plans = AffinityGaAdvisor::fast().recommend(&ctx);
        assert!(!plans.is_empty());
        for plan in &plans {
            assert!(ctx.satisfies_site_constraints(plan.sites()));
            // Every gene names a catalog site.
            assert!(plan.sites().iter().all(|s| s.index() < 3));
        }
        // The population initialiser and mutation range over all three
        // sites: across the run, some plan must use a site beyond the
        // binary alphabet (sampled uniformly over {1, 2}, this fails with
        // probability ≈ 2^-#offloaded-genes).
        let sampler_uses_site_2 = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..64).any(|_| random_site(&mut rng, 0.9, 3) == atlas_sim::SiteId(2))
        };
        assert!(sampler_uses_site_2);
    }

    /// The GA front is byte-identical with the delta offspring path on and
    /// off: provenance scoring changes how children reach the cache, never
    /// what they score.
    #[test]
    fn fronts_are_identical_with_and_without_the_delta_path() {
        let ctx = test_context(7.0);
        let advisor = AffinityGaAdvisor::fast();
        let on = advisor.recommend_with(&ctx.scorer().with_delta_path(true));
        let off = advisor.recommend_with(&ctx.scorer().with_delta_path(false));
        assert_eq!(on, off);
        assert!(!on.is_empty());
    }

    #[test]
    fn duplicate_placements_hit_the_shared_scorer_cache() {
        let ctx = test_context(7.0);
        let scorer = ctx.scorer();
        let plans = AffinityGaAdvisor::fast().recommend_with(&scorer);
        assert!(!plans.is_empty());
        let stats = scorer.stats();
        // Three components → at most 8 distinct placements; everything else
        // the GA generates is a cache hit that burns no budget.
        assert!(stats.unique_evaluations <= 8);
        assert!(stats.cache_hits > stats.unique_evaluations);
    }
}
