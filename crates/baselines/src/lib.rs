//! Baseline migration advisors from the Atlas evaluation (paper §5.2).
//!
//! Two families are implemented:
//!
//! * **Single-plan approaches** — greedy offloading of the busiest /
//!   least-busy components (Seagull-style cloud bursting \[45\]) and the
//!   affinity-minimising placement managers REMaP \[68\] (traffic size +
//!   message count) and IntMA \[57\] (traffic size only);
//! * **Multi-plan approaches** — an affinity-based NSGA-II optimising
//!   cross-datacenter traffic and cloud cost (representative of
//!   \[29, 39, 44, 47, 53\]) and a random search, both visiting the same
//!   number of candidate plans as Atlas for a fair comparison.
//!
//! All baselines consume only the information Atlas itself uses (telemetry,
//! expected demand, preferences), never the application's call graphs.
//!
//! The searching baselines route their objective and constraint queries
//! through the shared [`BaselineScorer`] — the baselines' counterpart of
//! `atlas-core`'s cached, batched, thread-parallel `PlanEvaluator` — so
//! duplicate placements are scored once and GA generations fan out across
//! worker threads. Like Atlas, the multi-plan baselines count their
//! `max_visited` budget in *unique* placements scored. (The greedy
//! advisors probe each placement once for feasibility only, so they query
//! the context directly rather than pay for scores they would never
//! reuse.)

#![deny(missing_docs)]

pub mod affinity;
pub mod affinity_ga;
pub mod context;
pub mod greedy;
pub mod random_search;

pub use affinity::{AffinityMatrix, IntMaAdvisor, RemapAdvisor};
pub use affinity_ga::AffinityGaAdvisor;
pub use context::{BaselineContext, BaselineScorer, PlacementScore};
pub use greedy::{GreedyAdvisor, GreedyOrder};
pub use random_search::RandomSearchAdvisor;
