//! Random search: the weakest multi-plan baseline of the evaluation.
//!
//! It samples the same number of candidate plans as Atlas and the affinity
//! GA, keeps the feasible ones and returns the Pareto front under the same
//! traffic/cost objectives as the affinity GA. Whatever quality it achieves
//! is "purely by chance" (paper §5.2.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atlas_core::{random_site, MigrationPlan};
use atlas_ga::pareto_front_indices;
use atlas_sim::SiteId;

use crate::context::{BaselineContext, BaselineScorer};

/// The random-search advisor.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearchAdvisor {
    /// Number of candidate plans sampled.
    pub samples: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for RandomSearchAdvisor {
    fn default() -> Self {
        Self {
            samples: 10_000,
            seed: 53,
        }
    }
}

impl RandomSearchAdvisor {
    /// A small configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            samples: 400,
            seed: 53,
        }
    }

    /// Sample plans and return the feasible Pareto front under the
    /// traffic/cost objectives. Scoring goes through a fresh
    /// [`BaselineScorer`]; use [`Self::recommend_with`] to share one.
    pub fn recommend(&self, ctx: &BaselineContext) -> Vec<MigrationPlan> {
        self.recommend_with(&ctx.scorer())
    }

    /// Sample plans through a caller-supplied scorer: the whole sample set
    /// is scored as one deduplicated, thread-parallel batch.
    pub fn recommend_with(&self, scorer: &BaselineScorer<'_>) -> Vec<MigrationPlan> {
        let ctx = scorer.context();
        let n = ctx.component_count();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let samples: Vec<Vec<SiteId>> = (0..self.samples)
            .map(|_| {
                let fraction = rng.gen_range(0.0..1.0);
                let mut sites: Vec<SiteId> = (0..n)
                    .map(|_| random_site(&mut rng, fraction, ctx.site_count))
                    .collect();
                ctx.apply_pins(&mut sites);
                sites
            })
            .collect();
        let scores = scorer.score_batch(&samples);
        let mut plans = Vec::new();
        let mut objectives = Vec::new();
        for (sites, score) in samples.into_iter().zip(&scores) {
            if !score.feasible {
                continue;
            }
            objectives.push([score.cross_dc_bytes, score.cost]);
            plans.push(sites);
        }
        let front = pareto_front_indices(&objectives);
        let mut seen = std::collections::HashSet::new();
        front
            .into_iter()
            .map(|i| &plans[i])
            .filter(|p| seen.insert((*p).clone()))
            .map(|p| BaselineContext::to_plan(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_context;

    #[test]
    fn returns_feasible_unique_plans() {
        let ctx = test_context(7.0);
        let plans = RandomSearchAdvisor::fast().recommend(&ctx);
        assert!(!plans.is_empty());
        let mut seen = std::collections::HashSet::new();
        for plan in &plans {
            let flags: Vec<bool> = plan.to_bits().iter().map(|&b| b == 1).collect();
            assert!(ctx.satisfies_constraints(&flags));
            assert!(seen.insert(plan.to_bits()), "plans must be unique");
        }
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_it() {
        let ctx = test_context(7.0);
        let a = RandomSearchAdvisor::fast().recommend(&ctx);
        let b = RandomSearchAdvisor::fast().recommend(&ctx);
        assert_eq!(a, b);
        let c = RandomSearchAdvisor {
            seed: 99,
            ..RandomSearchAdvisor::fast()
        }
        .recommend(&ctx);
        // Different seeds usually give different fronts on this tiny space;
        // at minimum the call must succeed.
        assert!(!c.is_empty());
    }

    #[test]
    fn infeasible_contexts_yield_empty_recommendations() {
        // CPU limit that even full offloading cannot satisfy is impossible;
        // here full offloading always works, so use a budget of zero instead.
        let mut ctx = test_context(7.0);
        ctx.preferences = ctx.preferences.clone().with_budget(0.0);
        // Offloading costs money; staying on-prem violates the CPU limit.
        let plans = RandomSearchAdvisor::fast().recommend(&ctx);
        assert!(plans.is_empty());
    }
}
